"""Vectorized coloring substrate: whole-palette array rounds over CSR.

Every algorithm here is an :class:`~repro.graph.batched.ArrayAlgorithm`
reimplementation of a per-node LOCAL algorithm from :mod:`repro.coloring`
— Linial's polynomial-evaluation reduction, the greedy and
Kuhn-Wattenhofer class eliminations, and Cole-Vishkin bit reduction —
with *element-identical* outputs.  The per-node versions stay in place
as the differential oracle (``REPRO_GRAPH=reference``); the Hypothesis
suite in ``tests/test_graph_substrate.py`` asserts the equivalence on
random graphs, including multi-component and isolated-node cases.

Faithfulness notes (the invariants that make identity hold):

* every round reads exclusively the *pre-round snapshot* of the color
  vector, exactly like messages composed before any node updates;
* "pick the smallest free color" scans candidates in the same ascending
  order as the per-node loops (:func:`_first_free`);
* Linial's distinguishing point is the smallest ``x`` with no neighbor
  collision, found by scanning ``x = 0, 1, ...`` with early exit — on
  typical instances almost every node resolves at ``x = 0``, so the
  scan does O(nodes + edges) work, not O(q * edges);
* all validation failures raise the same :class:`ColoringError` family
  the per-node code raises.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.errors import ColoringError, GraphSubstrateError, SimulationError
from repro.coloring.linial import reduction_schedule
from repro.coloring.reduction import kw_phase_schedule
from repro.coloring.vertex import ColoringResult
from repro.graph.batched import ArrayAlgorithm, BatchedSimulator
from repro.graph.csr import CSRGraph, line_graph_csr, require_index_dtype, square_csr
from repro.obs.recorder import active as _obs_active, span as _obs_span


# ----------------------------------------------------------------------
# Shared primitives
# ----------------------------------------------------------------------
def _first_free(
    colors: np.ndarray,
    csr: CSRGraph,
    active: np.ndarray,
    base: np.ndarray,
    width: int,
    context: str,
) -> np.ndarray:
    """Smallest free color in ``[base, base + width)`` for each active node.

    ``colors`` is the pre-round snapshot; a color is *used* if any
    neighbor (of any state) holds it — the exact semantics of the
    per-node ``for candidate ...: if candidate not in used`` loops,
    which scan candidates in ascending order.
    """
    used = np.zeros((len(active), width), dtype=bool)
    owner, entry = csr.gather_neighborhoods(active)
    neighbor_colors = colors[csr.indices[entry]]
    relative = neighbor_colors - base[owner]
    valid = (relative >= 0) & (relative < width)
    used[owner[valid], relative[valid]] = True
    free = ~used
    pick = free.argmax(axis=1)
    if not free[np.arange(len(active)), pick].all():
        raise ColoringError(f"no free color available during {context}")
    return base + pick


def _eval_poly(coeffs: np.ndarray, x: int, q: int) -> np.ndarray:
    """Evaluate all nodes' polynomials at ``x`` over GF(q) (Horner)."""
    value = np.zeros(coeffs.shape[1], dtype=np.int64)
    for j in range(coeffs.shape[0] - 1, -1, -1):
        value = (value * x + coeffs[j]) % q
    return value


def linial_round_array(
    colors: np.ndarray, csr: CSRGraph, m: int, q: int, k: int
) -> np.ndarray:
    """One whole-network Linial reduction round: ``[m] -> [q^2]``.

    Element-identical to applying
    :func:`repro.coloring.linial.reduce_color` at every node with its
    neighbors' pre-round colors.
    """
    n = csr.num_nodes
    if len(colors) and (int(colors.min()) < 0 or int(colors.max()) >= m):
        raise ColoringError(f"color outside palette [0, {m})")
    row, neighbor = csr.row_index, csr.indices
    if np.any(colors[row] == colors[neighbor]):
        raise ColoringError("a neighbor shares this node's color")
    coefficients = np.empty((k + 1, n), dtype=np.int64)
    remainder = colors.astype(np.int64, copy=True)
    for j in range(k + 1):
        coefficients[j] = remainder % q
        remainder //= q
    if np.any(remainder != 0):
        raise ColoringError(f"color does not fit in {k + 1} base-{q} digits")

    new_colors = np.full(n, -1, dtype=np.int64)
    pending = np.arange(n, dtype=np.int64)
    for x in range(q):
        value = _eval_poly(coefficients, x, q)
        owner, entry = csr.gather_neighborhoods(pending)
        conflict = value[pending[owner]] == value[csr.indices[entry]]
        blocked = np.zeros(len(pending), dtype=bool)
        blocked[owner[conflict]] = True
        resolved = pending[~blocked]
        new_colors[resolved] = x * q + value[resolved]
        pending = pending[blocked]
        if len(pending) == 0:
            break
    if len(pending):
        raise ColoringError(
            f"no distinguishing point found (q={q}, k={k}) for "
            f"{len(pending)} nodes — input coloring was not proper"
        )
    return new_colors


def cv_reduce_array(colors: np.ndarray, parent_colors: np.ndarray) -> np.ndarray:
    """Vectorized Cole-Vishkin step: ``(c, c_parent) -> 2i + bit_i(c)``."""
    differing = colors ^ parent_colors
    if np.any(differing == 0):
        raise ColoringError(
            "child and parent share a color; input coloring is improper"
        )
    lowest = differing & -differing
    # frexp is exact on powers of two: frexp(2^i) = (0.5, i + 1).
    position = (np.frexp(lowest.astype(np.float64))[1] - 1).astype(np.int64)
    bit = (colors >> position) & 1
    return 2 * position + bit


# ----------------------------------------------------------------------
# Array algorithms (vectorized twins of repro.coloring)
# ----------------------------------------------------------------------
class LinialArrayAlgorithm(ArrayAlgorithm):
    """Vectorized twin of :class:`repro.coloring.linial.LinialColoringAlgorithm`."""

    def __init__(self, identifier_space: int, degree_bound: int) -> None:
        if identifier_space < 1:
            raise ColoringError("identifier_space must be positive")
        self._schedule = reduction_schedule(identifier_space, degree_bound)
        self.rounds_needed = len(self._schedule)

    @property
    def schedule(self) -> List[Tuple[int, int, int]]:
        return list(self._schedule)

    @property
    def final_palette(self) -> int:
        if not self._schedule:
            return 0
        _m, q, _k = self._schedule[-1]
        return q * q

    def start(self, csr: CSRGraph, inputs: Optional[np.ndarray]) -> np.ndarray:
        if inputs is None:
            return np.arange(csr.num_nodes, dtype=np.int64)
        if np.any(inputs < 0):
            raise ColoringError(
                "nodes need non-negative integer initial colors"
            )
        return inputs.astype(np.int64, copy=True)

    def round(
        self, state: np.ndarray, csr: CSRGraph, round_number: int
    ) -> np.ndarray:
        m, q, k = self._schedule[round_number - 1]
        return linial_round_array(state, csr, m, q, k)


class GreedyReductionArrayAlgorithm(ArrayAlgorithm):
    """Vectorized twin of :class:`repro.coloring.reduction.GreedyColorReductionAlgorithm`."""

    def __init__(self, palette: int, target: int, degree_bound: int) -> None:
        if target <= degree_bound:
            raise ColoringError(
                f"target palette {target} must exceed the degree bound "
                f"{degree_bound}"
            )
        if palette < 1:
            raise ColoringError("palette must be positive")
        self._palette = palette
        self._target = max(target, 1)
        self.rounds_needed = max(palette - self._target, 0)

    def start(self, csr: CSRGraph, inputs: Optional[np.ndarray]) -> np.ndarray:
        if inputs is None:
            raise GraphSubstrateError("color reduction requires input colors")
        if len(inputs) and (
            int(inputs.min()) < 0 or int(inputs.max()) >= self._palette
        ):
            raise ColoringError(
                f"nodes need a color in [0, {self._palette})"
            )
        return inputs.astype(np.int64, copy=True)

    def round(
        self, state: np.ndarray, csr: CSRGraph, round_number: int
    ) -> np.ndarray:
        dissolving = self._palette - round_number
        active = np.nonzero(state == dissolving)[0]
        new_state = state.copy()
        if len(active):
            base = np.zeros(len(active), dtype=np.int64)
            new_state[active] = _first_free(
                state, csr, active, base, self._target,
                context=f"greedy elimination below {self._target}",
            )
        return new_state


class KWReductionArrayAlgorithm(ArrayAlgorithm):
    """Vectorized twin of :class:`repro.coloring.reduction.KWColorReductionAlgorithm`."""

    def __init__(self, palette: int, target: int, degree_bound: int) -> None:
        if target <= degree_bound:
            raise ColoringError(
                f"target palette {target} must exceed the degree bound "
                f"{degree_bound}"
            )
        if palette < 1:
            raise ColoringError("palette must be positive")
        self._palette = palette
        self._target = target
        self._phases = kw_phase_schedule(palette, target)
        self._plan: List[Tuple[int, int, bool]] = []
        for phase_index, (m, s) in enumerate(self._phases):
            rounds = min(s, m) - target
            for j in range(rounds):
                self._plan.append((phase_index, target + j, j == rounds - 1))
        self.rounds_needed = len(self._plan)

    def start(self, csr: CSRGraph, inputs: Optional[np.ndarray]) -> np.ndarray:
        if inputs is None:
            raise GraphSubstrateError("color reduction requires input colors")
        if len(inputs) and (
            int(inputs.min()) < 0 or int(inputs.max()) >= self._palette
        ):
            raise ColoringError(
                f"nodes need a color in [0, {self._palette})"
            )
        return inputs.astype(np.int64, copy=True)

    def round(
        self, state: np.ndarray, csr: CSRGraph, round_number: int
    ) -> np.ndarray:
        phase_index, dissolve_offset, is_last = self._plan[round_number - 1]
        _m, s = self._phases[phase_index]
        target = self._target
        group, offset = np.divmod(state, s)
        active = np.nonzero(offset == dissolve_offset)[0]
        new_state = state.copy()
        if len(active):
            base = group[active] * s
            new_state[active] = _first_free(
                state, csr, active, base, target,
                context="Kuhn-Wattenhofer group elimination",
            )
        if is_last:
            group, offset = np.divmod(new_state, s)
            if np.any(offset >= target):
                raise ColoringError(
                    f"some node still has offset >= target {target} at "
                    f"the end of a phase"
                )
            new_state = group * target + offset
        return new_state


class ColeVishkinArrayAlgorithm(ArrayAlgorithm):
    """Vectorized twin of :class:`repro.coloring.cole_vishkin.ColeVishkinAlgorithm`.

    Input: the parent array (``-1`` marks roots).  The state vector is
    the color; parents are per-run configuration, validated against the
    CSR adjacency at :meth:`start`.
    """

    _ELIMINATE = (5, 4, 3)

    def __init__(self, identifier_space: int) -> None:
        if identifier_space < 1:
            raise ColoringError("identifier_space must be positive")
        from repro.coloring.cole_vishkin import cv_rounds_needed

        self._reduction_rounds = cv_rounds_needed(identifier_space)
        self.rounds_needed = self._reduction_rounds + 2 * len(self._ELIMINATE)
        self._parents: Optional[np.ndarray] = None

    def start(self, csr: CSRGraph, inputs: Optional[np.ndarray]) -> np.ndarray:
        if inputs is None:
            raise GraphSubstrateError(
                "Cole-Vishkin requires a parent array (-1 for roots)"
            )
        parents = inputs.astype(np.int64, copy=True)
        non_roots = np.nonzero(parents >= 0)[0]
        if len(non_roots):
            # Directed adjacency keys are globally sorted (row-major with
            # ascending neighbors), so parent membership is one
            # searchsorted over the flat key array.
            n = csr.num_nodes
            keys = csr.row_index * np.int64(n) + csr.indices
            queries = non_roots * np.int64(n) + parents[non_roots]
            position = np.searchsorted(keys, queries)
            present = (position < len(keys)) & (
                keys[np.minimum(position, len(keys) - 1)] == queries
            )
            if not present.all():
                offender = int(non_roots[~present][0])
                raise ColoringError(
                    f"node {offender!r}: parent "
                    f"{int(parents[offender])!r} is not a neighbor"
                )
        self._parents = parents
        return np.arange(csr.num_nodes, dtype=np.int64)

    def round(
        self, state: np.ndarray, csr: CSRGraph, round_number: int
    ) -> np.ndarray:
        parents = self._parents
        roots = parents < 0
        parent_color = state[np.where(roots, 0, parents)]
        if round_number <= self._reduction_rounds:
            parent_color = np.where(roots, state ^ 1, parent_color)
            return cv_reduce_array(state, parent_color)
        phase = round_number - self._reduction_rounds - 1
        eliminate = self._ELIMINATE[phase // 2]
        if phase % 2 == 0:
            # Shift-down: adopt the parent's color; roots rotate.
            return np.where(roots, (state + 1) % 3, parent_color)
        active = np.nonzero(state == eliminate)[0]
        new_state = state.copy()
        if len(active):
            base = np.zeros(len(active), dtype=np.int64)
            new_state[active] = _first_free(
                state, csr, active, base, 3,
                context="shift-down recoloring into {0, 1, 2}",
            )
        return new_state


# ----------------------------------------------------------------------
# Pipelines (array twins of repro.coloring.vertex / .derived)
# ----------------------------------------------------------------------
def _require_round_budget(csr: CSRGraph, needed: int, max_rounds: int) -> None:
    """Raise the reference simulator's budget error if ``needed`` exceeds it."""
    if needed > max_rounds:
        unfinished = list(range(min(csr.num_nodes, 3)))
        raise SimulationError(
            f"{csr.num_nodes} nodes still running after "
            f"{max_rounds} rounds (e.g. {unfinished!r})"
        )


def vertex_coloring_arrays(
    csr: CSRGraph,
    target: Optional[int] = None,
    identifier_space: Optional[int] = None,
    max_rounds: int = 1_000_000,
    reduction: str = "kw",
) -> ColoringResult:
    """Array-native twin of :func:`repro.coloring.vertex.compute_vertex_coloring`.

    Same schedule, same obs spans/events/counters, element-identical
    colors; the color vector stays an array across both phases instead
    of round-tripping through per-node dicts.
    """
    if reduction not in ("kw", "greedy"):
        raise ColoringError(f"unknown reduction strategy {reduction!r}")
    degree = max(csr.max_degree, 1)
    if identifier_space is None:
        identifier_space = csr.num_nodes
    if target is None:
        target = degree + 1
    if target <= csr.max_degree:
        raise ColoringError(
            f"target {target} must exceed the maximum degree "
            f"{csr.max_degree}"
        )

    recorder = _obs_active()
    linial = LinialArrayAlgorithm(identifier_space, degree)
    simulator = BatchedSimulator(csr, linial)
    with _obs_span("coloring", "linial"):
        _require_round_budget(csr, linial.rounds_needed, max_rounds)
        linial_result = simulator.run()
    palette = linial.final_palette or identifier_space
    colors_array = simulator.state
    if recorder is not None:
        recorder.count("coloring", "linial_rounds", linial_result.rounds)
        recorder.event(
            "coloring",
            "phase",
            phase="linial",
            rounds=linial_result.rounds,
            palette=palette,
            nodes=csr.num_nodes,
        )

    reduction_rounds = 0
    if palette > target:
        if reduction == "kw":
            reducer = KWReductionArrayAlgorithm(
                palette, target, csr.max_degree
            )
        else:
            reducer = GreedyReductionArrayAlgorithm(
                palette, target, csr.max_degree
            )
        reduction_simulator = BatchedSimulator(csr, reducer, inputs=colors_array)
        with _obs_span("coloring", "reduction", strategy=reduction):
            _require_round_budget(csr, reducer.rounds_needed, max_rounds)
            reduction_result = reduction_simulator.run()
        colors_array = reduction_simulator.state
        palette = target
        reduction_rounds = reduction_result.rounds
        if recorder is not None:
            recorder.count("coloring", "reduction_rounds", reduction_rounds)
            recorder.event(
                "coloring",
                "phase",
                phase="reduction",
                strategy=reduction,
                rounds=reduction_rounds,
                palette=palette,
            )

    colors = {
        node: int(color) for node, color in enumerate(colors_array.tolist())
    }
    return ColoringResult(
        colors=colors,
        palette=palette,
        linial_rounds=linial_result.rounds,
        reduction_rounds=reduction_rounds,
    )


def edge_coloring_with_arrays(
    csr: CSRGraph, target: Optional[int] = None
):
    """Array-native edge coloring; returns the result plus raw arrays.

    Returns ``(EdgeColoringResult, colors_array, line_csr, edge_u,
    edge_v)`` — the array forms let callers validate or post-process
    without dict round-trips.  Element-identical to
    :func:`repro.coloring.derived.compute_edge_coloring`.
    """
    from repro.coloring.derived import (
        EdgeColoringResult,
        VIRTUAL_ROUND_FACTOR,
    )

    if csr.num_edges == 0:
        # Mirrors the reference path, where the empty line graph fails
        # Network's at-least-one-node invariant.
        raise SimulationError("network must have at least one node")
    line, edge_u, edge_v = line_graph_csr(csr)
    if target is None:
        target = max(line.max_degree + 1, 1)
    with _obs_span("coloring", "edge_coloring"):
        result = vertex_coloring_arrays(
            line, target=target, identifier_space=line.num_nodes
        )
    colors_array = np.array(
        [result.colors[i] for i in range(line.num_nodes)], dtype=np.int64
    )
    edge_colors = {
        (u, v): int(c)
        for u, v, c in zip(
            edge_u.tolist(), edge_v.tolist(), colors_array.tolist()
        )
    }
    recorder = _obs_active()
    if recorder is not None:
        recorder.event(
            "coloring",
            "phase",
            phase="edge_coloring",
            host_rounds=VIRTUAL_ROUND_FACTOR * result.total_rounds,
            virtual_rounds=result.total_rounds,
            palette=result.palette,
        )
    derived = EdgeColoringResult(
        colors=edge_colors,
        palette=result.palette,
        host_rounds=VIRTUAL_ROUND_FACTOR * result.total_rounds,
        virtual_rounds=result.total_rounds,
    )
    return derived, colors_array, line, edge_u, edge_v


def edge_coloring_arrays(csr: CSRGraph, target: Optional[int] = None):
    """Array-native twin of :func:`repro.coloring.derived.compute_edge_coloring`."""
    derived, _colors, _line, _eu, _ev = edge_coloring_with_arrays(csr, target)
    return derived


def two_hop_coloring_with_arrays(
    csr: CSRGraph, target: Optional[int] = None
):
    """Array-native 2-hop coloring; returns the result plus raw arrays.

    Returns ``(TwoHopColoringResult, colors_array, square_csr)``.
    Element-identical to
    :func:`repro.coloring.derived.compute_two_hop_coloring`.
    """
    from repro.coloring.derived import (
        TwoHopColoringResult,
        VIRTUAL_ROUND_FACTOR,
    )

    square = square_csr(csr)
    if target is None:
        target = max(square.max_degree + 1, 1)
    with _obs_span("coloring", "two_hop_coloring"):
        result = vertex_coloring_arrays(
            square, target=target, identifier_space=square.num_nodes
        )
    colors_array = np.array(
        [result.colors[i] for i in range(square.num_nodes)], dtype=np.int64
    )
    recorder = _obs_active()
    if recorder is not None:
        recorder.event(
            "coloring",
            "phase",
            phase="two_hop_coloring",
            host_rounds=VIRTUAL_ROUND_FACTOR * result.total_rounds,
            virtual_rounds=result.total_rounds,
            palette=result.palette,
        )
    derived = TwoHopColoringResult(
        colors=dict(result.colors),
        palette=result.palette,
        host_rounds=VIRTUAL_ROUND_FACTOR * result.total_rounds,
        virtual_rounds=result.total_rounds,
    )
    return derived, colors_array, square


def two_hop_coloring_arrays(csr: CSRGraph, target: Optional[int] = None):
    """Array-native twin of :func:`repro.coloring.derived.compute_two_hop_coloring`."""
    derived, _colors, _square = two_hop_coloring_with_arrays(csr, target)
    return derived


def cole_vishkin_arrays(
    csr: CSRGraph, parents: Dict[Hashable, Hashable]
) -> Dict[str, object]:
    """Array-native twin of :func:`repro.coloring.cole_vishkin.compute_cole_vishkin_coloring`."""
    missing = [
        node for node in range(csr.num_nodes) if node not in parents
    ]
    if missing:
        raise ColoringError(f"no parent entry for nodes {missing[:3]!r}")
    entries = []
    for node in range(csr.num_nodes):
        parent = parents[node]
        if parent is None:
            entries.append(-1)
            continue
        if not isinstance(parent, int) or not (0 <= parent < csr.num_nodes):
            raise ColoringError(
                f"node {node!r}: parent {parent!r} is not a neighbor"
            )
        entries.append(parent)
    parent_array = np.array(entries, dtype=np.int64)
    algorithm = ColeVishkinArrayAlgorithm(csr.num_nodes)
    result = BatchedSimulator(csr, algorithm, inputs=parent_array).run()
    return {"colors": dict(result.outputs), "rounds": result.rounds}


def validate_proper_vertex_arrays(csr: CSRGraph, colors: np.ndarray) -> None:
    """Raise :class:`ColoringError` unless adjacent nodes differ."""
    colors = require_index_dtype("colors", colors)
    conflict = colors[csr.row_index] == colors[csr.indices]
    if np.any(conflict):
        u = int(csr.row_index[np.argmax(conflict)])
        v = int(csr.indices[np.argmax(conflict)])
        raise ColoringError(
            f"adjacent nodes {u} and {v} share color {int(colors[u])}"
        )
