"""Array-native graph substrate: CSR adjacency + vectorized LOCAL rounds.

This package replaces networkx/dict traversals on the hot paths of the
coloring substrate, the LOCAL simulator, and the plan builders with
NumPy index arrays:

* :mod:`repro.graph.csr` — the :class:`CSRGraph` representation and the
  vectorized line-graph / square-graph constructions;
* :mod:`repro.graph.batched` — the batched round loop
  (:class:`BatchedSimulator`) delivering a whole round's messages as one
  CSR gather;
* :mod:`repro.graph.coloring` — whole-palette array implementations of
  Linial, greedy / Kuhn-Wattenhofer reduction, and Cole-Vishkin;
* :mod:`repro.graph.backend` — ``REPRO_GRAPH`` backend selection
  (``vectorized`` default, ``reference`` keeps the per-node oracle).

Every fast path is element-identical to its per-node twin; the
Hypothesis differential suite in ``tests/test_graph_substrate.py``
enforces the equivalence.
"""

from repro.graph.backend import (
    REFERENCE,
    VECTORIZED,
    active_backend,
    set_backend,
    use_backend,
    vectorized_enabled,
)
from repro.graph.batched import ArrayAlgorithm, BatchedSimulator
from repro.graph.coloring import (
    ColeVishkinArrayAlgorithm,
    GreedyReductionArrayAlgorithm,
    KWReductionArrayAlgorithm,
    LinialArrayAlgorithm,
    cole_vishkin_arrays,
    edge_coloring_arrays,
    edge_coloring_with_arrays,
    two_hop_coloring_arrays,
    two_hop_coloring_with_arrays,
    validate_proper_vertex_arrays,
    vertex_coloring_arrays,
)
from repro.graph.csr import (
    CSRGraph,
    line_graph_csr,
    require_index_dtype,
    square_csr,
)

__all__ = [
    "ArrayAlgorithm",
    "BatchedSimulator",
    "CSRGraph",
    "ColeVishkinArrayAlgorithm",
    "GreedyReductionArrayAlgorithm",
    "KWReductionArrayAlgorithm",
    "LinialArrayAlgorithm",
    "REFERENCE",
    "VECTORIZED",
    "active_backend",
    "cole_vishkin_arrays",
    "csr_eligible_network",
    "edge_coloring_arrays",
    "edge_coloring_with_arrays",
    "line_graph_csr",
    "require_index_dtype",
    "set_backend",
    "square_csr",
    "two_hop_coloring_arrays",
    "two_hop_coloring_with_arrays",
    "use_backend",
    "validate_proper_vertex_arrays",
    "vertex_coloring_arrays",
    "vectorized_enabled",
]


def csr_eligible_network(network) -> bool:
    """Whether a Network's identifiers admit the CSR representation.

    CSR positions double as identifiers, so the nodes must be exactly the
    integers ``0 .. n - 1``; anything else stays on the reference path.
    """
    n = network.num_nodes
    return all(
        isinstance(node, int) and 0 <= node < n for node in network.nodes
    )
