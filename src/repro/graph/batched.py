"""The batched LOCAL round loop: whole-network rounds as array ops.

The dict-based :class:`repro.local_model.simulator.Simulator` delivers a
round's messages edge by edge — one Python dict write per directed edge.
For the coloring substrate every message is "my current color", so a
whole round collapses to a single CSR gather: ``state[csr.indices]`` *is*
the complete inbox of the network.  :class:`BatchedSimulator` runs an
:class:`ArrayAlgorithm` — a LOCAL algorithm whose per-round update is
expressed over the full state vector — with exactly the round, message
and (optional) payload accounting of the per-node simulator, and returns
the same :class:`~repro.local_model.simulator.SimulationResult`.

The correspondence the differential suite pins down: for a broadcast
algorithm (every node sends its state to every neighbor each round, all
nodes halting together after the last scheduled round), the per-node
simulator delivers ``2|E|`` non-``None`` messages per round and counts
every node of positive degree as an active sender.  The batched loop
reproduces those numbers without materializing a single dict.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

import numpy as np

from repro.errors import GraphSubstrateError
from repro.faults import FaultPlan, fault_plan_from_env
from repro.graph.csr import CSRGraph, require_index_dtype
from repro.local_model.simulator import (
    RoundTrace,
    SimulationResult,
    recover_delivery,
)
from repro.obs.recorder import active as _obs_active


class ArrayAlgorithm:
    """A LOCAL algorithm whose round update is a whole-network array op.

    Subclasses implement :meth:`start` (the initial per-node state
    vector) and :meth:`round` (one synchronous round: produce the next
    state vector from the current one, reading neighbors exclusively
    through CSR gathers on the *pre-round snapshot* — the array analogue
    of "messages composed before any node updates").  ``rounds_needed``
    is the globally known round count after which every node halts; the
    coloring substrate's schedules are all deterministic, so this is a
    constant of the instance, never data-dependent.
    """

    #: Total synchronous rounds; 0 means nodes halt at initialization.
    rounds_needed: int = 0

    def start(self, csr: CSRGraph, inputs: Optional[np.ndarray]) -> np.ndarray:
        """Validate inputs and return the initial state vector."""
        raise NotImplementedError

    def round(
        self, state: np.ndarray, csr: CSRGraph, round_number: int
    ) -> np.ndarray:
        """One synchronous round; ``round_number`` is 1-based."""
        raise NotImplementedError


class BatchedSimulator:
    """Drives one :class:`ArrayAlgorithm` over one CSR network.

    Message accounting matches the dict simulator for broadcast
    algorithms: every round delivers one message per directed edge, and
    payload sizes (the ``repr`` length of each delivered color) are
    computed only under ``record_trace`` or ``track_payload`` — the same
    opt-in the per-node simulator uses.
    """

    def __init__(
        self,
        csr: CSRGraph,
        algorithm: ArrayAlgorithm,
        inputs: Optional[np.ndarray] = None,
        record_trace: bool = False,
        track_payload: Optional[bool] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if inputs is not None:
            inputs = require_index_dtype("inputs", inputs)
            if inputs.shape != (csr.num_nodes,):
                raise GraphSubstrateError(
                    f"inputs must have one entry per node, got shape "
                    f"{inputs.shape} for {csr.num_nodes} nodes"
                )
        self._csr = csr
        self._algorithm = algorithm
        self._state = algorithm.start(csr, inputs)
        self._record_trace = record_trace
        self._track_payload = (
            record_trace if track_payload is None else track_payload
        )
        if fault_plan is None:
            fault_plan = fault_plan_from_env()
        self._fault_plan = fault_plan

    @property
    def state(self) -> np.ndarray:
        """The current state vector (tests and composite pipelines)."""
        return self._state

    def _recover_round(self, round_number: int, count: int) -> None:
        """Run the reliable-delivery layer over one round's messages.

        A batched round *is* one CSR gather; message slot ``i`` is the
        directed edge ``indices[i] -> row(i)``.  The recovery layer
        retransmits drops and suppresses duplicates before the gather,
        so the gather always reads the complete inbox — semantics and
        accounting stay bit-identical to the fault-free run (a drop
        surviving the redelivery budget raises instead).  This is a
        per-slot Python loop and therefore only runs when message
        faults are actually live.
        """
        plan = self._fault_plan
        indptr = self._csr.indptr
        indices = self._csr.indices

        def describe(slot):
            receiver = int(np.searchsorted(indptr, slot, side="right")) - 1
            return f"{int(indices[slot])!r} -> {receiver!r}"

        for slot in range(count):
            recover_delivery(
                plan, round_number, slot, lambda s=slot: describe(s)
            )

    def _round_payload_chars(self) -> int:
        """Total ``repr`` length of this round's messages (opt-in only).

        Every node broadcasts its integer state to all neighbors, so the
        round's payload is ``sum(deg(u) * len(repr(state[u])))``.
        """
        lengths = np.char.str_len(self._state.astype("U21"))
        return int((self._csr.degrees * lengths).sum())

    def run(self) -> SimulationResult:
        csr = self._csr
        algorithm = self._algorithm
        rounds = algorithm.rounds_needed
        messages_per_round = csr.num_directed
        active_senders = int((csr.degrees > 0).sum())
        recorder = _obs_active()
        trace: List[RoundTrace] = []
        round_messages: List[int] = []
        round_payload: List[int] = []
        fault_plan = self._fault_plan
        faults_active = (
            fault_plan is not None and fault_plan.has_message_faults
        )
        for round_number in range(1, rounds + 1):
            if faults_active:
                self._recover_round(round_number, messages_per_round)
            round_chars = (
                self._round_payload_chars() if self._track_payload else 0
            )
            self._state = algorithm.round(self._state, csr, round_number)
            round_messages.append(messages_per_round)
            round_payload.append(round_chars)
            if self._record_trace:
                trace.append(
                    RoundTrace(
                        round_number=round_number,
                        messages=messages_per_round,
                        active_senders=active_senders,
                        payload_chars=round_chars,
                    )
                )
            if recorder is not None:
                recorder.event(
                    "simulator",
                    "round",
                    round=round_number,
                    messages=messages_per_round,
                    active_senders=active_senders,
                    payload_chars=round_chars,
                )
                recorder.count("simulator", "rounds")
                recorder.count("simulator", "messages", messages_per_round)
        if recorder is not None:
            recorder.event(
                "simulator",
                "run_complete",
                rounds=rounds,
                messages_delivered=rounds * messages_per_round,
                nodes=csr.num_nodes,
                algorithm=type(algorithm).__name__,
            )
        outputs: Dict[Hashable, int] = {
            node: int(value) for node, value in enumerate(self._state.tolist())
        }
        return SimulationResult(
            rounds=rounds,
            outputs=outputs,
            messages_delivered=rounds * messages_per_round,
            round_messages=tuple(round_messages),
            round_payload_chars=tuple(round_payload),
            trace=trace,
        )
