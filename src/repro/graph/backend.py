"""Backend selection for the graph substrate.

Mirrors the ``REPRO_ENGINE`` convention of the probability engine: the
``REPRO_GRAPH`` environment variable picks between the ``vectorized``
array-native fast paths (default) and the ``reference`` per-node LOCAL
simulation, which is kept intact as the differential oracle.  Tests pin
the backend with :func:`use_backend` instead of mutating the
environment.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import ConfigurationError, GraphSubstrateError

VECTORIZED = "vectorized"
REFERENCE = "reference"

_BACKENDS = (VECTORIZED, REFERENCE)

#: Process-wide override installed by :func:`use_backend`; wins over the
#: environment variable while active.
_override: Optional[str] = None


def active_backend() -> str:
    """The graph backend in effect: override, else env, else vectorized."""
    if _override is not None:
        return _override
    name = os.environ.get("REPRO_GRAPH", VECTORIZED).strip().lower()
    if name not in _BACKENDS:
        raise ConfigurationError(
            f"REPRO_GRAPH={name!r} is not a valid graph backend; "
            f"expected one of {_BACKENDS}"
        )
    return name


def vectorized_enabled() -> bool:
    """Whether the vectorized fast paths should be attempted."""
    return active_backend() == VECTORIZED


def set_backend(name: str) -> str:
    """Select the graph backend process-wide; returns the previous one.

    The plain-setter counterpart of :func:`use_backend`, for callers
    (the CLI's ``--graph`` flag) that pick a backend for the rest of the
    process rather than for a scoped block.
    """
    global _override
    if name not in _BACKENDS:
        raise GraphSubstrateError(
            f"unknown graph backend {name!r}; expected one of {_BACKENDS}"
        )
    previous = active_backend()
    _override = name
    return previous


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Pin the graph backend for the duration of the context (tests)."""
    global _override
    if name not in _BACKENDS:
        raise GraphSubstrateError(
            f"unknown graph backend {name!r}; expected one of {_BACKENDS}"
        )
    previous = _override
    _override = name
    try:
        yield
    finally:
        _override = previous
