"""Compressed-sparse-row graphs: the array-native adjacency substrate.

A :class:`CSRGraph` stores an undirected simple graph as two NumPy index
arrays — ``indptr`` (row offsets, length ``n + 1``) and ``indices``
(concatenated neighbor lists, sorted within each row) — replacing the
networkx/dict traversals on every hot path of the coloring substrate and
the plan builders.  Node identifiers are exactly ``0 .. n - 1``, matching
the contract of :func:`repro.core.indexing.indexed_dependency_network`,
so a node's identifier doubles as its array position and a whole round of
neighborhood reads is one fancy-indexing slice.

The module also provides the two virtual-graph constructions the
distributed fixers color — the line graph (for edge colorings) and the
square ``G^2`` (for 2-hop colorings) — as vectorized CSR-to-CSR
transforms that agree node-for-node with their networkx counterparts in
:mod:`repro.local_model.network`.

For interoperability, :class:`CSRGraph` exposes the small slice of the
``networkx.Graph`` API the instance generators traverse (``nodes``,
``edges``, ``neighbors``, ``degree``, ...), always yielding *Python*
ints — never NumPy scalars, whose ``repr`` differs and would silently
poison the repr-sorted orderings the rest of the library relies on.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.errors import GraphSubstrateError

#: Safety cap on intermediate pair expansions (entries, not bytes); the
#: two-hop construction processes its Σ deg² expansion in chunks of at
#: most this many directed pairs.
_EXPANSION_CHUNK = 1 << 24


def require_index_dtype(name: str, array: np.ndarray) -> np.ndarray:
    """Assert that ``array`` is an integer NumPy array (no object dtype).

    Object-dtype arrays arise when heterogeneous or arbitrary-precision
    values sneak into a construction; every vectorized kernel would then
    silently fall back to per-element Python dispatch.  The substrate
    fails loudly instead.
    """
    array = np.asarray(array)
    if array.dtype == object or not np.issubdtype(array.dtype, np.integer):
        raise GraphSubstrateError(
            f"{name} must be an integer array, got dtype {array.dtype!r} "
            f"(object/float dtypes disable every vectorized fast path)"
        )
    return array


def _concatenated_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """``concatenate([arange(s, s + c) for s, c in zip(starts, counts)])``.

    The standard vectorized multi-range trick; the building block for
    gathering the neighborhoods of many nodes at once.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    return np.arange(total, dtype=np.int64) - offsets + np.repeat(starts, counts)


class CSRGraph:
    """An undirected simple graph over nodes ``0 .. n - 1`` in CSR form.

    ``indices[indptr[u] : indptr[u + 1]]`` are the neighbors of ``u`` in
    ascending order — the same port order :class:`repro.local_model.network.Network`
    derives by sorting, so colorings computed on either representation
    see identical neighborhoods.
    """

    __slots__ = ("indptr", "indices", "num_nodes", "_row_index")

    def __init__(self, num_nodes: int, indptr: np.ndarray, indices: np.ndarray) -> None:
        if num_nodes < 1:
            raise GraphSubstrateError("a CSR graph needs at least one node")
        indptr = require_index_dtype("indptr", indptr)
        indices = require_index_dtype("indices", indices)
        if indptr.shape != (num_nodes + 1,):
            raise GraphSubstrateError(
                f"indptr must have length num_nodes + 1 = {num_nodes + 1}, "
                f"got {indptr.shape}"
            )
        if indptr[0] != 0 or indptr[-1] != len(indices):
            raise GraphSubstrateError("indptr endpoints do not frame indices")
        self.num_nodes = int(num_nodes)
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self._row_index: np.ndarray = None  # lazily materialized

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, num_nodes: int, u: np.ndarray, v: np.ndarray
    ) -> "CSRGraph":
        """Build from (possibly duplicated) undirected edge endpoint arrays.

        Endpoints are validated against ``[0, num_nodes)``; self-loops
        are rejected (as in :class:`~repro.local_model.network.Network`);
        duplicate edges collapse.
        """
        u = require_index_dtype("edge endpoints u", u).astype(np.int64, copy=False)
        v = require_index_dtype("edge endpoints v", v).astype(np.int64, copy=False)
        if u.shape != v.shape:
            raise GraphSubstrateError("endpoint arrays must have equal length")
        if len(u) and (
            u.min() < 0 or v.min() < 0
            or u.max() >= num_nodes or v.max() >= num_nodes
        ):
            raise GraphSubstrateError(
                f"edge endpoints outside [0, {num_nodes})"
            )
        if np.any(u == v):
            raise GraphSubstrateError("self-loops are not allowed")
        # Symmetrize, then dedupe directed pairs via their flat keys.
        src = np.concatenate([u, v])
        dst = np.concatenate([v, u])
        keys = np.unique(src * np.int64(num_nodes) + dst)
        src = keys // num_nodes
        dst = keys % num_nodes
        counts = np.bincount(src, minlength=num_nodes)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(num_nodes, indptr, dst)

    @classmethod
    def from_networkx(cls, graph) -> "CSRGraph":
        """Build from a networkx graph whose nodes are exactly ``0..n-1``."""
        n = graph.number_of_nodes()
        if n == 0:
            raise GraphSubstrateError("a CSR graph needs at least one node")
        if not all(
            isinstance(node, int) and 0 <= node < n for node in graph.nodes()
        ):
            raise GraphSubstrateError(
                "CSR conversion requires contiguous integer nodes 0..n-1"
            )
        edges = np.array(
            [(u, v) for u, v in graph.edges() if u != v], dtype=np.int64
        ).reshape(-1, 2)
        return cls.from_edges(n, edges[:, 0], edges[:, 1])

    @classmethod
    def from_network(cls, network) -> "CSRGraph":
        """Build from a :class:`repro.local_model.network.Network`."""
        return cls.from_networkx(network.graph)

    def to_networkx(self):
        """The equivalent :class:`networkx.Graph` (for cross-checks)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_nodes))
        eu, ev = self.edge_endpoints()
        graph.add_edges_from(zip(eu.tolist(), ev.tolist()))
        return graph

    # ------------------------------------------------------------------
    # Array accessors (the hot paths)
    # ------------------------------------------------------------------
    @property
    def num_directed(self) -> int:
        """Number of directed adjacency entries (``2 * num_edges``)."""
        return len(self.indices)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self.indices) // 2

    @property
    def degrees(self) -> np.ndarray:
        """Per-node degrees as an int64 array."""
        return np.diff(self.indptr)

    @property
    def max_degree(self) -> int:
        """The maximum degree (0 for edgeless graphs)."""
        if len(self.indices) == 0:
            return 0
        return int(self.degrees.max())

    @property
    def row_index(self) -> np.ndarray:
        """Source node of every directed adjacency entry (cached)."""
        if self._row_index is None:
            self._row_index = np.repeat(
                np.arange(self.num_nodes, dtype=np.int64), self.degrees
            )
        return self._row_index

    def neighbor_slice(self, node: int) -> np.ndarray:
        """The neighbors of ``node`` as an array view (ascending)."""
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    def edge_endpoints(self) -> Tuple[np.ndarray, np.ndarray]:
        """Undirected edge endpoint arrays ``(u, v)`` with ``u < v``.

        Edges are emitted in lexicographic order — the exact sorted-edge
        order :func:`repro.local_model.network.line_graph_network` uses
        to number virtual nodes.
        """
        mask = self.row_index < self.indices
        return self.row_index[mask], self.indices[mask]

    def gather_neighborhoods(
        self, nodes: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """All adjacency entries of ``nodes`` at once.

        Returns ``(owner, entry)``: ``owner[i]`` is the *position* into
        ``nodes`` whose neighborhood produced ``entry[i]`` (a position
        into :attr:`indices`).  One fancy-indexed slice replacing a
        Python loop over per-node neighbor tuples.
        """
        starts = self.indptr[nodes]
        counts = self.indptr[nodes + 1] - starts
        entry = _concatenated_ranges(starts, counts)
        owner = np.repeat(np.arange(len(nodes), dtype=np.int64), counts)
        return owner, entry

    # ------------------------------------------------------------------
    # networkx-compatible traversal (Python ints only)
    # ------------------------------------------------------------------
    def number_of_nodes(self) -> int:
        return self.num_nodes

    def number_of_edges(self) -> int:
        return self.num_edges

    def nodes(self) -> range:
        return range(self.num_nodes)

    def edges(self) -> Iterator[Tuple[int, int]]:
        eu, ev = self.edge_endpoints()
        return zip(eu.tolist(), ev.tolist())

    def neighbors(self, node: int) -> List[int]:
        if not 0 <= node < self.num_nodes:
            raise GraphSubstrateError(f"no node {node!r} in graph")
        return self.neighbor_slice(node).tolist()

    def degree(self) -> Iterator[Tuple[int, int]]:
        return zip(range(self.num_nodes), self.degrees.tolist())

    def has_edge(self, u: int, v: int) -> bool:
        row = self.neighbor_slice(u)
        position = np.searchsorted(row, v)
        return bool(position < len(row) and row[position] == v)

    def __repr__(self) -> str:
        return (
            f"CSRGraph({self.num_nodes} nodes, {self.num_edges} edges, "
            f"max_degree={self.max_degree})"
        )


# ----------------------------------------------------------------------
# Virtual graphs
# ----------------------------------------------------------------------
def line_graph_csr(csr: CSRGraph) -> Tuple[CSRGraph, np.ndarray, np.ndarray]:
    """The line graph in CSR form, plus the edge endpoint arrays.

    Virtual node ``i`` is the ``i``-th undirected edge in lexicographic
    order — identical numbering to
    :func:`repro.local_model.network.line_graph_network` — and virtual
    nodes are adjacent iff their edges share an endpoint.  Returns
    ``(line, edge_u, edge_v)`` so callers can map virtual colors back to
    ``(u, v)`` edge keys without a dict round-trip.
    """
    edge_u, edge_v = csr.edge_endpoints()
    num_edges = len(edge_u)
    if num_edges == 0:
        raise GraphSubstrateError("line graph of an edgeless graph is empty")
    n = csr.num_nodes
    # Map every directed adjacency entry to its undirected edge id via
    # binary search over the (sorted) lexicographic edge keys.
    edge_keys = edge_u * np.int64(n) + edge_v
    lo = np.minimum(csr.row_index, csr.indices)
    hi = np.maximum(csr.row_index, csr.indices)
    eid = np.searchsorted(edge_keys, lo * np.int64(n) + hi)
    # Incident edge ids of node v sit at eid[indptr[v] : indptr[v + 1]].
    # All unordered incident pairs, generated per padded column pair —
    # max_degree iterations of O(n) array work instead of an O(sum d^2)
    # Python loop.
    dmax = csr.max_degree
    padded = np.full((n, dmax), -1, dtype=np.int64)
    col = np.arange(len(csr.indices), dtype=np.int64) - np.repeat(
        csr.indptr[:-1], csr.degrees
    )
    padded[csr.row_index, col] = eid
    first: List[np.ndarray] = []
    second: List[np.ndarray] = []
    for i in range(dmax):
        for j in range(i + 1, dmax):
            valid = padded[:, j] >= 0
            if not valid.any():
                continue
            first.append(padded[valid, i])
            second.append(padded[valid, j])
    if first:
        pair_a = np.concatenate(first)
        pair_b = np.concatenate(second)
    else:
        pair_a = np.empty(0, dtype=np.int64)
        pair_b = np.empty(0, dtype=np.int64)
    return CSRGraph.from_edges(num_edges, pair_a, pair_b), edge_u, edge_v


def square_csr(csr: CSRGraph) -> CSRGraph:
    """The square ``G^2`` in CSR form: adjacent iff within distance two.

    Agrees node-for-node with
    :func:`repro.local_model.network.square_graph_network`.  The
    Σ deg² two-hop expansion is processed in bounded chunks, so peak
    memory stays proportional to the chunk size rather than the full
    expansion.
    """
    n = csr.num_nodes
    row = csr.row_index
    degrees = csr.degrees
    keys: List[np.ndarray] = []
    direct = row * np.int64(n) + csr.indices
    keys.append(direct)
    # Two-hop pairs: for each directed entry (u -> v), all (u, w) with w
    # a neighbor of v.  Chunk over directed entries.
    counts = degrees[csr.indices]
    if len(counts):
        boundaries = np.cumsum(counts)
        total = int(boundaries[-1])
        start_entry = 0
        spent = 0
        while start_entry < len(row):
            # Grow the chunk until its expansion would exceed the cap.
            end_entry = int(
                np.searchsorted(boundaries, spent + _EXPANSION_CHUNK, side="right")
            )
            end_entry = max(end_entry, start_entry + 1)
            chunk = slice(start_entry, end_entry)
            src = np.repeat(row[chunk], counts[chunk])
            targets = csr.indices[chunk]
            entry = _concatenated_ranges(
                csr.indptr[targets], counts[chunk]
            )
            dst = csr.indices[entry]
            keep = src != dst
            keys.append(np.unique(src[keep] * np.int64(n) + dst[keep]))
            spent = int(boundaries[end_entry - 1])
            start_entry = end_entry
        del boundaries
    all_keys = np.unique(np.concatenate(keys)) if keys else np.empty(0, np.int64)
    src = all_keys // n
    dst = all_keys % n
    counts = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRGraph(n, indptr, dst)
