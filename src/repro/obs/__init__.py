"""repro.obs — structured tracing and metrics across the library (S14).

One process-wide :class:`Recorder` collects:

* **spans** — context-manager timers (``time.perf_counter_ns``) with
  nesting depth,
* **counters** — monotonic integer metrics,
* **histograms** — fixed-bucket distributions (e.g. the rank-3 fixer's
  representability margins),
* **events** — structured records with a stable JSONL schema
  (``run_id``/``seq``/``ts_ns``/``component``/``event``/``step``/
  ``round``/``payload``).

Observability is **off by default**: instrumented hot paths pay one
``active() is None`` check and nothing else.  Enable it around any code::

    from repro import obs

    with obs.recording(path="trace.jsonl"):
        solve(instance)

then inspect the trace with ``python -m repro stats trace.jsonl`` or
``python -m repro trace trace.jsonl``.  See docs/observability.md.
"""

from repro.obs.events import (
    META_EVENTS,
    OPTIONAL_INT_FIELDS,
    OPTIONAL_STR_FIELDS,
    REQUIRED_FIELDS,
    ObsEvent,
    check_events,
    validate_event,
)
from repro.obs.metrics import (
    DEFAULT_GROWTH,
    Gauge,
    QuantileHistogram,
)
from repro.obs.profile import (
    PROFILE_ENV,
    PROFILE_MODES,
    collect_profiles,
    profile_mode_from_env,
    profiled,
    render_collapsed,
    render_profile_report,
)
from repro.obs.recorder import (
    DEFAULT_BUCKETS,
    MARGIN_BUCKETS,
    PHI_BUCKETS,
    Histogram,
    Recorder,
    Span,
    active,
    install,
    recording,
    span,
    uninstall,
)
from repro.obs.shard import (
    ShardRecorder,
    TraceContext,
    collect_shard_fallback,
    read_shard_file,
)
from repro.obs.sinks import (
    JsonlSink,
    MemorySink,
    follow_trace,
    iter_trace,
    read_trace,
)
from repro.obs.summary import (
    SpanStats,
    TraceSummary,
    percentile,
    render_histogram,
    render_summary,
    render_trace,
    summarize_trace,
    summarize_trace_file,
    summary_to_dict,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_GROWTH",
    "MARGIN_BUCKETS",
    "META_EVENTS",
    "OPTIONAL_INT_FIELDS",
    "OPTIONAL_STR_FIELDS",
    "PHI_BUCKETS",
    "PROFILE_ENV",
    "PROFILE_MODES",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "ObsEvent",
    "QuantileHistogram",
    "Recorder",
    "ShardRecorder",
    "Span",
    "SpanStats",
    "TraceContext",
    "TraceSummary",
    "active",
    "check_events",
    "collect_profiles",
    "collect_shard_fallback",
    "follow_trace",
    "install",
    "iter_trace",
    "percentile",
    "profile_mode_from_env",
    "profiled",
    "read_shard_file",
    "read_trace",
    "recording",
    "render_collapsed",
    "render_histogram",
    "render_profile_report",
    "render_summary",
    "render_trace",
    "span",
    "summarize_trace",
    "summarize_trace_file",
    "summary_to_dict",
    "uninstall",
    "validate_event",
]
