"""repro.obs — structured tracing and metrics across the library (S14).

One process-wide :class:`Recorder` collects:

* **spans** — context-manager timers (``time.perf_counter_ns``) with
  nesting depth,
* **counters** — monotonic integer metrics,
* **histograms** — fixed-bucket distributions (e.g. the rank-3 fixer's
  representability margins),
* **events** — structured records with a stable JSONL schema
  (``run_id``/``seq``/``ts_ns``/``component``/``event``/``step``/
  ``round``/``payload``).

Observability is **off by default**: instrumented hot paths pay one
``active() is None`` check and nothing else.  Enable it around any code::

    from repro import obs

    with obs.recording(path="trace.jsonl"):
        solve(instance)

then inspect the trace with ``python -m repro stats trace.jsonl`` or
``python -m repro trace trace.jsonl``.  See docs/observability.md.
"""

from repro.obs.events import (
    META_EVENTS,
    OPTIONAL_INT_FIELDS,
    REQUIRED_FIELDS,
    ObsEvent,
    check_events,
    validate_event,
)
from repro.obs.recorder import (
    DEFAULT_BUCKETS,
    MARGIN_BUCKETS,
    PHI_BUCKETS,
    Histogram,
    Recorder,
    Span,
    active,
    install,
    recording,
    span,
    uninstall,
)
from repro.obs.sinks import JsonlSink, MemorySink, read_trace
from repro.obs.summary import (
    SpanStats,
    TraceSummary,
    percentile,
    render_histogram,
    render_summary,
    render_trace,
    summarize_trace,
    summarize_trace_file,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "MARGIN_BUCKETS",
    "META_EVENTS",
    "OPTIONAL_INT_FIELDS",
    "PHI_BUCKETS",
    "REQUIRED_FIELDS",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "ObsEvent",
    "Recorder",
    "Span",
    "SpanStats",
    "TraceSummary",
    "active",
    "check_events",
    "install",
    "percentile",
    "read_trace",
    "recording",
    "render_histogram",
    "render_summary",
    "render_trace",
    "span",
    "summarize_trace",
    "summarize_trace_file",
    "uninstall",
    "validate_event",
]
