"""The process-wide :class:`Recorder`: spans, counters, histograms, events.

Design constraints (see docs/observability.md):

* **Disabled is the default and costs one check.**  Instrumented hot
  paths do ``rec = active()`` / ``if rec is None: ...`` — a module-global
  load plus a ``None`` comparison, nothing else.  No recorder objects,
  context managers or string formatting exist on the disabled path.
* **Spans are monotonic wall-time.**  ``time.perf_counter_ns`` at enter
  and exit; nesting is tracked with an explicit stack so consumers can
  reconstruct the call tree from ``depth``.
* **Counters are monotonic, histograms are fixed-bucket.**  Both live as
  in-memory aggregates on the recorder and are flushed to the sinks as
  summary events by :meth:`Recorder.close`, so a JSONL trace is
  self-contained.

The usual way to record a run::

    from repro.obs import recording

    with recording(path="run.jsonl") as rec:
        solve(instance)          # instrumented library code
    # run.jsonl now holds the structured trace
"""

from __future__ import annotations

import time
import uuid
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ObsError
from repro.obs.events import ObsEvent
from repro.obs.metrics import Gauge, QuantileHistogram
from repro.obs.sinks import JsonlSink, MemorySink

#: Default histogram buckets: log-ish spacing covering ratios/margins.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0,
)

#: Buckets for the representability margin (0 <= margin <= 4 in S_rep).
MARGIN_BUCKETS: Tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0,
)

#: Buckets for per-edge phi sums (property P* keeps them in [0, 2]).
PHI_BUCKETS: Tuple[float, ...] = (
    0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0,
)

#: Key type for counters, histograms and span aggregates.
MetricKey = Tuple[str, str]


class Histogram:
    """A fixed-bucket histogram with min/max/total side statistics.

    ``bounds`` are the upper-inclusive bucket boundaries; an extra
    overflow bucket catches values above the last boundary, so
    ``len(counts) == len(bounds) + 1``.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ObsError(f"histogram bounds must be sorted: {bounds!r}")
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one sample."""
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean of the observed samples (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly summary (the payload of ``histogram`` events)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class Span:
    """Context-manager timer; created via :meth:`Recorder.span`."""

    __slots__ = ("_recorder", "component", "name", "payload", "_start", "depth")

    def __init__(self, recorder: "Recorder", component: str, name: str,
                 payload: Dict[str, Any]) -> None:
        self._recorder = recorder
        self.component = component
        self.name = name
        self.payload = payload
        self._start = 0
        self.depth = 0

    def __enter__(self) -> "Span":
        self.depth = len(self._recorder._span_stack)
        self._recorder._span_stack.append(self)
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter_ns() - self._start
        stack = self._recorder._span_stack
        if stack and stack[-1] is self:
            stack.pop()
        self._recorder.record_span(
            self.component, self.name, duration, depth=self.depth,
            **self.payload,
        )


class _NullSpan:
    """Reentrant no-op context manager, shared by every disabled call site."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Recorder:
    """Process-wide metrics and event collector.

    Parameters
    ----------
    sinks:
        Event sinks (:class:`JsonlSink`, :class:`MemorySink`, or anything
        with ``emit(event)`` / ``close()``).  With none given, a
        :class:`MemorySink` is created and exposed as ``recorder.memory``.
    run_id:
        Identifier stamped on every event; a fresh UUID hex by default.
    """

    def __init__(
        self,
        sinks: Optional[Sequence[Any]] = None,
        run_id: Optional[str] = None,
        snapshot_interval: Optional[float] = None,
    ) -> None:
        self.run_id = run_id or uuid.uuid4().hex[:12]
        self.memory: Optional[MemorySink] = None
        if sinks is None:
            self.memory = MemorySink()
            sinks = [self.memory]
        else:
            for sink in sinks:
                if isinstance(sink, MemorySink):
                    self.memory = sink
                    break
        self._sinks: List[Any] = list(sinks)
        self._seq = 0
        self._t0 = time.perf_counter_ns()
        self._span_stack: List[Span] = []
        self.counters: Dict[MetricKey, int] = {}
        self.histograms: Dict[MetricKey, Histogram] = {}
        self.gauges: Dict[MetricKey, Gauge] = {}
        self.quantiles: Dict[MetricKey, QuantileHistogram] = {}
        #: Per-(component, name) span durations in ns, in completion order.
        self.span_durations: Dict[MetricKey, List[int]] = {}
        if snapshot_interval is not None and snapshot_interval <= 0:
            raise ObsError(
                f"snapshot_interval must be positive, got {snapshot_interval}"
            )
        self.snapshot_interval = snapshot_interval
        self._last_snapshot_ns = self._t0
        self._closed = False
        self.event("obs", "run_start", wall_time=time.time())

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def event(
        self,
        component: str,
        event: str,
        step: Optional[int] = None,
        round: Optional[int] = None,
        **payload: Any,
    ) -> ObsEvent:
        """Emit one structured event to every sink."""
        if self._closed:
            raise ObsError("recorder is closed")
        record = ObsEvent(
            run_id=self.run_id,
            seq=self._seq,
            ts_ns=time.perf_counter_ns() - self._t0,
            component=component,
            event=event,
            step=step,
            round=round,
            payload=payload,
        )
        self._seq += 1
        for sink in self._sinks:
            sink.emit(record)
        return record

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def span(self, component: str, name: str, **payload: Any) -> Span:
        """A context-manager timer; emits a ``span`` event on exit."""
        return Span(self, component, name, payload)

    def record_span(
        self,
        component: str,
        name: str,
        duration_ns: int,
        depth: Optional[int] = None,
        **payload: Any,
    ) -> None:
        """Record one completed span (hot paths time manually and call this)."""
        if depth is None:
            depth = len(self._span_stack)
        self.span_durations.setdefault((component, name), []).append(
            duration_ns
        )
        self.event(
            component, "span", name=name, duration_ns=duration_ns,
            depth=depth, **payload,
        )

    # ------------------------------------------------------------------
    # Counters and histograms
    # ------------------------------------------------------------------
    def count(self, component: str, name: str, delta: int = 1) -> int:
        """Increment a monotonic counter; returns the new value."""
        if delta < 0:
            raise ObsError(
                f"counter {component}/{name}: negative delta {delta}"
            )
        key = (component, name)
        value = self.counters.get(key, 0) + delta
        self.counters[key] = value
        return value

    def counter_value(self, component: str, name: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        return self.counters.get((component, name), 0)

    def observe(
        self,
        component: str,
        name: str,
        value: float,
        bounds: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        """Record one sample into a fixed-bucket histogram.

        ``bounds`` only takes effect on the first observation of a given
        ``(component, name)``; later calls reuse the existing buckets.
        """
        key = (component, name)
        histogram = self.histograms.get(key)
        if histogram is None:
            histogram = self.histograms[key] = Histogram(bounds)
        histogram.observe(value)

    def gauge(self, component: str, name: str, value: float) -> None:
        """Set the current level of a gauge metric."""
        key = (component, name)
        gauge = self.gauges.get(key)
        if gauge is None:
            gauge = self.gauges[key] = Gauge()
        gauge.set(value)

    def gauge_value(self, component: str, name: str) -> Optional[float]:
        """Current value of a gauge (``None`` if never set)."""
        gauge = self.gauges.get((component, name))
        return gauge.value if gauge is not None else None

    def observe_quantile(
        self, component: str, name: str, value: float
    ) -> None:
        """Record one sample into a streaming log-bucket quantile histogram.

        Unlike :meth:`observe`, no bucket bounds are needed: samples land
        in geometric buckets and p50/p95/p99 are answerable at any time
        (``recorder.quantiles[(component, name)].quantile(99)``).
        """
        key = (component, name)
        histogram = self.quantiles.get(key)
        if histogram is None:
            histogram = self.quantiles[key] = QuantileHistogram()
        histogram.observe(value)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self, **payload: Any) -> ObsEvent:
        """Emit a ``snapshot`` event with the current live metric values.

        The payload carries every counter, every gauge value and the
        p50/p95/p99 of every quantile histogram under ``component/name``
        keys — the stream ``repro stats --follow`` tails.
        """
        return self.event(
            "obs",
            "snapshot",
            counters={
                f"{component}/{name}": value
                for (component, name), value in sorted(
                    self.counters.items(), key=repr
                )
            },
            gauges={
                f"{component}/{name}": gauge.value
                for (component, name), gauge in sorted(
                    self.gauges.items(), key=repr
                )
            },
            quantiles={
                f"{component}/{name}": histogram.quantiles()
                for (component, name), histogram in sorted(
                    self.quantiles.items(), key=repr
                )
                if histogram.count
            },
            **payload,
        )

    def maybe_snapshot(self) -> Optional[ObsEvent]:
        """Emit a snapshot if ``snapshot_interval`` seconds have elapsed.

        Instrumented loops (scheduler classes, simulator rounds, server
        request handlers) call this at natural checkpoints; with no
        interval configured it is a no-op.
        """
        if self.snapshot_interval is None:
            return None
        now = time.perf_counter_ns()
        if now - self._last_snapshot_ns < self.snapshot_interval * 1e9:
            return None
        self._last_snapshot_ns = now
        return self.snapshot()

    # ------------------------------------------------------------------
    # Worker shard merging
    # ------------------------------------------------------------------
    def emit_shard_record(
        self,
        record: Dict[str, Any],
        worker_id: str,
        parent_span: str,
        attempt: int,
    ) -> ObsEvent:
        """Re-emit one worker-shard record into this recorder's stream.

        The record keeps its component/event/step/round/payload; it is
        stamped with this run's ``run_id``, the next parent ``seq`` and
        the parent clock, and tagged with the worker provenance fields.
        The worker-relative timestamp is preserved as
        ``payload.worker_ts_ns`` so intra-worker timing survives the
        merge.  Causal ordering is by construction: shards are merged
        after the ``dispatch`` event that created them, in buffer order.
        """
        if self._closed:
            raise ObsError("recorder is closed")
        payload = dict(record.get("payload") or {})
        ts = record.get("ts_ns")
        if ts is not None:
            payload["worker_ts_ns"] = ts
        event = ObsEvent(
            run_id=self.run_id,
            seq=self._seq,
            ts_ns=time.perf_counter_ns() - self._t0,
            component=str(record.get("component", "worker")),
            event=str(record.get("event", "event")),
            step=record.get("step"),
            round=record.get("round"),
            payload=payload,
            worker_id=worker_id,
            parent_span=parent_span,
            attempt=attempt,
        )
        self._seq += 1
        for sink in self._sinks:
            sink.emit(event)
        return event

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Flush counter/histogram summaries, end the run, close sinks."""
        if self._closed:
            return
        for (component, name), value in sorted(
            self.counters.items(), key=repr
        ):
            self.event("obs", "counter", metric_component=component,
                       name=name, value=value)
        for (component, name), histogram in sorted(
            self.histograms.items(), key=repr
        ):
            self.event("obs", "histogram", metric_component=component,
                       name=name, **histogram.as_dict())
        for (component, name), gauge in sorted(
            self.gauges.items(), key=repr
        ):
            self.event("obs", "gauge", metric_component=component,
                       name=name, **gauge.as_dict())
        for (component, name), quantile in sorted(
            self.quantiles.items(), key=repr
        ):
            self.event("obs", "quantile", metric_component=component,
                       name=name, **quantile.as_dict())
        self.event("obs", "run_end", events=self._seq + 1,
                   wall_time=time.time())
        self._closed = True
        for sink in self._sinks:
            sink.close()


# ----------------------------------------------------------------------
# The process-wide active recorder
# ----------------------------------------------------------------------
_ACTIVE: Optional[Recorder] = None


def active() -> Optional[Recorder]:
    """The installed recorder, or ``None`` when observability is off.

    This is the single check instrumented hot paths perform.
    """
    return _ACTIVE


def install(recorder: Recorder) -> Recorder:
    """Make ``recorder`` the process-wide active recorder."""
    global _ACTIVE
    _ACTIVE = recorder
    return recorder


def uninstall() -> Optional[Recorder]:
    """Deactivate observability; returns the previously active recorder."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    return previous


def span(component: str, name: str, **payload: Any):
    """A span on the active recorder, or a shared no-op when disabled.

    For warm (not ultra-hot) call sites::

        with obs.span("coloring", "linial"):
            ...
    """
    recorder = _ACTIVE
    if recorder is None:
        return _NULL_SPAN
    return recorder.span(component, name, **payload)


class recording:
    """Context manager: install a fresh recorder for the ``with`` body.

    Parameters
    ----------
    path:
        Optional JSONL trace destination (``append=True`` to accumulate
        multiple runs in one file).
    sink:
        Optional extra sink object.
    run_id:
        Optional explicit run identifier.

    With neither ``path`` nor ``sink``, events go to an in-memory sink
    available as ``recorder.memory.events``.  The previously active
    recorder (if any) is restored on exit, so recordings may nest.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        sink: Optional[Any] = None,
        run_id: Optional[str] = None,
        append: bool = False,
        snapshot_interval: Optional[float] = None,
    ) -> None:
        sinks: Optional[List[Any]] = []
        if path is not None:
            sinks.append(JsonlSink(path, append=append))
        if sink is not None:
            sinks.append(sink)
        if not sinks:
            sinks = None
        self._recorder = Recorder(
            sinks=sinks, run_id=run_id, snapshot_interval=snapshot_interval
        )
        self._previous: Optional[Recorder] = None

    def __enter__(self) -> Recorder:
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self._recorder
        return self._recorder

    def __exit__(self, exc_type, exc, tb) -> None:
        global _ACTIVE
        _ACTIVE = self._previous
        self._recorder.close()
