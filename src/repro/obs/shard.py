"""Cross-process trace shards: worker-side recording, parent-side merge.

The PR 1 :class:`~repro.obs.recorder.Recorder` is strictly in-parent, so
every decide executed by the
:class:`~repro.runtime.schedulers.ProcessScheduler` was a blind spot.
This module closes it with a three-part protocol:

1. **Propagation.**  The parent builds one :class:`TraceContext` per
   chunk dispatch — ``run_id``, the span id of the parent ``dispatch``
   event, a deterministic logical ``worker_id``, the 0-based
   ``attempt`` — and ships it (pickled) alongside the cell payloads.
2. **Shard recording.**  The worker installs a :class:`ShardRecorder`:
   a buffer of plain-dict event records with worker-local ``seq`` and
   monotonic ``ts_ns``.  Records are returned piggybacked on the chunk
   reply; when the context names a ``shard_path``, every record is
   *also* appended eagerly (line-buffered) to a JSONL shard file, so a
   worker that crashes or hangs mid-chunk still leaves its partial
   telemetry on disk for the parent to recover.
3. **Merge.**  The parent re-emits each shard record through
   :meth:`Recorder.emit_shard_record`, stamping ``worker_id`` /
   ``parent_span`` / ``attempt`` and fresh parent ``seq`` numbers.
   Successful chunks merge from the reply; failed attempts merge from
   the shard file at failure-handling time — so a retried chunk keeps
   the events of *both* attempts, distinguished by ``attempt``, and the
   merged trace stays causally ordered (dispatch before its children)
   and deterministic for a fixed fault schedule.

Worker ids are *logical* (``worker:<chunk_id>``), not process ids, so
the merged trace is reproducible across reruns; the operating-system
``pid`` is reported once per shard in the ``worker_start`` payload for
operators who need to correlate with system tools.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, IO, List, Optional

from repro.errors import ObsError


@dataclass(frozen=True)
class TraceContext:
    """Everything a worker needs to join the parent's trace.

    Picklable by construction (plain strings and ints); shipped with
    the chunk payloads.  ``profile`` carries the parent's resolved
    ``REPRO_PROFILE`` mode so pool workers profile consistently even if
    their environment diverges from the parent's.
    """

    #: The parent recorder's run id.
    run_id: str
    #: Span id of the parent ``dispatch`` event (the causal edge).
    parent_span: str
    #: Deterministic logical worker identity (``worker:<chunk_id>``).
    worker_id: str
    #: 0-based dispatch attempt of this chunk.
    attempt: int = 0
    #: JSONL fallback shard file for crash/hang recovery (optional).
    shard_path: Optional[str] = None
    #: Profiling mode inside the worker (``sample``/``cprofile``/None).
    profile: Optional[str] = None


class _ShardSpan:
    """Context-manager timer of one worker-side span."""

    __slots__ = ("_recorder", "component", "name", "payload", "_start")

    def __init__(
        self, recorder: "ShardRecorder", component: str, name: str,
        payload: Dict[str, Any],
    ) -> None:
        self._recorder = recorder
        self.component = component
        self.name = name
        self.payload = payload
        self._start = 0

    def __enter__(self) -> "_ShardSpan":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter_ns() - self._start
        self._recorder.record_span(
            self.component, self.name, duration, **self.payload
        )


class ShardRecorder:
    """A lightweight in-worker event buffer with a JSONL file fallback.

    Deliberately much smaller than the parent Recorder: no sinks, no
    nesting stack, no histogram registry — workers run short chunks and
    everything is merged (and aggregated) in the parent.  Counters are
    buffered and flushed as ``counter`` summary events by :meth:`drain`,
    which the parent-side trace summarizer folds additively into the
    run totals, exactly like multi-run traces.
    """

    def __init__(self, context: TraceContext) -> None:
        self.context = context
        self.records: List[Dict[str, Any]] = []
        self._seq = 0
        self._t0 = time.perf_counter_ns()
        self._counters: Dict[Any, int] = {}
        self._file: Optional[IO[str]] = None
        if context.shard_path:
            try:
                # Line-buffered: each record hits the disk at the
                # newline, so telemetry survives os._exit and SIGTERM.
                self._file = open(
                    context.shard_path, "w", encoding="utf-8", buffering=1
                )
            except OSError:
                # A worker that cannot open its fallback file must still
                # compute; piggybacked delivery continues to work.
                self._file = None

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def event(
        self,
        component: str,
        event: str,
        step: Optional[int] = None,
        round: Optional[int] = None,
        **payload: Any,
    ) -> Dict[str, Any]:
        """Buffer one event record (and append it to the shard file)."""
        record: Dict[str, Any] = {
            "seq": self._seq,
            "ts_ns": time.perf_counter_ns() - self._t0,
            "component": component,
            "event": event,
            "payload": payload,
        }
        if step is not None:
            record["step"] = step
        if round is not None:
            record["round"] = round
        self._seq += 1
        self.records.append(record)
        if self._file is not None:
            try:
                json.dump(record, self._file, default=repr)
                self._file.write("\n")
            except (OSError, ValueError):
                self._file = None
        return record

    def span(self, component: str, name: str, **payload: Any) -> _ShardSpan:
        """A context-manager timer emitting a ``span`` event on exit."""
        return _ShardSpan(self, component, name, payload)

    def record_span(
        self, component: str, name: str, duration_ns: int, **payload: Any
    ) -> None:
        """Record one completed span."""
        self.event(
            component, "span", name=name, duration_ns=duration_ns,
            depth=0, **payload,
        )

    def count(self, component: str, name: str, delta: int = 1) -> int:
        """Increment a worker-local counter; flushed by :meth:`drain`."""
        key = (component, name)
        value = self._counters.get(key, 0) + delta
        self._counters[key] = value
        return value

    # ------------------------------------------------------------------
    # Hand-off
    # ------------------------------------------------------------------
    def drain(self) -> List[Dict[str, Any]]:
        """Flush counters, close the shard file, return the records."""
        for (component, name), value in sorted(
            self._counters.items(), key=repr
        ):
            self.event(
                "obs", "counter", metric_component=component, name=name,
                value=value,
            )
        self._counters.clear()
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        return self.records


def read_shard_file(path: str) -> List[Dict[str, Any]]:
    """Read a (possibly truncated) worker shard file.

    A worker killed mid-write may leave a partial final line; unlike
    :func:`repro.obs.read_trace` this reader *tolerates* an unparseable
    tail (the crash is the event being recovered, not an error), but a
    corrupt line followed by valid ones still raises — that is file
    corruption, not a truncated write.
    """
    records: List[Dict[str, Any]] = []
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as error:
        raise ObsError(f"cannot read shard {path}: {error}") from None
    with handle:
        lines = handle.readlines()
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as error:
            if index == len(lines) - 1:
                break  # truncated tail of a dying worker
            raise ObsError(
                f"shard {path}:{index + 1}: not valid JSON ({error})"
            ) from None
    return records


def collect_shard_fallback(path: Optional[str]) -> List[Dict[str, Any]]:
    """The shard records a failed worker attempt left behind (if any).

    Returns an empty list when no context was shipped, the worker never
    started, or the file is unreadable — recovery telemetry is strictly
    best-effort and must never turn a survivable fault into an error.
    """
    if not path or not os.path.exists(path):
        return []
    try:
        return read_shard_file(path)
    except ObsError:
        return []
