"""The structured event schema of the observability layer.

Every record the :class:`repro.obs.Recorder` emits — user events, span
completions and the counter/histogram summaries written at close — is an
:class:`ObsEvent` with one stable envelope:

``run_id``
    Identifier shared by every event of one recorder (one "run").
``seq``
    Monotonically increasing sequence number within the run; sinks may
    interleave runs in one file, so ``(run_id, seq)`` is the total order.
``ts_ns``
    Nanoseconds since the recorder was created (``time.perf_counter_ns``
    deltas — monotonic, unaffected by wall-clock adjustments).
``component``
    The subsystem that emitted the event (``fixer.rank3``, ``simulator``,
    ``coloring``, ``audit``, ``obs`` for meta events).
``event``
    The event kind within the component (``fix``, ``round``, ``span``,
    ``counter``, ``histogram``...).
``step`` / ``round``
    Optional integer positions: a fixing-step index, a LOCAL round number.
``worker_id`` / ``parent_span`` / ``attempt``
    Optional provenance of events merged from worker trace shards: the
    logical worker that emitted the event, the span id of the parent's
    ``dispatch`` event that caused it, and the 0-based dispatch attempt
    (retried chunks keep every attempt's events).  Absent on in-parent
    events — the schema is append-only.
``payload``
    Free-form event details; values must be JSON-representable (sinks
    fall back to ``repr`` for anything else).

:func:`validate_event` is the schema checker used by the tests, the
benchmark harness and ``repro trace --check``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import ObsError

#: Fields every serialized event must carry, with their required types.
REQUIRED_FIELDS = {
    "run_id": str,
    "seq": int,
    "ts_ns": int,
    "component": str,
    "event": str,
    "payload": dict,
}

#: Optional integer position fields (``None`` or absent when not meaningful).
#: ``attempt`` is the 0-based dispatch attempt of the worker shard an
#: event came from — retried chunks keep the events of *every* attempt,
#: distinguished by this field.
OPTIONAL_INT_FIELDS = ("step", "round", "attempt")

#: Optional string provenance fields set on events merged from worker
#: trace shards: ``worker_id`` names the logical worker that emitted the
#: event, ``parent_span`` is the span id of the parent-side ``dispatch``
#: event that caused it (the causal edge of the cross-process trace).
OPTIONAL_STR_FIELDS = ("worker_id", "parent_span")

#: Event kinds reserved for the recorder itself (component ``obs``).
META_EVENTS = (
    "run_start", "run_end", "counter", "histogram", "gauge", "quantile",
    "snapshot",
)

#: Fault-recovery event kinds of the ``runtime`` component.  Emitted by
#: the fault-tolerant execution paths (``ProcessScheduler`` and the
#: simulators' reliable-delivery layer); events describing the same
#: fault share a ``scope`` payload key, which
#: :func:`repro.core.audit.certify_recovery` uses to check that every
#: recorded fault reached a terminal recovery (``retry`` with outcome
#: ``recovered``, a ``fallback``, or a self-healing fault marked
#: ``recovered``).
RUNTIME_FAULT_EVENTS = ("fault", "retry", "fallback")


@dataclass(frozen=True)
class ObsEvent:
    """One structured observability event."""

    run_id: str
    seq: int
    ts_ns: int
    component: str
    event: str
    step: Optional[int] = None
    round: Optional[int] = None
    payload: Mapping[str, Any] = field(default_factory=dict)
    worker_id: Optional[str] = None
    parent_span: Optional[str] = None
    attempt: Optional[int] = None

    def as_dict(self) -> Dict[str, Any]:
        """Flatten to the stable JSON envelope (omitting unset positions)."""
        record: Dict[str, Any] = {
            "run_id": self.run_id,
            "seq": self.seq,
            "ts_ns": self.ts_ns,
            "component": self.component,
            "event": self.event,
        }
        if self.step is not None:
            record["step"] = self.step
        if self.round is not None:
            record["round"] = self.round
        if self.worker_id is not None:
            record["worker_id"] = self.worker_id
        if self.parent_span is not None:
            record["parent_span"] = self.parent_span
        if self.attempt is not None:
            record["attempt"] = self.attempt
        record["payload"] = dict(self.payload)
        return record


def validate_event(record: Mapping[str, Any]) -> List[str]:
    """Check one serialized event against the schema.

    Returns a list of human-readable problems; an empty list means the
    record conforms.  ``bool`` is rejected where ``int`` is required.
    """
    problems: List[str] = []
    if not isinstance(record, Mapping):
        return [f"event is not a mapping: {record!r}"]
    for name, expected in REQUIRED_FIELDS.items():
        if name not in record:
            problems.append(f"missing required field {name!r}")
            continue
        value = record[name]
        if not isinstance(value, expected) or isinstance(value, bool):
            problems.append(
                f"field {name!r} must be {expected.__name__}, "
                f"got {type(value).__name__}"
            )
    for name in ("component", "event"):
        if isinstance(record.get(name), str) and not record[name]:
            problems.append(f"field {name!r} must be non-empty")
    for name in OPTIONAL_INT_FIELDS:
        value = record.get(name)
        if value is not None and (
            not isinstance(value, int) or isinstance(value, bool)
        ):
            problems.append(f"field {name!r} must be an int or absent")
    for name in OPTIONAL_STR_FIELDS:
        value = record.get(name)
        if value is not None and (not isinstance(value, str) or not value):
            problems.append(
                f"field {name!r} must be a non-empty string or absent"
            )
    if isinstance(record.get("seq"), int) and record["seq"] < 0:
        problems.append("field 'seq' must be non-negative")
    if isinstance(record.get("ts_ns"), int) and record["ts_ns"] < 0:
        problems.append("field 'ts_ns' must be non-negative")
    return problems


def check_events(records: Any) -> int:
    """Validate a sequence of serialized events, raising on any problem.

    Returns the number of records checked.  Raises :class:`ObsError`
    listing every offending record (capped for readability).
    """
    all_problems: List[str] = []
    count = 0
    for index, record in enumerate(records):
        count += 1
        for problem in validate_event(record):
            all_problems.append(f"event {index}: {problem}")
    if all_problems:
        shown = "; ".join(all_problems[:10])
        more = len(all_problems) - 10
        if more > 0:
            shown += f"; ... and {more} more"
        raise ObsError(f"trace fails schema validation: {shown}")
    return count
