"""Trace summarization: what ``repro stats`` and ``repro trace`` print.

A JSONL trace (see :mod:`repro.obs.events` for the schema) is reduced to:

* per-``(component, span-name)`` latency statistics (count, p50, p95,
  p99, total) from the ``span`` events,
* final counter/gauge/quantile values and histograms from the summary
  events the recorder flushes at close,
* LOCAL-round and message totals from the simulator's ``round`` events,
* per-worker event counts from the ``worker_id`` provenance of merged
  worker trace shards,

rendered as the same aligned ASCII tables the benchmark harness uses,
or (``repro stats --json``) as one machine-readable JSON object.

:func:`summarize_trace` accepts any *iterable* of event dictionaries
and consumes it in one pass, so multi-GB traces can be summarized
straight off :func:`repro.obs.iter_trace` without materializing a list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.records import format_table
from repro.obs.metrics import QuantileHistogram
from repro.obs.sinks import iter_trace

MetricKey = Tuple[str, str]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation."""
    if not values:
        return float("nan")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = (len(ordered) - 1) * (q / 100.0)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


@dataclass
class SpanStats:
    """Latency statistics for one ``(component, name)`` span family."""

    count: int
    p50_ns: float
    p95_ns: float
    p99_ns: float
    total_ns: int
    max_depth: int


@dataclass
class TraceSummary:
    """Everything ``repro stats`` reports about one trace file."""

    run_ids: List[str]
    num_events: int
    duration_ns: int
    components: Dict[str, int]
    spans: Dict[MetricKey, SpanStats]
    counters: Dict[MetricKey, int]
    histograms: Dict[MetricKey, Dict[str, Any]]
    rounds: int = 0
    messages: int = 0
    fix_steps: int = 0
    events_by_kind: Dict[Tuple[str, str], int] = field(default_factory=dict)
    gauges: Dict[MetricKey, Dict[str, Any]] = field(default_factory=dict)
    quantiles: Dict[MetricKey, Dict[str, Any]] = field(default_factory=dict)
    #: Events per logical worker id, from merged worker trace shards.
    workers: Dict[str, int] = field(default_factory=dict)
    snapshots: int = 0


def summarize_trace(events: Iterable[Mapping[str, Any]]) -> TraceSummary:
    """Aggregate an iterable of event dictionaries into a :class:`TraceSummary`.

    Single pass, constant memory apart from the aggregates themselves —
    streaming a multi-GB trace through :func:`repro.obs.iter_trace` is
    the intended use for large inputs.
    """
    run_ids: List[str] = []
    components: Dict[str, int] = {}
    durations: Dict[MetricKey, List[int]] = {}
    depths: Dict[MetricKey, int] = {}
    counters: Dict[MetricKey, int] = {}
    histograms: Dict[MetricKey, Dict[str, Any]] = {}
    gauges: Dict[MetricKey, Dict[str, Any]] = {}
    quantile_hists: Dict[MetricKey, QuantileHistogram] = {}
    events_by_kind: Dict[Tuple[str, str], int] = {}
    workers: Dict[str, int] = {}
    num_events = 0
    snapshots = 0
    rounds = 0
    messages = 0
    fix_steps = 0
    max_ts = 0
    for record in events:
        num_events += 1
        worker = record.get("worker_id")
        if isinstance(worker, str):
            workers[worker] = workers.get(worker, 0) + 1
        run_id = record.get("run_id")
        if isinstance(run_id, str) and run_id not in run_ids:
            run_ids.append(run_id)
        component = str(record.get("component", "?"))
        kind = str(record.get("event", "?"))
        components[component] = components.get(component, 0) + 1
        events_by_kind[(component, kind)] = (
            events_by_kind.get((component, kind), 0) + 1
        )
        ts = record.get("ts_ns")
        if isinstance(ts, int) and ts > max_ts:
            max_ts = ts
        payload = record.get("payload") or {}
        if kind == "span":
            key = (component, str(payload.get("name", "?")))
            durations.setdefault(key, []).append(
                int(payload.get("duration_ns", 0))
            )
            depth = payload.get("depth", 0)
            if isinstance(depth, int) and depth > depths.get(key, 0):
                depths[key] = depth
        elif kind == "counter" and component == "obs":
            key = (
                str(payload.get("metric_component", "?")),
                str(payload.get("name", "?")),
            )
            counters[key] = counters.get(key, 0) + int(payload.get("value", 0))
        elif kind == "histogram" and component == "obs":
            key = (
                str(payload.get("metric_component", "?")),
                str(payload.get("name", "?")),
            )
            if key in histograms and histograms[key].get("bounds") == payload.get(
                "bounds"
            ):
                merged = histograms[key]
                merged["counts"] = [
                    a + b
                    for a, b in zip(merged["counts"], payload.get("counts", []))
                ]
                merged["count"] += int(payload.get("count", 0))
                merged["total"] += float(payload.get("total", 0.0))
                for side, pick in (("min", min), ("max", max)):
                    values = [
                        v
                        for v in (merged.get(side), payload.get(side))
                        if v is not None
                    ]
                    merged[side] = pick(values) if values else None
            else:
                histograms[key] = {
                    k: v
                    for k, v in payload.items()
                    if k not in ("metric_component", "name")
                }
        elif kind == "gauge" and component == "obs":
            key = (
                str(payload.get("metric_component", "?")),
                str(payload.get("name", "?")),
            )
            # Last writer wins across runs; min/max/updates merge.
            previous = gauges.get(key)
            current = {
                k: v
                for k, v in payload.items()
                if k not in ("metric_component", "name")
            }
            if previous is not None:
                current["updates"] = int(previous.get("updates", 0)) + int(
                    current.get("updates", 0)
                )
                for side, pick in (("min", min), ("max", max)):
                    values = [
                        v
                        for v in (previous.get(side), current.get(side))
                        if v is not None
                    ]
                    current[side] = pick(values) if values else None
            gauges[key] = current
        elif kind == "quantile" and component == "obs":
            key = (
                str(payload.get("metric_component", "?")),
                str(payload.get("name", "?")),
            )
            merged = quantile_hists.get(key)
            if merged is None:
                growth = payload.get("growth")
                merged = quantile_hists[key] = (
                    QuantileHistogram(growth=float(growth))
                    if growth
                    else QuantileHistogram()
                )
            merged.merge_dict(payload)
        elif kind == "snapshot" and component == "obs":
            snapshots += 1
        elif component == "simulator" and kind == "round":
            rounds += 1
            messages += int(payload.get("messages", 0))
        elif kind == "fix":
            fix_steps += 1
    spans = {
        key: SpanStats(
            count=len(values),
            p50_ns=percentile(values, 50),
            p95_ns=percentile(values, 95),
            p99_ns=percentile(values, 99),
            total_ns=sum(values),
            max_depth=depths.get(key, 0),
        )
        for key, values in durations.items()
    }
    return TraceSummary(
        run_ids=run_ids,
        num_events=num_events,
        duration_ns=max_ts,
        components=components,
        spans=spans,
        counters=counters,
        histograms=histograms,
        rounds=rounds,
        messages=messages,
        fix_steps=fix_steps,
        events_by_kind=events_by_kind,
        gauges=gauges,
        quantiles={
            key: hist.as_dict() for key, hist in quantile_hists.items()
        },
        workers=workers,
        snapshots=snapshots,
    )


def _format_ns(ns: float) -> str:
    """Render nanoseconds with a readable unit."""
    if ns != ns:  # NaN
        return "-"
    if ns >= 1e9:
        return f"{ns / 1e9:.3f} s"
    if ns >= 1e6:
        return f"{ns / 1e6:.3f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f} us"
    return f"{ns:.0f} ns"


def render_histogram(
    data: Mapping[str, Any], width: int = 30
) -> str:
    """ASCII bar rendering of one histogram summary payload."""
    bounds = data.get("bounds") or []
    counts = data.get("counts") or []
    total = max(int(data.get("count", 0)), 1)
    peak = max(counts) if counts else 0
    lines = []
    labels = [f"<= {bound:g}" for bound in bounds] + [
        f"> {bounds[-1]:g}" if bounds else "all"
    ]
    label_width = max(len(label) for label in labels)
    for label, count in zip(labels, counts):
        bar = "#" * (round(width * count / peak) if peak else 0)
        share = 100.0 * count / total
        lines.append(f"  {label.rjust(label_width)}  {bar} {count} ({share:.1f}%)")
    extras = []
    if data.get("min") is not None:
        extras.append(f"min {data['min']:.4g}")
        extras.append(f"max {data['max']:.4g}")
    if data.get("count"):
        extras.append(f"mean {float(data.get('total', 0.0)) / total:.4g}")
    if extras:
        lines.append("  " + ", ".join(extras))
    return "\n".join(lines)


def render_summary(summary: TraceSummary) -> str:
    """The full ``repro stats`` report for one trace."""
    sections: List[str] = []
    runs = ", ".join(summary.run_ids) if summary.run_ids else "(none)"
    sections.append(
        f"trace: {summary.num_events} events, {len(summary.run_ids)} run(s) "
        f"[{runs}], span {_format_ns(summary.duration_ns)}"
    )

    if summary.spans:
        rows = [
            {
                "component": component,
                "span": name,
                "count": stats.count,
                "p50": _format_ns(stats.p50_ns),
                "p95": _format_ns(stats.p95_ns),
                "p99": _format_ns(stats.p99_ns),
                "total": _format_ns(stats.total_ns),
                "max_depth": stats.max_depth,
            }
            for (component, name), stats in sorted(summary.spans.items())
        ]
        sections.append(format_table(rows, title="spans"))

    if summary.counters:
        rows = [
            {"component": component, "counter": name, "value": value}
            for (component, name), value in sorted(summary.counters.items())
        ]
        sections.append(format_table(rows, title="counters"))

    if summary.gauges:
        rows = [
            {
                "component": component,
                "gauge": name,
                "value": data.get("value"),
                "min": data.get("min"),
                "max": data.get("max"),
                "updates": data.get("updates"),
            }
            for (component, name), data in sorted(summary.gauges.items())
        ]
        sections.append(format_table(rows, title="gauges"))

    if summary.quantiles:
        rows = [
            {
                "component": component,
                "metric": name,
                "count": data.get("count"),
                "p50": data.get("p50"),
                "p95": data.get("p95"),
                "p99": data.get("p99"),
                "mean": (
                    float(data.get("total", 0.0)) / data["count"]
                    if data.get("count")
                    else None
                ),
            }
            for (component, name), data in sorted(summary.quantiles.items())
        ]
        sections.append(format_table(rows, title="quantiles"))

    if summary.workers:
        rows = [
            {"worker": worker, "events": count}
            for worker, count in sorted(summary.workers.items())
        ]
        sections.append(format_table(rows, title="worker shards"))

    activity = []
    if summary.snapshots:
        activity.append(f"snapshots: {summary.snapshots}")
    if summary.rounds:
        activity.append(f"LOCAL rounds: {summary.rounds}")
    if summary.messages:
        activity.append(f"messages delivered: {summary.messages}")
    if summary.fix_steps:
        activity.append(f"fixing steps: {summary.fix_steps}")
    if activity:
        sections.append("\n".join(activity))

    for (component, name), data in sorted(summary.histograms.items()):
        sections.append(
            f"histogram {component}/{name}:\n" + render_histogram(data)
        )

    return "\n\n".join(sections)


def render_trace(
    events: Sequence[Mapping[str, Any]],
    component: Optional[str] = None,
    kind: Optional[str] = None,
    limit: Optional[int] = None,
) -> str:
    """Human-readable event listing for ``repro trace``."""
    selected = [
        record
        for record in events
        if (component is None or record.get("component") == component)
        and (kind is None or record.get("event") == kind)
    ]
    shown = selected if limit is None else selected[-limit:]
    lines = []
    for record in shown:
        position = ""
        if record.get("step") is not None:
            position = f" step={record['step']}"
        elif record.get("round") is not None:
            position = f" round={record['round']}"
        payload = record.get("payload") or {}
        detail = " ".join(f"{k}={v!r}" for k, v in payload.items())
        lines.append(
            f"[{_format_ns(record.get('ts_ns', 0)).rjust(10)}] "
            f"{record.get('component')}/{record.get('event')}{position} {detail}"
        )
    header = (
        f"{len(selected)} matching events"
        + (f" (showing last {len(shown)})" if len(shown) < len(selected) else "")
    )
    return "\n".join([header] + lines)


def summary_to_dict(summary: TraceSummary) -> Dict[str, Any]:
    """Flatten a :class:`TraceSummary` to one JSON-ready object.

    The machine-readable form behind ``repro stats --json`` — consumed
    by ``repro bench compare`` and (eventually) service dashboards.
    Metric keys flatten to ``"component/name"`` strings.
    """

    def flat(mapping: Mapping[MetricKey, Any]) -> Dict[str, Any]:
        return {
            f"{component}/{name}": value
            for (component, name), value in sorted(
                mapping.items(), key=repr
            )
        }

    return {
        "run_ids": list(summary.run_ids),
        "num_events": summary.num_events,
        "duration_ns": summary.duration_ns,
        "components": dict(sorted(summary.components.items())),
        "spans": flat(
            {
                key: {
                    "count": stats.count,
                    "p50_ns": stats.p50_ns,
                    "p95_ns": stats.p95_ns,
                    "p99_ns": stats.p99_ns,
                    "total_ns": stats.total_ns,
                    "max_depth": stats.max_depth,
                }
                for key, stats in summary.spans.items()
            }
        ),
        "counters": flat(summary.counters),
        "gauges": flat(summary.gauges),
        "quantiles": flat(summary.quantiles),
        "histograms": flat(summary.histograms),
        "workers": dict(sorted(summary.workers.items())),
        "rounds": summary.rounds,
        "messages": summary.messages,
        "fix_steps": summary.fix_steps,
        "snapshots": summary.snapshots,
        "events_by_kind": {
            f"{component}/{kind}": count
            for (component, kind), count in sorted(
                summary.events_by_kind.items()
            )
        },
    }


def summarize_trace_file(path: str, validate: bool = False) -> TraceSummary:
    """Stream and summarize a JSONL trace in one constant-memory pass."""
    return summarize_trace(iter_trace(path, validate=validate))
