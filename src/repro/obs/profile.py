"""Opt-in per-component profiling emitting flamegraph-ready events.

Setting ``REPRO_PROFILE=sample`` or ``REPRO_PROFILE=cprofile`` makes the
instrumented components (the schedulers' plan execution, the worker
chunk entrypoints) wrap their hot regions in a profiler and emit one
``profile`` event per region with a *collapsed-stack* payload — the
``frame;frame;frame weight`` line format consumed directly by
``flamegraph.pl`` and speedscope.  Profiling is strictly opt-in and
composes with tracing: no recorder or no ``REPRO_PROFILE`` means zero
overhead beyond one environment lookup.

Two modes:

``sample``
    A background thread samples the profiled thread's Python stack
    (``sys._current_frames``) every few milliseconds.  Stacks are exact
    and weights are sample counts; cheap enough for the scheduler's
    in-worker decide loops.
``cprofile``
    Deterministic :mod:`cProfile` over the region.  cProfile records a
    call *graph*, not stacks, so the collapsed payload is the
    caller;callee edge approximation with microsecond self-time
    weights — coarser shape, exact coverage.

``repro profile <trace>`` renders the aggregated collapsed stacks of a
trace (optionally filtered by component) or writes a ``.folded`` file
for external flamegraph tooling.
"""

from __future__ import annotations

import cProfile
import os
import pstats
import sys
import threading
import time
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ObsError

#: Recognized REPRO_PROFILE modes.
PROFILE_MODES = ("sample", "cprofile")

#: Environment variable selecting the profiling mode.
PROFILE_ENV = "REPRO_PROFILE"

#: Sampling period of the ``sample`` mode, in seconds.
SAMPLE_INTERVAL = 0.002


def profile_mode_from_env() -> Optional[str]:
    """The validated ``REPRO_PROFILE`` mode, or ``None`` when unset."""
    value = os.environ.get(PROFILE_ENV, "").strip().lower()
    if not value:
        return None
    if value not in PROFILE_MODES:
        raise ObsError(
            f"{PROFILE_ENV}={value!r}: expected one of {PROFILE_MODES}"
        )
    return value


def _frame_label(frame) -> str:
    """``module:function`` label of one stack frame."""
    module = frame.f_globals.get("__name__", "?")
    return f"{module}:{frame.f_code.co_name}"


class _Sampler(threading.Thread):
    """Samples one thread's stack until stopped; counts collapsed stacks."""

    def __init__(self, thread_id: int, interval: float) -> None:
        super().__init__(name="repro-obs-sampler", daemon=True)
        self._thread_id = thread_id
        self._interval = interval
        self._stop_event = threading.Event()
        self.stacks: Dict[str, int] = {}
        self.samples = 0

    def run(self) -> None:
        while not self._stop_event.wait(self._interval):
            frame = sys._current_frames().get(self._thread_id)
            if frame is None:
                continue
            labels: List[str] = []
            while frame is not None:
                labels.append(_frame_label(frame))
                frame = frame.f_back
            collapsed = ";".join(reversed(labels))
            self.stacks[collapsed] = self.stacks.get(collapsed, 0) + 1
            self.samples += 1

    def stop(self) -> None:
        self._stop_event.set()
        self.join(timeout=1.0)


def _collapse_cprofile(profile: cProfile.Profile) -> Dict[str, int]:
    """Caller;callee edge lines with self-time weights in microseconds."""
    stats = pstats.Stats(profile)
    collapsed: Dict[str, int] = {}

    def label(func: Tuple[str, int, str]) -> str:
        filename, _lineno, name = func
        module = os.path.splitext(os.path.basename(filename))[0]
        return f"{module}:{name}"

    for func, (_cc, _nc, tottime, _ct, callers) in stats.stats.items():
        weight = int(tottime * 1e6)
        if weight <= 0:
            continue
        if callers:
            # Attribute self time to each caller edge proportionally to
            # the per-edge total time cProfile recorded.
            edge_total = sum(edge[3] for edge in callers.values()) or 1.0
            for caller, (_ecc, _enc, _ett, ect) in callers.items():
                share = int(weight * (ect / edge_total))
                if share <= 0:
                    continue
                key = f"{label(caller)};{label(func)}"
                collapsed[key] = collapsed.get(key, 0) + share
        else:
            key = label(func)
            collapsed[key] = collapsed.get(key, 0) + weight
    return collapsed


class profiled:
    """Context manager: profile a region and emit one ``profile`` event.

    ``recorder`` is anything with an ``event(component, event,
    **payload)`` method — the parent :class:`~repro.obs.Recorder` or a
    worker :class:`~repro.obs.shard.ShardRecorder`.  With ``mode=None``
    (profiling disabled) or ``recorder=None`` the context manager is
    inert.
    """

    def __init__(
        self,
        recorder: Optional[Any],
        component: str,
        mode: Optional[str],
        name: str = "region",
    ) -> None:
        if mode is not None and mode not in PROFILE_MODES:
            raise ObsError(
                f"unknown profile mode {mode!r}; expected one of "
                f"{PROFILE_MODES}"
            )
        self._recorder = recorder if mode is not None else None
        self._component = component
        self._mode = mode
        self._name = name
        self._sampler: Optional[_Sampler] = None
        self._cprofile: Optional[cProfile.Profile] = None
        self._start = 0

    def __enter__(self) -> "profiled":
        if self._recorder is None:
            return self
        self._start = time.perf_counter_ns()
        if self._mode == "sample":
            self._sampler = _Sampler(
                threading.get_ident(), SAMPLE_INTERVAL
            )
            self._sampler.start()
        else:
            self._cprofile = cProfile.Profile()
            self._cprofile.enable()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._recorder is None:
            return
        duration = time.perf_counter_ns() - self._start
        if self._sampler is not None:
            self._sampler.stop()
            stacks = self._sampler.stacks
            samples = self._sampler.samples
            self._sampler = None
        else:
            self._cprofile.disable()
            stacks = _collapse_cprofile(self._cprofile)
            samples = sum(stacks.values())
            self._cprofile = None
        self._recorder.event(
            self._component,
            "profile",
            mode=self._mode,
            name=self._name,
            duration_ns=duration,
            samples=samples,
            collapsed=[
                f"{stack} {weight}"
                for stack, weight in sorted(stacks.items())
            ],
        )


# ----------------------------------------------------------------------
# Trace-side rendering (``repro profile``)
# ----------------------------------------------------------------------
def collect_profiles(
    events: Iterable[Mapping[str, Any]],
    component: Optional[str] = None,
) -> Dict[str, int]:
    """Aggregate the collapsed stacks of every ``profile`` event."""
    merged: Dict[str, int] = {}
    for record in events:
        if record.get("event") != "profile":
            continue
        if component is not None and record.get("component") != component:
            continue
        payload = record.get("payload") or {}
        for line in payload.get("collapsed") or []:
            stack, _, weight = str(line).rpartition(" ")
            if not stack:
                continue
            try:
                merged[stack] = merged.get(stack, 0) + int(weight)
            except ValueError:
                raise ObsError(
                    f"malformed collapsed-stack line {line!r}"
                ) from None
    return merged


def render_collapsed(stacks: Mapping[str, int]) -> str:
    """The ``.folded`` file body: one ``stack weight`` line per stack."""
    return "\n".join(
        f"{stack} {weight}" for stack, weight in sorted(stacks.items())
    )


def render_profile_report(
    stacks: Mapping[str, int], top: int = 25
) -> str:
    """A terminal summary: hottest leaf frames plus hottest full stacks."""
    if not stacks:
        return "no profile events in trace (run with REPRO_PROFILE=sample|cprofile)"
    total = sum(stacks.values()) or 1
    leaves: Dict[str, int] = {}
    for stack, weight in stacks.items():
        leaf = stack.rsplit(";", 1)[-1]
        leaves[leaf] = leaves.get(leaf, 0) + weight
    lines = [f"profile: {len(stacks)} stacks, total weight {total}"]
    lines.append("")
    lines.append(f"hottest frames (top {min(top, len(leaves))}):")
    for leaf, weight in sorted(
        leaves.items(), key=lambda item: (-item[1], item[0])
    )[:top]:
        lines.append(f"  {100.0 * weight / total:5.1f}%  {leaf}")
    lines.append("")
    lines.append(f"hottest stacks (top {min(top, len(stacks))}):")
    for stack, weight in sorted(
        stacks.items(), key=lambda item: (-item[1], item[0])
    )[:top]:
        lines.append(f"  {100.0 * weight / total:5.1f}%  {stack}")
    return "\n".join(lines)
