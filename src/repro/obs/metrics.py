"""Live metric primitives: gauges and streaming log-bucket quantiles.

The PR 1 recorder collects *terminal* aggregates — monotonic counters
and fixed-bucket histograms flushed once, at close.  A long-running
service (``repro serve``) and the cross-process execution plane need
*live* metrics too:

* :class:`Gauge` — a last-value metric (queue depth, pool size, cache
  occupancy) with min/max/updates side statistics, snapshottable at any
  point of the run;
* :class:`QuantileHistogram` — a streaming histogram over geometric
  (log-spaced) buckets, answering p50/p95/p99 queries at any time with a
  bounded relative error (one bucket width, ~9% at the default growth
  factor) and O(1) memory per occupied bucket.  This is the latency
  primitive the ``repro serve`` requests/sec + latency dashboard
  consumes; unlike :class:`~repro.obs.recorder.Histogram` it needs no
  a-priori bucket bounds, so one class serves nanosecond spans and
  second-scale deadlines alike.

Both are plain in-memory objects registered on the
:class:`~repro.obs.recorder.Recorder` (``recorder.gauge(...)`` /
``recorder.observe_quantile(...)``) and flushed as ``gauge`` /
``quantile`` summary events at close; periodic ``snapshot`` events
(:meth:`Recorder.snapshot`) publish their current values mid-run for
``repro stats --follow``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import ObsError

#: Default per-bucket growth factor: 2^(1/8) keeps the relative
#: quantile error under ~9% while occupying ~8 buckets per octave.
DEFAULT_GROWTH = 2.0 ** 0.125

#: The quantiles every summary/snapshot reports, in order.
REPORTED_QUANTILES: Tuple[float, ...] = (50.0, 95.0, 99.0)


class Gauge:
    """A last-value metric with min/max/updates side statistics."""

    __slots__ = ("value", "min", "max", "updates")

    def __init__(self) -> None:
        self.value: Optional[float] = None
        self.min = float("inf")
        self.max = float("-inf")
        self.updates = 0

    def set(self, value: float) -> None:
        """Record the current level of the tracked quantity."""
        value = float(value)
        self.value = value
        self.updates += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly summary (the payload of ``gauge`` events)."""
        return {
            "value": self.value,
            "min": self.min if self.updates else None,
            "max": self.max if self.updates else None,
            "updates": self.updates,
        }


class QuantileHistogram:
    """A streaming histogram over geometric buckets.

    A positive sample ``v`` lands in bucket ``floor(log(v) / log(growth))``;
    zero and negative samples are counted separately (they carry no
    magnitude information on a log scale).  Quantiles are answered by
    walking the occupied buckets in order and returning the geometric
    midpoint of the bucket holding the requested rank, so the estimate
    is off by at most one bucket width.
    """

    __slots__ = ("growth", "_log_growth", "buckets", "zero", "count",
                 "total", "min", "max")

    def __init__(self, growth: float = DEFAULT_GROWTH) -> None:
        if growth <= 1.0:
            raise ObsError(
                f"quantile histogram growth must be > 1, got {growth!r}"
            )
        self.growth = float(growth)
        self._log_growth = math.log(self.growth)
        #: Occupied bucket index -> sample count.
        self.buckets: Dict[int, int] = {}
        #: Samples with value <= 0 (rank below every positive bucket).
        self.zero = 0
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self.zero += 1
            return
        index = math.floor(math.log(value) / self._log_growth)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        """Mean of the observed samples (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-th percentile estimate (0..100); NaN when empty."""
        if not 0.0 <= q <= 100.0:
            raise ObsError(f"quantile must be in [0, 100], got {q!r}")
        if self.count == 0:
            return float("nan")
        # 1-based rank of the requested order statistic.
        rank = max(1, math.ceil(self.count * (q / 100.0)))
        if rank <= self.zero:
            # All-zero-or-negative prefix: the best point estimate we
            # kept is the true minimum.
            return min(self.min, 0.0)
        seen = self.zero
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                lower = self.growth ** index
                upper = lower * self.growth
                # Geometric midpoint, clamped to the observed range so
                # single-sample buckets report exact extremes.
                estimate = math.sqrt(lower * upper)
                return min(max(estimate, self.min), self.max)
        return self.max

    def quantiles(self) -> Dict[str, float]:
        """The standard p50/p95/p99 report (keys ``p50``...)."""
        return {
            f"p{q:g}": self.quantile(q) for q in REPORTED_QUANTILES
        }

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly summary (the payload of ``quantile`` events)."""
        record: Dict[str, Any] = {
            "growth": self.growth,
            "buckets": {str(i): c for i, c in sorted(self.buckets.items())},
            "zero": self.zero,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }
        if self.count:
            record.update(self.quantiles())
        return record

    def merge_dict(self, data: Mapping[str, Any]) -> None:
        """Fold a serialized summary (``as_dict``) into this histogram.

        Used by the trace summarizer to combine the ``quantile`` events
        of several runs; requires a matching ``growth``.
        """
        if abs(float(data.get("growth", self.growth)) - self.growth) > 1e-12:
            raise ObsError(
                f"cannot merge quantile histograms with different growth "
                f"factors ({data.get('growth')!r} vs {self.growth!r})"
            )
        for key, count in (data.get("buckets") or {}).items():
            index = int(key)
            self.buckets[index] = self.buckets.get(index, 0) + int(count)
        self.zero += int(data.get("zero", 0))
        self.count += int(data.get("count", 0))
        self.total += float(data.get("total", 0.0))
        for side, pick in (("min", min), ("max", max)):
            value = data.get(side)
            if value is not None:
                setattr(self, side, pick(getattr(self, side), float(value)))
