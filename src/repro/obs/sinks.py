"""Event sinks: where emitted :class:`~repro.obs.events.ObsEvent`\\ s go.

Two sinks cover the library's needs: :class:`JsonlSink` appends one JSON
object per line to a file (the interchange format read by ``repro stats``
and ``repro trace``), and :class:`MemorySink` keeps the serialized events
in a list (tests and in-process consumers).  Payload values that are not
JSON-representable are serialized via ``repr`` rather than rejected, so
instrumented code may pass arbitrary variable names and values.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Optional

from repro.errors import ObsError
from repro.obs.events import ObsEvent


class MemorySink:
    """Collects serialized events in memory (``sink.events``)."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: ObsEvent) -> None:
        self.events.append(event.as_dict())

    def close(self) -> None:
        """Nothing to release; kept for sink-interface symmetry."""


class JsonlSink:
    """Writes one JSON object per line to ``path``.

    Parameters
    ----------
    path:
        Destination file.
    append:
        Open in append mode, so several runs (distinct ``run_id``\\ s) can
        share one trace file — the benchmark harness uses this.
    """

    def __init__(self, path: str, append: bool = False) -> None:
        self.path = path
        try:
            self._handle: Optional[IO[str]] = open(
                path, "a" if append else "w", encoding="utf-8"
            )
        except OSError as error:
            raise ObsError(
                f"cannot open trace {path} for writing: {error}"
            ) from None

    def emit(self, event: ObsEvent) -> None:
        if self._handle is None:
            raise ObsError(f"JSONL sink for {self.path!r} is closed")
        json.dump(event.as_dict(), self._handle, default=repr)
        self._handle.write("\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def read_trace(path: str, validate: bool = False) -> List[Dict[str, Any]]:
    """Load a JSONL trace file back into a list of event dictionaries.

    Blank lines are skipped.  With ``validate=True`` every record is also
    checked against the event schema.

    Raises
    ------
    ObsError
        On unreadable files, unparseable lines, or (with ``validate``)
        schema violations.
    """
    from repro.obs.events import check_events

    events: List[Dict[str, Any]] = []
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as error:
        raise ObsError(f"cannot read trace {path}: {error}") from None
    with handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ObsError(
                    f"{path}:{line_number}: not valid JSON ({error})"
                ) from None
            events.append(record)
    if validate:
        check_events(events)
    return events
