"""Event sinks: where emitted :class:`~repro.obs.events.ObsEvent`\\ s go.

Two sinks cover the library's needs: :class:`JsonlSink` appends one JSON
object per line to a file (the interchange format read by ``repro stats``
and ``repro trace``), and :class:`MemorySink` keeps the serialized events
in a list (tests and in-process consumers).  Payload values that are not
JSON-representable are serialized via ``repr`` rather than rejected, so
instrumented code may pass arbitrary variable names and values.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Dict, IO, Iterator, List, Optional

from repro.errors import ObsError
from repro.obs.events import ObsEvent


class MemorySink:
    """Collects serialized events in memory (``sink.events``)."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: ObsEvent) -> None:
        self.events.append(event.as_dict())

    def close(self) -> None:
        """Nothing to release; kept for sink-interface symmetry."""


class JsonlSink:
    """Writes one JSON object per line to ``path``.

    Parameters
    ----------
    path:
        Destination file.
    append:
        Open in append mode, so several runs (distinct ``run_id``\\ s) can
        share one trace file — the benchmark harness uses this.
    """

    def __init__(self, path: str, append: bool = False) -> None:
        self.path = path
        try:
            self._handle: Optional[IO[str]] = open(
                path, "a" if append else "w", encoding="utf-8"
            )
        except OSError as error:
            raise ObsError(
                f"cannot open trace {path} for writing: {error}"
            ) from None

    def emit(self, event: ObsEvent) -> None:
        if self._handle is None:
            raise ObsError(f"JSONL sink for {self.path!r} is closed")
        json.dump(event.as_dict(), self._handle, default=repr)
        self._handle.write("\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def iter_trace(
    path: str, validate: bool = False
) -> Iterator[Dict[str, Any]]:
    """Stream the events of a JSONL trace file one record at a time.

    The lazy counterpart of :func:`read_trace`: at no point is the whole
    file (or the whole event list) resident in memory, so multi-GB
    worker-shard traces summarize in constant space.  Blank lines are
    skipped.  With ``validate=True`` each record is checked against the
    event schema as it is yielded.

    Raises
    ------
    ObsError
        On unreadable files, unparseable lines, or (with ``validate``)
        the first schema violation.
    """
    from repro.obs.events import validate_event

    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as error:
        raise ObsError(f"cannot read trace {path}: {error}") from None
    with handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ObsError(
                    f"{path}:{line_number}: not valid JSON ({error})"
                ) from None
            if validate:
                problems = validate_event(record)
                if problems:
                    raise ObsError(
                        f"{path}:{line_number}: trace fails schema "
                        f"validation: {'; '.join(problems)}"
                    )
            yield record


def read_trace(path: str, validate: bool = False) -> List[Dict[str, Any]]:
    """Load a JSONL trace file back into a list of event dictionaries.

    Materializes :func:`iter_trace`; prefer the iterator (or
    :func:`repro.obs.summarize_trace_file`) for traces that may not fit
    in memory.
    """
    return list(iter_trace(path, validate=validate))


def follow_trace(
    path: str,
    poll_seconds: float = 0.2,
    idle_timeout: Optional[float] = None,
    stop_when: Optional[Callable[[Dict[str, Any]], bool]] = None,
) -> Iterator[Dict[str, Any]]:
    """Tail a live JSONL trace, yielding events as they are appended.

    The ``tail -f`` of trace files, powering ``repro stats --follow``:
    yields every complete line already present, then polls for new ones.
    A partially written final line is left in the file until its newline
    arrives.  Iteration ends when

    * ``stop_when(event)`` returns true for a yielded event (the default
      stops once every started run has ended — a ``run_end`` has been
      seen for each ``run_start``), or
    * no new data arrives for ``idle_timeout`` seconds (``None`` waits
      forever).
    """
    if stop_when is None:
        started = [0]

        def stop_when(event: Dict[str, Any]) -> bool:
            if event.get("component") == "obs":
                if event.get("event") == "run_start":
                    started[0] += 1
                elif event.get("event") == "run_end":
                    started[0] -= 1
                    if started[0] <= 0:
                        return True
            return False

    # Wait for the file to appear: --follow is commonly started before
    # the producing run.
    waited = 0.0
    while not os.path.exists(path):
        if idle_timeout is not None and waited >= idle_timeout:
            return
        time.sleep(poll_seconds)
        waited += poll_seconds
    buffer = ""
    idle = 0.0
    with open(path, "r", encoding="utf-8") as handle:
        while True:
            chunk = handle.read()
            if chunk:
                idle = 0.0
                buffer += chunk
                while "\n" in buffer:
                    line, buffer = buffer.split("\n", 1)
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError as error:
                        raise ObsError(
                            f"{path}: not valid JSON while following "
                            f"({error})"
                        ) from None
                    yield record
                    if stop_when(record):
                        return
            else:
                if idle_timeout is not None and idle >= idle_timeout:
                    return
                time.sleep(poll_seconds)
                idle += poll_seconds
