"""repro.artifacts — the structural-fingerprint artifact cache.

One size-bounded, obs-instrumented store (:data:`STORE`) whose tiers
hold every expensive derived object as a pure function of instance
*shape*: compiled event kernels, stacked kernel batches, lowered
vector-plane templates, CSR index maps, and colorings + FixPlans.
``REPRO_ARTIFACTS=on|off`` selects the plane; ``off`` is the
differential oracle.  See :mod:`repro.artifacts.store` for the cache
semantics and :mod:`repro.artifacts.fingerprint` for the key scheme.
"""

from repro.artifacts.store import (
    ARTIFACTS_ENV,
    CAPACITY_ENV,
    DEFAULT_CAPACITIES,
    ArtifactStore,
    ArtifactTier,
    LRUCache,
    STORE,
    artifacts_enabled,
    artifacts_mode,
    set_artifacts_mode,
    using_artifacts,
)
from repro.artifacts.fingerprint import (
    digest_key,
    event_artifact_key,
    event_structure,
    instance_fingerprint,
    instance_key,
    stack_key,
)

__all__ = [
    "ARTIFACTS_ENV",
    "CAPACITY_ENV",
    "DEFAULT_CAPACITIES",
    "ArtifactStore",
    "ArtifactTier",
    "LRUCache",
    "STORE",
    "artifacts_enabled",
    "artifacts_mode",
    "set_artifacts_mode",
    "using_artifacts",
    "digest_key",
    "event_artifact_key",
    "event_structure",
    "instance_fingerprint",
    "instance_key",
    "stack_key",
]
