"""Canonical structural fingerprints for cross-instance artifact reuse.

An artifact (kernel, template, plan, index map) may be shared between
two instances only if *everything* it bakes in is equal between them.
The lean commit paths push template-held variable objects, event names
and value labels straight into fixer state (assignments, step records,
phi ledgers), and ``EventKernel.value_index`` is label-addressed — so
the fingerprint is **content-addressed, not rename-insensitive**: it
covers event names, scope names, value labels, probability vectors and
the tabulated bad-outcome sets, in construction order.  Two instances
produced by the same generator with the same parameters fingerprint
identically; renaming a variable changes the fingerprint (a
rename-insensitive canonicalisation is future service-layer work).

Fingerprintability requires every event to carry a *bad-outcomes hint*
(events built via :meth:`BadEvent.from_bad_outcomes` /
:meth:`BadEvent.all_equal`, or loaded through :mod:`repro.lll.io`): the
hint is the complete predicate semantics in tabulated form.  An event
defined only by an opaque predicate closure cannot be compared for
equality without enumerating it, so instances containing one are
reported unfingerprintable (``None``) and every store tier skips them —
they keep the exact legacy per-object cache behaviour.

Keys are 16-byte BLAKE2b digests of canonical ``repr`` streams rather
than the structure tuples themselves: at n = 10^6 events the digest
keys cost ~50 MB where the tuples would cost ~0.5 GB.  The scheme
relies on ``repr`` faithfulness of names and value labels, the same
assumption the plan builders already make when they sort events by
``repr``.
"""

from __future__ import annotations

from hashlib import blake2b
from typing import Optional, Tuple

_UNSET = object()

#: Digest width. 16 bytes = 128 bits: collision probability is
#: negligible at any realistic artifact count.
_DIGEST_SIZE = 16


def event_structure(event) -> Optional[tuple]:
    """The canonical structure tuple of one event, or ``None``.

    ``None`` means the event's semantics are not tabulated (predicate
    closure without a bad-outcomes hint) and nothing derived from it
    may be shared across objects.
    """
    hint = event.bad_outcomes_hint
    if hint is None:
        return None
    return (
        event.name,
        event.scope_names,
        tuple(
            (variable.values, variable.probabilities)
            for variable in event.variables
        ),
        tuple(sorted(map(repr, hint))),
    )


def digest_key(structure: tuple) -> bytes:
    """A fixed-width digest key for one canonical structure tuple."""
    return blake2b(
        repr(structure).encode("utf-8"), digest_size=_DIGEST_SIZE
    ).digest()


def event_artifact_key(event) -> Optional[bytes]:
    """The kernels-tier key of one event, or ``None``.

    Content-addressed over the event's name, scope, per-variable
    supports and tabulated bad outcomes — everything
    :meth:`EventKernel.from_outcomes` reads — so a hit returns a kernel
    bit-identical to the one compilation would produce.

    The digest is memoised on the event (events are immutable once
    their hint is set): every consumer after the first — the kernel
    tier, :func:`instance_fingerprint` — pays one attribute read
    instead of a repr + BLAKE2b pass over the structure tuple.
    """
    cached = getattr(event, "_artifact_key", None)
    if cached is not None:
        return cached
    structure = event_structure(event)
    if structure is None:
        return None
    key = digest_key(structure)
    try:
        event._artifact_key = key
    except AttributeError:
        pass
    return key


def instance_fingerprint(instance) -> Optional[bytes]:
    """The structural fingerprint of a whole instance, or ``None``.

    A digest over every event's digest key in construction order
    (event order determines variable first-appearance order, hence
    every iteration order the plan builders and the template lowering
    see).  Hashing the per-event *keys* rather than the raw structure
    streams means one structure pass per event per process — the pass
    the kernels tier needs anyway — and the instance digest itself
    touches only 16 bytes per event.  Cached on the instance —
    instances are immutable after construction, so the fingerprint
    never goes stale.
    """
    cached = getattr(instance, "_artifact_fingerprint", _UNSET)
    if cached is not _UNSET:
        return cached
    hasher = blake2b(digest_size=_DIGEST_SIZE)
    fingerprint: Optional[bytes] = None
    for event in instance.events:
        key = event_artifact_key(event)
        if key is None:
            break
        hasher.update(key)
    else:
        fingerprint = hasher.digest()
    instance._artifact_fingerprint = fingerprint
    return fingerprint


def instance_key(instance, *parts) -> Optional[Tuple]:
    """A store key scoped to an instance shape, or ``None``.

    Convenience for the template/plan/indexing tiers: the instance
    fingerprint plus discriminating parts (kind, rank, artifact name).
    """
    fingerprint = instance_fingerprint(instance)
    if fingerprint is None:
        return None
    return (fingerprint,) + parts


def stack_key(kernels) -> Tuple:
    """The stacks-tier key: the interned fingerprints of the kernels.

    ``EventKernel.fingerprint()`` interns on kernel *content* within a
    process, so content-identical kernel sets — including kernels
    unpickled afresh in a worker for every chunk — map to the same key
    and share one stacked truth table.
    """
    return tuple(kernel.fingerprint() for kernel in kernels)
