"""The cross-instance artifact store: one cache plane, many tiers.

The theorems this repository reproduces are structural — the threshold
criterion and the fixing procedures depend only on the *shape* of the
dependency structure and the event truth tables — so every expensive
derived object is a pure function of that shape: compiled
:class:`~repro.probability.engine.EventKernel`\\ s, stacked kernel
batches, lowered vector-plane templates, CSR index maps, colorings and
:class:`~repro.runtime.plan.FixPlan`\\ s.  Before this module each layer
kept its own private cache (per-event FIFO dicts, per-instance template
dicts, ``WeakKeyDictionary``\\ s, a per-``execute`` memo); none of them
survived the object that owned them, so two instances of the same shape
recomputed everything from scratch.

:class:`ArtifactStore` unifies those caches into named **tiers** of one
process-global store (:data:`STORE`).  Each tier is a size-bounded
:class:`LRUCache` with hit/miss/eviction counters; keys are canonical
structural fingerprints (see :mod:`repro.artifacts.fingerprint`), so an
artifact computed for one instance is found by every later instance of
the same shape — across fixers, schedulers, and (for the kernel-stack
tier) across process-pool workers, which hold their own per-process
store warmed by repeated chunk dispatch.

``REPRO_ARTIFACTS=on|off`` selects the plane (default ``on``); ``off``
disables every cross-object tier and is the differential oracle — the
legacy per-object caches retain their exact behaviour, so a transcript
under ``off`` is the reference an ``on`` run must reproduce bit for
bit.  Per-tier capacities can be overridden with
``REPRO_ARTIFACTS_CAPACITY=tier=n[,tier=n...]``.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Tuple

from repro.errors import ConfigurationError

#: Environment variable selecting the artifact plane ("on" or "off").
ARTIFACTS_ENV = "REPRO_ARTIFACTS"

#: Environment variable overriding per-tier capacities,
#: e.g. ``REPRO_ARTIFACTS_CAPACITY=kernels=2048,plans=16``.
CAPACITY_ENV = "REPRO_ARTIFACTS_CAPACITY"

_VALID_MODES = ("on", "off")

# Lazily validated, like REPRO_ENGINE/REPRO_DECIDE: raising at import
# time would crash ``import repro`` before CLI error handling exists.
_MODE: Optional[str] = None

#: Default per-tier entry capacities.  The kernel tier is sized for the
#: n = 10^6 scale workloads (one event per node); the structural tiers
#: hold one entry per instance *shape*, which production traffic keeps
#: small by construction.
DEFAULT_CAPACITIES: Dict[str, int] = {
    "kernels": 1 << 20,
    "stacks": 512,
    "templates": 128,
    "plans": 128,
    "indexings": 256,
    "situations": 1 << 16,
    "parameters": 64,
    # Whole solve responses memoized by the solve service, keyed on
    # canonical request *content* (not shape): sound because the
    # fixers are deterministic, so an identical instance always
    # produces the bit-identical result.
    "solutions": 512,
}

#: Capacity for tiers not listed in :data:`DEFAULT_CAPACITIES`.
FALLBACK_CAPACITY = 256


def _mode_from_env() -> str:
    mode = os.environ.get(ARTIFACTS_ENV, "on").strip().lower()
    if mode not in _VALID_MODES:
        raise ConfigurationError(
            f"{ARTIFACTS_ENV}={mode!r} is not a valid artifacts mode; "
            f"expected one of {_VALID_MODES}"
        )
    return mode


def artifacts_mode() -> str:
    """The active artifact plane: ``"on"`` or ``"off"``."""
    global _MODE
    if _MODE is None:
        _MODE = _mode_from_env()
    return _MODE


def artifacts_enabled() -> bool:
    """Whether cross-instance artifact reuse is active."""
    return artifacts_mode() == "on"


def set_artifacts_mode(mode: str) -> str:
    """Select the artifact plane process-wide; returns the previous mode."""
    global _MODE
    if mode not in _VALID_MODES:
        raise ConfigurationError(
            f"invalid artifacts mode {mode!r}; expected one of "
            f"{_VALID_MODES}"
        )
    previous = artifacts_mode()
    _MODE = mode
    return previous


class using_artifacts:
    """Context manager: run the body under a specific artifacts mode.

    The differential-oracle pattern of the artifact-cache parity tests::

        with using_artifacts("off"):
            reference = solve(instance)
        with using_artifacts("on"):
            candidate = solve(instance)
    """

    def __init__(self, mode: str) -> None:
        self._mode = mode
        self._previous: Optional[str] = None

    def __enter__(self) -> str:
        self._previous = set_artifacts_mode(self._mode)
        return self._mode

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._previous is not None:
            set_artifacts_mode(self._previous)


class LRUCache:
    """A size-bounded mapping with least-recently-used eviction.

    The shared cache primitive of the artifact plane: store tiers are
    LRU caches, and the per-object caches that stay local (the
    per-event conditional-probability cache, the per-section decision
    memo) use the same class so every cache in the system counts hits,
    misses and evictions the same way — and none of them silently stops
    inserting at capacity.

    ``capacity <= 0`` disables insertion entirely (reads always miss),
    matching the ``cache_limit=0`` contract of :class:`BadEvent`.
    """

    __slots__ = ("data", "capacity", "hits", "misses", "evictions")

    def __init__(self, capacity: int) -> None:
        self.data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.capacity = int(capacity)
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency on a hit."""
        data = self.data
        value = data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        data.move_to_end(key)
        return value

    def put(self, key: Hashable, value: Any) -> Optional[Hashable]:
        """Insert ``key``; returns the evicted key, if any."""
        if self.capacity <= 0:
            return None
        data = self.data
        if key in data:
            data[key] = value
            data.move_to_end(key)
            return None
        evicted = None
        if len(data) >= self.capacity:
            evicted, _ = data.popitem(last=False)
            self.evictions += 1
        data[key] = value
        return evicted

    def __contains__(self, key: Hashable) -> bool:
        # Membership probes are bookkeeping, not lookups: no recency
        # refresh, no hit/miss accounting.
        return key in self.data

    def __len__(self) -> int:
        return len(self.data)

    def __setitem__(self, key: Hashable, value: Any) -> None:
        self.put(key, value)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self.data.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class ArtifactTier(LRUCache):
    """One named tier of the store."""

    __slots__ = ("name",)

    def __init__(self, name: str, capacity: int) -> None:
        super().__init__(capacity)
        self.name = name


class ArtifactStore:
    """Named LRU tiers behind one get/put surface.

    ``get``/``put`` are no-ops (always-miss, never-populate, nothing
    counted) when the plane is off or the caller could not fingerprint
    its input (``key is None``) — so ``REPRO_ARTIFACTS=off`` reproduces
    the pre-store behaviour of every call site exactly.
    """

    def __init__(self, capacities: Optional[Dict[str, int]] = None) -> None:
        self._tiers: Dict[str, ArtifactTier] = {}
        self._capacities = dict(capacities) if capacities else None
        self._env_capacities: Optional[Dict[str, int]] = None
        self._published: Dict[str, int] = {}

    # -- capacity resolution -------------------------------------------
    def _capacity(self, name: str) -> int:
        if self._capacities is not None and name in self._capacities:
            return self._capacities[name]
        if self._env_capacities is None:
            self._env_capacities = self._parse_capacity_env()
        if name in self._env_capacities:
            return self._env_capacities[name]
        return DEFAULT_CAPACITIES.get(name, FALLBACK_CAPACITY)

    @staticmethod
    def _parse_capacity_env() -> Dict[str, int]:
        raw = os.environ.get(CAPACITY_ENV, "").strip()
        if not raw:
            return {}
        overrides: Dict[str, int] = {}
        for part in raw.split(","):
            part = part.strip()
            if not part:
                continue
            name, _, value = part.partition("=")
            try:
                overrides[name.strip()] = int(value)
            except ValueError:
                raise ConfigurationError(
                    f"{CAPACITY_ENV}: cannot parse {part!r}; expected "
                    f"tier=integer"
                ) from None
        return overrides

    # -- tier access ---------------------------------------------------
    def tier(self, name: str) -> ArtifactTier:
        """The named tier, created on first use."""
        tier = self._tiers.get(name)
        if tier is None:
            tier = ArtifactTier(name, self._capacity(name))
            self._tiers[name] = tier
        return tier

    def get(self, tier_name: str, key: Optional[Hashable]) -> Any:
        """Tier lookup; ``None`` when off, unfingerprintable, or missing."""
        if key is None or not artifacts_enabled():
            return None
        return self.tier(tier_name).get(key)

    def put(self, tier_name: str, key: Optional[Hashable], value: Any) -> None:
        """Tier insert; dropped when off or unfingerprintable."""
        if key is None or not artifacts_enabled():
            return
        self.tier(tier_name).put(key, value)

    # -- introspection -------------------------------------------------
    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-tier ``{hits, misses, evictions, size, capacity}``."""
        return {
            name: {
                "hits": tier.hits,
                "misses": tier.misses,
                "evictions": tier.evictions,
                "size": len(tier),
                "capacity": tier.capacity,
            }
            for name, tier in sorted(self._tiers.items())
        }

    def totals(self) -> Dict[str, int]:
        """Store-wide hit/miss/eviction/size sums."""
        totals = {"hits": 0, "misses": 0, "evictions": 0, "size": 0}
        for tier in self._tiers.values():
            totals["hits"] += tier.hits
            totals["misses"] += tier.misses
            totals["evictions"] += tier.evictions
            totals["size"] += len(tier)
        return totals

    def clear(self) -> None:
        """Drop every artifact and reset all counters and publish marks."""
        for tier in self._tiers.values():
            tier.clear()
            tier.reset_stats()
        self._published.clear()

    def publish_stats(self, recorder) -> None:
        """Push per-tier counter deltas and size gauges to a recorder.

        Delta-based like :func:`repro.probability.engine.publish_stats`:
        safe to call repeatedly (the scheduler publishes at the end of
        every ``execute``), each counter's total is preserved across
        publishes.
        """
        for name, tier in sorted(self._tiers.items()):
            for stat in ("hits", "misses", "evictions"):
                key = f"{name}_{stat}"
                value = getattr(tier, stat)
                delta = value - self._published.get(key, 0)
                if delta > 0:
                    recorder.count("artifacts", key, delta)
                self._published[key] = value
            recorder.gauge("artifacts", f"{name}_size", len(tier))


_MISSING = object()

#: The process-global artifact store.  Worker processes build their own
#: on first import — that per-process store is the worker-side warm
#: cache: it persists across the chunks a pooled worker executes.
STORE = ArtifactStore()
