"""repro — reproduction of Brandt, Maus & Uitto (PODC 2019).

"A Sharp Threshold Phenomenon for the Distributed Complexity of the
Lovász Local Lemma": deterministic LLL fixing below the exponential
threshold ``p < 2^-d`` for variables of rank at most 3, with a LOCAL-model
simulator, deterministic coloring substrates, randomized baselines and the
paper's applications.

The most commonly used names are re-exported here; see the subpackages for
the full API:

* :mod:`repro.probability` — exact discrete probability engine
* :mod:`repro.lll` — LLL instances, criteria, verification
* :mod:`repro.geometry` — representable triples, the surface ``f(a, b)``
* :mod:`repro.core` — the paper's fixers (sequential and distributed)
* :mod:`repro.local_model` — synchronous LOCAL-model simulator
* :mod:`repro.coloring` — deterministic distributed coloring
* :mod:`repro.baselines` — Moser-Tardos and other baselines
* :mod:`repro.applications` — sinkless orientation, weak splitting, ...
* :mod:`repro.generators` — graphs, hypergraphs and instance workloads
* :mod:`repro.analysis` — log*, round-bound formulas, experiment records
"""

from repro.lll import (
    ExponentialCriterion,
    LLLInstance,
    check_preconditions,
    verify_solution,
)
from repro.probability import (
    BadEvent,
    DiscreteVariable,
    PartialAssignment,
    ProductSpace,
)

__version__ = "1.0.0"

__all__ = [
    "BadEvent",
    "DiscreteVariable",
    "ExponentialCriterion",
    "LLLInstance",
    "PartialAssignment",
    "ProductSpace",
    "check_preconditions",
    "verify_solution",
    "__version__",
]
