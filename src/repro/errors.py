"""Exception hierarchy shared across the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch library failures without also swallowing programming
errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidDistributionError(ReproError):
    """A discrete distribution is malformed.

    Raised when probabilities are negative, do not sum to one, or the
    number of probabilities does not match the number of values.
    """


class UnknownVariableError(ReproError):
    """An operation referenced a variable that is not part of the scope."""


class InvalidAssignmentError(ReproError):
    """A variable was assigned a value outside its support."""


class ProbabilityMassError(ReproError):
    """Enumerated probability mass exceeded 1 beyond tolerance.

    Valid distributions cannot sum to more than one; mass above
    ``1 + eps`` indicates inconsistent supports or weights, so the
    engines raise instead of silently clamping the result.
    """


class EnumerationLimitError(ReproError):
    """An exact probability computation would enumerate too many outcomes.

    The exact engine enumerates the product space of the *unfixed* variables
    in an event's scope.  Instances in the paper's regime (bounded degree)
    keep this small; this error surfaces accidental blow-ups instead of
    letting a computation run away silently.
    """


class CriterionViolationError(ReproError):
    """An LLL instance does not satisfy the criterion required by an algorithm."""


class RankViolationError(ReproError):
    """A variable affects more events than the algorithm supports."""


class NoGoodValueError(ReproError):
    """No value of a random variable preserves the algorithm's invariant.

    For instances satisfying ``p < 2^-d`` the paper proves this can never
    happen (Lemma 3.2 / Theorem 1.1); seeing this error on such an instance
    indicates a bug or a numerical-tolerance problem, so the fixers raise
    loudly rather than guessing.
    """


class NotRepresentableError(ReproError):
    """A triple is outside ``S_rep`` and therefore cannot be decomposed."""


class PStarViolationError(ReproError):
    """The property P* bookkeeping invariant was violated."""


class AlgorithmFailedError(ReproError):
    """A (typically randomized) algorithm exceeded its execution budget."""


class SimulationError(ReproError):
    """The LOCAL-model simulation reached an inconsistent state."""


class SchedulerProtocolError(ReproError):
    """A scheduler worker reply violated the dispatch protocol.

    Raised when a worker returns the wrong number of cell results or a
    short/garbled choice list for a cell.  Committing such a reply would
    silently corrupt the phi ledger, so the parent raises *before* any
    commit — the error names the offending cell or chunk.
    """


class ConfigurationError(ReproError):
    """A configuration knob (environment variable or setter) is invalid.

    Raised when a ``REPRO_*`` environment variable or a programmatic
    mode setter names a value outside the allowed set.  The message
    always names the variable (or setter) and the allowed values, so a
    typo'd deployment environment fails loudly at first use instead of
    silently changing which plane serves traffic.
    """


class AdmissionError(ReproError):
    """The solve service rejected a request at admission.

    The 429-style overload signal: the server's bounded in-flight queue
    is full, or the server is draining and no longer accepts work.  The
    request was never started, so retrying later is always safe.
    """


class DeadlineExceededError(ReproError):
    """A request's deadline elapsed before a result was produced.

    Raised by the solve service when a request spends its whole budget
    queued behind other work, or when execution outlives the remaining
    budget.  The underlying scheduler pool is not poisoned: per-chunk
    deadlines (PR 5) bound worker hangs independently, so subsequent
    requests proceed normally.
    """


class FaultSpecError(ReproError):
    """A fault-injection specification string or plan is malformed."""


class FaultRecoveryError(ReproError):
    """Fault recovery exhausted its budget without restoring the run.

    Raised when an injected (or real) fault persists past every retry:
    a message dropped on all redelivery attempts, for example.  The
    message names the fault site so post-mortems need no log spelunking.
    """


class GraphSubstrateError(ReproError):
    """The array-native graph substrate received malformed input.

    Raised by :mod:`repro.graph` when a CSR construction sees
    out-of-range endpoints, self-loops, or NumPy falling back to object
    dtype (which would silently forfeit every vectorized fast path).
    """


class ColoringError(ReproError):
    """A coloring routine produced or received an invalid coloring."""


class ObsError(ReproError):
    """An observability record or trace is malformed.

    Raised by the :mod:`repro.obs` schema checker when an emitted event is
    missing required fields or has fields of the wrong type, and by the
    trace reader when a JSONL line cannot be parsed.
    """
