"""Non-LLL baselines: exhaustive search and rejection sampling.

:func:`exhaustive_search` is the ground-truth oracle for tiny instances —
tests use it to confirm that the deterministic fixers find assignments
exactly when one exists.  :func:`rejection_sampling` is the naive
randomized baseline (draw until all events are avoided); its success
probability decays with the number of events, which is precisely the
weakness the Local Lemma circumvents.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import AlgorithmFailedError
from repro.lll.instance import LLLInstance
from repro.probability import PartialAssignment


def exhaustive_search(instance: LLLInstance) -> Optional[PartialAssignment]:
    """The first (in enumeration order) assignment avoiding all bad events.

    Returns ``None`` when no avoiding assignment exists.  Exponential in
    the number of variables; guarded by the product-space enumeration
    limit.
    """
    for assignment, _mass in instance.space.enumerate_assignments():
        if not instance.occurring_events(assignment):
            return assignment
    return None


def count_avoiding_assignments(instance: LLLInstance) -> int:
    """The number of assignments avoiding all bad events (tiny instances)."""
    count = 0
    for assignment, _mass in instance.space.enumerate_assignments():
        if not instance.occurring_events(assignment):
            count += 1
    return count


def avoidance_probability(instance: LLLInstance) -> float:
    """Exact probability that a random assignment avoids all bad events.

    The LLL guarantees this is positive under its criterion; benches use
    it to show how small the naive success probability is compared to the
    deterministic fixers' certainty.
    """
    return instance.space.probability(
        lambda assignment: not instance.occurring_events(assignment)
    )


@dataclass
class SamplingResult:
    """Outcome of rejection sampling."""

    #: The avoiding assignment found.
    assignment: PartialAssignment
    #: Number of complete samples drawn (including the successful one).
    attempts: int


def rejection_sampling(
    instance: LLLInstance,
    seed: int,
    max_attempts: int = 100_000,
) -> SamplingResult:
    """Resample the whole space until no bad event occurs.

    Raises
    ------
    AlgorithmFailedError
        If ``max_attempts`` samples all fail.
    """
    rng = random.Random(seed)
    for attempt in range(1, max_attempts + 1):
        assignment = instance.space.sample(rng)
        if not instance.occurring_events(assignment):
            return SamplingResult(assignment=assignment, attempts=attempt)
    raise AlgorithmFailedError(
        f"rejection sampling failed {max_attempts} times"
    )
