"""Baseline algorithms (S10): Moser-Tardos, exhaustive search, sampling."""

from repro.baselines.moser_tardos import (
    MoserTardosResult,
    distributed_moser_tardos,
    sequential_moser_tardos,
)
from repro.baselines.search import (
    SamplingResult,
    avoidance_probability,
    count_avoiding_assignments,
    exhaustive_search,
    rejection_sampling,
)

__all__ = [
    "MoserTardosResult",
    "SamplingResult",
    "avoidance_probability",
    "count_avoiding_assignments",
    "distributed_moser_tardos",
    "exhaustive_search",
    "rejection_sampling",
    "sequential_moser_tardos",
]
