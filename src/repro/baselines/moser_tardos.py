"""The Moser-Tardos resampling framework [MT10] — sequential and distributed.

The paper's related-work comparison point: under the classic criterion
``e*p*(d+1) < 1`` the sequential algorithm terminates in expected
``O(m/d)`` resamplings, and the straightforward distributed implementation
solves LLL in ``O(log^2 n)`` rounds.  The benchmarks run these baselines on
the same below-threshold instances the deterministic fixers solve in
``O(poly d + log* n)`` rounds, to exhibit the complexity gap, and on
at-threshold instances (sinkless orientation), where the deterministic
fixers do not apply.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, List, Optional, Set, Tuple

from repro.errors import AlgorithmFailedError
from repro.lll.instance import LLLInstance
from repro.probability import PartialAssignment
from repro.runtime.plan import build_resampling_round


@dataclass
class MoserTardosResult:
    """Outcome of a Moser-Tardos run."""

    #: The final assignment (avoids all bad events).
    assignment: PartialAssignment
    #: Total number of event resamplings performed.
    resamplings: int
    #: For the distributed variant: number of parallel rounds; for the
    #: sequential variant: equals ``resamplings``.
    rounds: int


def sequential_moser_tardos(
    instance: LLLInstance,
    seed: int,
    max_resamplings: Optional[int] = None,
) -> MoserTardosResult:
    """The sequential Moser-Tardos algorithm.

    Samples all variables, then repeatedly picks the occurring bad event
    with the smallest name and resamples its variables, until no bad
    event occurs.

    Raises
    ------
    AlgorithmFailedError
        If the resampling budget is exhausted (default
        ``1000 * num_events``).
    """
    rng = random.Random(seed)
    if max_resamplings is None:
        max_resamplings = 1000 * instance.num_events
    assignment = instance.space.sample(rng)
    resamplings = 0
    # Occurring set maintained incrementally: a resampling can only
    # change the status of events sharing one of the resampled
    # variables, so only those are re-evaluated each iteration (each
    # re-evaluation is an O(1) truth-table membership test under the
    # compiled engine).
    occurring = {
        event.name for event in instance.occurring_events(assignment)
    }
    while True:
        if not occurring:
            return MoserTardosResult(
                assignment=assignment, resamplings=resamplings, rounds=resamplings
            )
        if resamplings >= max_resamplings:
            raise AlgorithmFailedError(
                f"sequential Moser-Tardos exceeded {max_resamplings} "
                f"resamplings ({len(occurring)} events still occurring)"
            )
        name = min(occurring, key=repr)
        scope = instance.event(name).scope_names
        assignment = instance.space.resample(rng, assignment, scope)
        resamplings += 1
        affected = {
            event.name
            for variable_name in scope
            for event in instance.events_of_variable(variable_name)
        }
        for affected_name in affected:
            if instance.event(affected_name).occurs(assignment):
                occurring.add(affected_name)
            else:
                occurring.discard(affected_name)


def distributed_moser_tardos(
    instance: LLLInstance,
    seed: int,
    max_rounds: Optional[int] = None,
) -> MoserTardosResult:
    """The parallel/distributed Moser-Tardos variant.

    In each round, the occurring bad events that are *local minima* (by
    name) among their occurring dependency-graph neighbors resample their
    variables simultaneously.  The selected events form an independent set
    in the dependency graph restricted to shared variables, so the
    resamplings do not race.  This is the straightforward ``O(log^2 n)``
    distributed implementation the paper's related-work section describes
    (each round is implementable in O(1) LOCAL rounds).

    Raises
    ------
    AlgorithmFailedError
        If the round budget is exhausted (default ``100 * num_events + 1000``).
    """
    rng = random.Random(seed)
    if max_rounds is None:
        max_rounds = 100 * instance.num_events + 1000
    assignment = instance.space.sample(rng)
    resamplings = 0
    rounds = 0
    # Incremental occurring set, as in the sequential variant: after a
    # round, only events sharing a resampled variable can change status.
    occurring = {
        event.name for event in instance.occurring_events(assignment)
    }
    while True:
        if not occurring:
            return MoserTardosResult(
                assignment=assignment, resamplings=resamplings, rounds=rounds
            )
        if rounds >= max_rounds:
            raise AlgorithmFailedError(
                f"distributed Moser-Tardos exceeded {max_rounds} rounds "
                f"({len(occurring)} events still occurring)"
            )
        # Local-minimum selection, expressed as a one-class fix plan:
        # each cell is a selected event, its ops the scope variables to
        # resample.  Scope disjointness across cells is what makes the
        # round parallel; resampling in the space's construction order
        # keeps seeded runs independent of the plan's cell order.
        round_class = build_resampling_round(instance, occurring)
        to_resample: Set[Hashable] = {
            op.variable for cell in round_class.cells for op in cell.ops
        }
        assignment = instance.space.resample(rng, assignment, to_resample)
        resamplings += len(round_class.cells)
        rounds += 1
        affected = {
            event.name
            for variable_name in to_resample
            for event in instance.events_of_variable(variable_name)
        }
        for affected_name in affected:
            if instance.event(affected_name).occurs(assignment):
                occurring.add(affected_name)
            else:
                occurring.discard(affected_name)
