"""The node-algorithm interface of the LOCAL model.

A :class:`LocalAlgorithm` describes the behaviour of a single node in a
synchronous message-passing network: in every round each node composes
one (unbounded) message per neighbor, receives its neighbors' messages,
and updates its local state.  The simulator instantiates one
:class:`NodeState` per node and drives all of them in lock-step.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Mapping, Optional, Tuple

from repro.errors import SimulationError


class NodeState:
    """The local view a node has of itself during a simulation.

    Attributes
    ----------
    identifier:
        The node's globally unique identifier.
    neighbors:
        Identifiers of the neighbors, in port order.  (The LOCAL model
        permits nodes to see neighbor identifiers; algorithms that only
        need port numbers can ignore the values.)
    memory:
        Free-form per-node storage for the algorithm.
    input:
        Problem-specific input handed to this node (may be ``None``).
    output:
        The node's final answer; assigned via :meth:`halt_with`.
    """

    __slots__ = ("identifier", "neighbors", "memory", "input", "output", "halted")

    def __init__(
        self,
        identifier: Hashable,
        neighbors: Tuple[Hashable, ...],
        node_input: Any = None,
    ) -> None:
        self.identifier = identifier
        self.neighbors = neighbors
        self.memory: Dict[str, Any] = {}
        self.input = node_input
        self.output: Any = None
        self.halted = False

    @property
    def degree(self) -> int:
        """The node's degree."""
        return len(self.neighbors)

    def halt_with(self, output: Any) -> None:
        """Record the final output and stop participating."""
        if self.halted:
            raise SimulationError(
                f"node {self.identifier!r} attempted to halt twice"
            )
        self.output = output
        self.halted = True


class LocalAlgorithm:
    """Behaviour of every node; subclass and override the three hooks.

    The same algorithm object is shared by all nodes — it must keep no
    per-node state of its own; everything node-local lives in
    ``node.memory``.
    """

    def initialize(self, node: NodeState) -> None:
        """Set up ``node.memory`` before round 1.  Default: nothing."""

    def send(self, node: NodeState, round_number: int) -> Dict[Hashable, Any]:
        """Compose this round's outgoing messages.

        Returns a mapping from neighbor identifier to message.  Neighbors
        omitted from the mapping receive ``None``.  Returning the same
        object for every neighbor broadcasts it.
        """
        return {}

    def receive(
        self,
        node: NodeState,
        messages: Mapping[Hashable, Any],
        round_number: int,
    ) -> None:
        """Process the messages received this round and update state.

        ``messages`` maps each neighbor identifier to the message it sent
        this round (``None`` if it sent nothing or has halted).  Call
        ``node.halt_with(output)`` to finish.
        """


class BroadcastValue(LocalAlgorithm):
    """Tiny built-in algorithm: flood-and-halt after ``rounds`` rounds.

    Used by tests to validate the simulator's message delivery and round
    accounting: after ``rounds`` rounds every node knows all identifiers
    within distance ``rounds``.
    """

    def __init__(self, rounds: int) -> None:
        if rounds < 1:
            raise SimulationError("rounds must be at least 1")
        self._rounds = rounds

    def initialize(self, node: NodeState) -> None:
        node.memory["known"] = {node.identifier}

    def send(self, node: NodeState, round_number: int) -> Dict[Hashable, Any]:
        payload = frozenset(node.memory["known"])
        return {neighbor: payload for neighbor in node.neighbors}

    def receive(self, node: NodeState, messages, round_number: int) -> None:
        for payload in messages.values():
            if payload:
                node.memory["known"].update(payload)
        if round_number >= self._rounds:
            node.halt_with(frozenset(node.memory["known"]))
