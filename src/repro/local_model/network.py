"""Communication networks for the LOCAL model.

A :class:`Network` wraps an undirected simple graph whose nodes carry
unique comparable identifiers.  Each node's incident edges are numbered by
*ports* (0-based, ordered by neighbor identifier), matching the standard
port-numbering formalisation of the LOCAL model.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

import networkx as nx

from repro.errors import SimulationError


class Network:
    """An immutable communication graph with port numberings."""

    def __init__(self, graph: nx.Graph) -> None:
        if graph.number_of_nodes() == 0:
            raise SimulationError("network must have at least one node")
        if any(graph.has_edge(node, node) for node in graph.nodes()):
            raise SimulationError("self-loops are not allowed")
        self._graph = graph
        self._neighbors: Dict[Hashable, Tuple[Hashable, ...]] = {}
        for node in graph.nodes():
            try:
                ordered = tuple(sorted(graph.neighbors(node)))
            except TypeError:
                ordered = tuple(
                    sorted(graph.neighbors(node), key=repr)
                )
            self._neighbors[node] = ordered

    @property
    def graph(self) -> nx.Graph:
        """The underlying graph (treat as read-only)."""
        return self._graph

    @property
    def nodes(self) -> Tuple[Hashable, ...]:
        """All node identifiers."""
        return tuple(self._neighbors)

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._neighbors)

    @property
    def max_degree(self) -> int:
        """The maximum degree of the network."""
        return max((len(n) for n in self._neighbors.values()), default=0)

    def neighbors(self, node: Hashable) -> Tuple[Hashable, ...]:
        """The neighbors of ``node``, in port order."""
        try:
            return self._neighbors[node]
        except KeyError:
            raise SimulationError(f"no node {node!r} in network") from None

    def degree(self, node: Hashable) -> int:
        """The degree of ``node``."""
        return len(self.neighbors(node))

    def port_of(self, node: Hashable, neighbor: Hashable) -> int:
        """The port number of ``neighbor`` at ``node``."""
        try:
            return self.neighbors(node).index(neighbor)
        except ValueError:
            raise SimulationError(
                f"{neighbor!r} is not adjacent to {node!r}"
            ) from None

    def identifier_space(self) -> int:
        """An upper bound on numeric node identifiers, for Linial coloring.

        Nodes must be non-negative integers for this to be meaningful;
        other identifier types raise.
        """
        ids = self.nodes
        if not all(isinstance(node, int) and node >= 0 for node in ids):
            raise SimulationError(
                "identifier_space requires non-negative integer node ids"
            )
        return max(ids) + 1


def line_graph_network(network: Network) -> Tuple[Network, Dict]:
    """The line graph of a network, plus the edge -> virtual-node map.

    Virtual nodes are consecutive integers assigned in sorted edge order,
    so the result supports :meth:`Network.identifier_space`.  Running a
    LOCAL algorithm on the line graph costs a constant simulation factor
    on the host graph (each virtual round is two host rounds); the
    distributed fixers account for this explicitly.
    """
    base = network.graph
    edges = sorted(
        (min(u, v), max(u, v)) for u, v in base.edges()
    )
    index = {edge: i for i, edge in enumerate(edges)}
    virtual = nx.Graph()
    virtual.add_nodes_from(range(len(edges)))
    for node in base.nodes():
        incident = sorted(
            (min(node, other), max(node, other)) for other in base.neighbors(node)
        )
        for i, first in enumerate(incident):
            for second in incident[i + 1 :]:
                virtual.add_edge(index[first], index[second])
    return Network(virtual), index


def square_graph_network(network: Network) -> Network:
    """The square ``G^2``: nodes adjacent iff within distance two in ``G``.

    A proper coloring of ``G^2`` is exactly a 2-hop coloring of ``G``
    (footnote 4 of the paper).  Simulation factor on the host graph: two
    host rounds per virtual round.
    """
    base = network.graph
    square = nx.Graph()
    square.add_nodes_from(base.nodes())
    for node in base.nodes():
        reach = set()
        for neighbor in base.neighbors(node):
            reach.add(neighbor)
            reach.update(base.neighbors(neighbor))
        reach.discard(node)
        for other in reach:
            square.add_edge(node, other)
    return Network(square)
