"""The synchronous LOCAL-model simulator.

Runs a :class:`repro.local_model.algorithm.LocalAlgorithm` on a
:class:`repro.local_model.network.Network` in lock-step rounds.  One round
is: every non-halted node composes messages (``send``), all messages are
delivered simultaneously, every non-halted node processes its inbox
(``receive``).  The round count — the paper's complexity measure — is the
number of such rounds executed before every node has halted.

Messages are unbounded, as in LOCAL; the simulator nevertheless tracks a
total message count and the largest message ``repr`` length, which the
benchmarks report as a sanity statistic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.errors import FaultRecoveryError, SimulationError
from repro.faults import FaultPlan, fault_plan_from_env
from repro.local_model.algorithm import LocalAlgorithm, NodeState
from repro.local_model.network import Network
from repro.obs.recorder import active as _obs_active

#: Default budget preventing non-terminating algorithms from spinning.
DEFAULT_MAX_ROUNDS = 10_000


def recover_delivery(plan, round_number, message_index, describe) -> None:
    """The reliable-delivery layer shared by both simulators.

    Consults the fault plan for the fate of one message and recovers it:
    a *duplicate* delivery is suppressed (delivery into a per-sender
    inbox slot is idempotent, so deduplication restores the exact
    fault-free transcript), a *drop* is retransmitted up to the plan's
    ``max_redelivery`` budget.  Either way the caller proceeds with the
    message delivered exactly once — accounting and algorithm semantics
    are untouched — and the recovery is observable as ``runtime/fault``
    / ``runtime/retry`` events sharing a ``scope`` key.

    ``describe`` is a zero-argument callable naming the message (sender,
    receiver); it is only invoked on the error/observability paths, so
    the fault-free fast path pays nothing for it.

    Raises
    ------
    FaultRecoveryError
        If the message is dropped on the initial attempt *and* every
        redelivery attempt — recovery must never silently give up.
    """
    action = plan.message_action(round_number, message_index, attempt=0)
    if action is None:
        return
    recorder = _obs_active()
    scope = f"msg:{round_number}:{message_index}"
    if action == "duplicate":
        if recorder is not None:
            recorder.event(
                "runtime",
                "fault",
                site="simulator",
                kind="message_duplicate",
                scope=scope,
                round=round_number,
                message=describe(),
                recovered=True,
            )
        return
    # A drop: retransmit until delivered or the budget is gone.
    if recorder is not None:
        recorder.event(
            "runtime",
            "fault",
            site="simulator",
            kind="message_drop",
            scope=scope,
            round=round_number,
            message=describe(),
            attempt=0,
        )
    for attempt in range(1, plan.max_redelivery + 1):
        if plan.message_action(round_number, message_index, attempt) != "drop":
            if recorder is not None:
                recorder.event(
                    "runtime",
                    "retry",
                    site="simulator",
                    scope=scope,
                    round=round_number,
                    attempt=attempt,
                    outcome="recovered",
                )
            return
    raise FaultRecoveryError(
        f"message {describe()} in round {round_number} was dropped on the "
        f"initial delivery and all {plan.max_redelivery} redelivery "
        f"attempts (fault plan seed {plan.seed})"
    )


@dataclass(frozen=True)
class RoundTrace:
    """Per-round message statistics (collected with ``record_trace``)."""

    #: 1-based round number.
    round_number: int
    #: Non-``None`` messages delivered this round.
    messages: int
    #: Nodes that sent at least one message this round.
    active_senders: int
    #: Total ``repr`` length of delivered payloads — a crude size proxy
    #: (LOCAL allows unbounded messages; this tracks how much is used).
    payload_chars: int


@dataclass
class SimulationResult:
    """Outcome of running an algorithm to completion."""

    #: Number of communication rounds executed.
    rounds: int
    #: Final output of every node.
    outputs: Dict[Hashable, Any]
    #: Total number of non-``None`` messages delivered.
    messages_delivered: int
    #: Messages delivered in each round (always populated; index 0 is
    #: round 1).
    round_messages: Tuple[int, ...] = ()
    #: Total ``repr`` length of payloads delivered in each round — the
    #: LOCAL model allows unbounded messages, so this tracks how much
    #: bandwidth each round actually used.
    round_payload_chars: Tuple[int, ...] = ()
    #: Per-round statistics; empty unless the simulator recorded traces.
    trace: List["RoundTrace"] = field(default_factory=list)

    @property
    def max_round_messages(self) -> int:
        """The busiest round's message count (0 for zero-round runs)."""
        return max(self.round_messages, default=0)

    @property
    def total_payload_chars(self) -> int:
        """Total payload ``repr`` length across all rounds."""
        return sum(self.round_payload_chars)

    def output_of(self, node: Hashable) -> Any:
        """The output of one node."""
        return self.outputs[node]


class Simulator:
    """Drives one algorithm over one network.

    Parameters
    ----------
    network:
        The communication graph.
    algorithm:
        The node behaviour (shared by all nodes).
    inputs:
        Optional per-node problem input, keyed by node identifier.
    record_trace:
        Collect per-round :class:`RoundTrace` records.
    track_payload:
        Measure payload sizes (the ``repr`` length of every delivered
        message).  Defaults to ``record_trace`` — calling ``repr`` on
        every message is a real cost at scale, so it is opt-in rather
        than always-on.
    fault_plan:
        Deterministic message-fault injection
        (:class:`repro.faults.FaultPlan`): drops are retransmitted and
        duplicates suppressed by the reliable-delivery layer, so a
        faulted run produces the exact fault-free transcript (or raises
        :class:`~repro.errors.FaultRecoveryError` when a drop survives
        the redelivery budget).  Defaults to the ambient
        ``REPRO_FAULTS`` environment spec; ``None`` there disables.
    """

    def __init__(
        self,
        network: Network,
        algorithm: LocalAlgorithm,
        inputs: Optional[Dict[Hashable, Any]] = None,
        record_trace: bool = False,
        track_payload: Optional[bool] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self._network = network
        self._algorithm = algorithm
        if fault_plan is None:
            fault_plan = fault_plan_from_env()
        self._fault_plan = fault_plan
        inputs = inputs or {}
        self._states: Dict[Hashable, NodeState] = {
            node: NodeState(node, network.neighbors(node), inputs.get(node))
            for node in network.nodes
        }
        self._rounds = 0
        self._messages_delivered = 0
        self._record_trace = record_trace
        self._track_payload = (
            record_trace if track_payload is None else track_payload
        )
        self._trace: List[RoundTrace] = []
        self._round_messages: List[int] = []
        self._round_payload_chars: List[int] = []
        for state in self._states.values():
            algorithm.initialize(state)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def rounds(self) -> int:
        """Rounds executed so far."""
        return self._rounds

    def state_of(self, node: Hashable) -> NodeState:
        """Inspect one node's state (tests and composite algorithms)."""
        return self._states[node]

    @property
    def all_halted(self) -> bool:
        """Whether every node has halted."""
        return all(state.halted for state in self._states.values())

    def step(self) -> None:
        """Execute one synchronous round."""
        recorder = _obs_active()
        outboxes: Dict[Hashable, Dict[Hashable, Any]] = {}
        round_number = self._rounds + 1
        for node, state in self._states.items():
            if state.halted:
                continue
            outbox = self._algorithm.send(state, round_number)
            for neighbor in outbox:
                if neighbor not in state.neighbors:
                    raise SimulationError(
                        f"node {node!r} addressed non-neighbor {neighbor!r}"
                    )
            outboxes[node] = outbox
        inboxes: Dict[Hashable, Dict[Hashable, Any]] = {
            node: {} for node in self._states
        }
        round_messages = 0
        round_chars = 0
        active_senders = 0
        track_payload = self._track_payload
        fault_plan = self._fault_plan
        faults_active = fault_plan is not None and fault_plan.has_message_faults
        message_index = 0
        for sender, outbox in outboxes.items():
            sent_any = False
            for receiver, message in outbox.items():
                if faults_active and message is not None:
                    recover_delivery(
                        fault_plan,
                        round_number,
                        message_index,
                        lambda s=sender, r=receiver: f"{s!r} -> {r!r}",
                    )
                    message_index += 1
                inboxes[receiver][sender] = message
                if message is not None:
                    self._messages_delivered += 1
                    round_messages += 1
                    sent_any = True
                    if track_payload:
                        round_chars += len(repr(message))
            if sent_any:
                active_senders += 1
        self._round_messages.append(round_messages)
        self._round_payload_chars.append(round_chars)
        if self._record_trace:
            self._trace.append(
                RoundTrace(
                    round_number=round_number,
                    messages=round_messages,
                    active_senders=active_senders,
                    payload_chars=round_chars,
                )
            )
        if recorder is not None:
            recorder.event(
                "simulator",
                "round",
                round=round_number,
                messages=round_messages,
                active_senders=active_senders,
                payload_chars=round_chars,
            )
            recorder.count("simulator", "rounds")
            recorder.count("simulator", "messages", round_messages)
        for node, state in self._states.items():
            if state.halted:
                continue
            inbox = {
                neighbor: inboxes[node].get(neighbor) for neighbor in state.neighbors
            }
            self._algorithm.receive(state, inbox, round_number)
        self._rounds = round_number

    def run(self, max_rounds: int = DEFAULT_MAX_ROUNDS) -> SimulationResult:
        """Run until every node halts (or the budget is exhausted).

        Raises
        ------
        SimulationError
            If some node has not halted after ``max_rounds`` rounds.
        """
        while not self.all_halted:
            if self._rounds >= max_rounds:
                unfinished = [
                    node for node, state in self._states.items() if not state.halted
                ]
                raise SimulationError(
                    f"{len(unfinished)} nodes still running after "
                    f"{max_rounds} rounds (e.g. {unfinished[:3]!r})"
                )
            self.step()
        recorder = _obs_active()
        if recorder is not None:
            recorder.event(
                "simulator",
                "run_complete",
                rounds=self._rounds,
                messages_delivered=self._messages_delivered,
                nodes=len(self._states),
                algorithm=type(self._algorithm).__name__,
            )
        return SimulationResult(
            rounds=self._rounds,
            outputs={
                node: state.output for node, state in self._states.items()
            },
            messages_delivered=self._messages_delivered,
            round_messages=tuple(self._round_messages),
            round_payload_chars=tuple(self._round_payload_chars),
            trace=list(self._trace),
        )


def run_algorithm(
    network: Network,
    algorithm: LocalAlgorithm,
    inputs: Optional[Dict[Hashable, Any]] = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    fault_plan: Optional[FaultPlan] = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(network, algorithm, inputs, fault_plan=fault_plan).run(
        max_rounds
    )
