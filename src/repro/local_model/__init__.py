"""Synchronous LOCAL-model simulator (substrate S7).

Networks with port numberings (:class:`Network`), node algorithms
(:class:`LocalAlgorithm`, :class:`NodeState`) and the lock-step simulator
(:class:`Simulator`).  The virtual-graph helpers
(:func:`line_graph_network`, :func:`square_graph_network`) support running
node algorithms on the line graph and on ``G^2`` with an explicit,
accounted simulation factor.
"""

from repro.local_model.algorithm import BroadcastValue, LocalAlgorithm, NodeState
from repro.local_model.network import (
    Network,
    line_graph_network,
    square_graph_network,
)
from repro.local_model.simulator import (
    DEFAULT_MAX_ROUNDS,
    RoundTrace,
    SimulationResult,
    Simulator,
    run_algorithm,
)

__all__ = [
    "BroadcastValue",
    "DEFAULT_MAX_ROUNDS",
    "LocalAlgorithm",
    "Network",
    "NodeState",
    "RoundTrace",
    "SimulationResult",
    "Simulator",
    "line_graph_network",
    "run_algorithm",
    "square_graph_network",
]
