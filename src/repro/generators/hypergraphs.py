"""Rank-3 hypergraph workload generators.

The rank-3 fixer operates on instances whose variable hypergraph has
hyperedges of size up to 3.  These generators produce 3-uniform
hypergraphs (as lists of node triples) with controlled per-node degree,
which controls the dependency-graph degree of the derived LLL instances
(a node in ``t`` triples has dependency degree at most ``2t``).
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.errors import ReproError

Triple = Tuple[int, int, int]


def partition_rounds_triples(
    num_nodes: int, rounds: int, seed: int
) -> List[Triple]:
    """``rounds`` random partitions of the nodes into triples.

    Every node appears in exactly ``rounds`` triples, so the derived LLL
    instance is degree-regular: dependency degree at most ``2 * rounds``.
    Requires ``num_nodes`` divisible by 3.  Repeated triples across rounds
    are re-drawn (a handful of retries suffices for the sizes we use).
    """
    if num_nodes % 3 != 0:
        raise ReproError("num_nodes must be divisible by 3")
    if num_nodes < 3:
        raise ReproError("need at least 3 nodes")
    rng = random.Random(seed)
    seen = set()
    triples: List[Triple] = []
    for _ in range(rounds):
        for _attempt in range(100):
            nodes = list(range(num_nodes))
            rng.shuffle(nodes)
            candidate = [
                tuple(sorted(nodes[i : i + 3])) for i in range(0, num_nodes, 3)
            ]
            if all(triple not in seen for triple in candidate):
                break
        else:
            raise ReproError(
                "could not draw a fresh partition after 100 attempts"
            )
        seen.update(candidate)
        triples.extend(candidate)
    return triples


def random_triples(
    num_nodes: int,
    num_triples: int,
    max_per_node: int,
    seed: int,
) -> List[Triple]:
    """Random distinct triples with at most ``max_per_node`` per node."""
    if num_nodes < 3:
        raise ReproError("need at least 3 nodes")
    rng = random.Random(seed)
    usage = [0] * num_nodes
    seen = set()
    triples: List[Triple] = []
    attempts = 0
    while len(triples) < num_triples:
        attempts += 1
        if attempts > 1000 * num_triples:
            raise ReproError(
                f"could not place {num_triples} triples under the "
                f"max_per_node={max_per_node} constraint"
            )
        available = [node for node in range(num_nodes) if usage[node] < max_per_node]
        if len(available) < 3:
            raise ReproError(
                "fewer than 3 nodes have remaining capacity; lower "
                "num_triples or raise max_per_node"
            )
        triple = tuple(sorted(rng.sample(available, 3)))
        if triple in seen:
            continue
        seen.add(triple)
        triples.append(triple)
        for node in triple:
            usage[node] += 1
    return triples


def cyclic_triples(num_nodes: int) -> List[Triple]:
    """The deterministic 'triangle chain': triples ``(i, i+1, i+2)`` mod n.

    Every node appears in exactly 3 triples (for ``num_nodes >= 5``),
    giving a sparse, structured rank-3 workload with dependency degree 4.
    """
    if num_nodes < 5:
        raise ReproError("need at least 5 nodes for distinct cyclic triples")
    return [
        tuple(sorted(((i) % num_nodes, (i + 1) % num_nodes, (i + 2) % num_nodes)))
        for i in range(num_nodes)
    ]


def triples_degree_profile(num_nodes: int, triples: Sequence[Triple]) -> dict:
    """Per-node triple counts (min/max/mean) of a triple family."""
    usage = [0] * num_nodes
    for triple in triples:
        for node in triple:
            usage[node] += 1
    return {
        "min": min(usage),
        "max": max(usage),
        "mean": sum(usage) / max(len(usage), 1),
    }
