"""Workload generators (substrate S12): graphs, triples and LLL instances."""

from repro.generators.graphs import (
    balanced_tree,
    complete_graph,
    cycle_graph,
    degree_profile,
    grid_graph,
    hypercube_graph,
    path_graph,
    random_bipartite_regular,
    random_regular_graph,
    random_tree,
    torus_graph,
)
from repro.generators.hypergraphs import (
    cyclic_triples,
    partition_rounds_triples,
    random_triples,
    triples_degree_profile,
)
from repro.generators.instances import (
    all_zero_edge_instance,
    all_zero_triple_instance,
    edge_variable_name,
    mixed_rank_instance,
    parity_edge_instance,
    threshold_count_edge_instance,
    triple_variable_name,
)

__all__ = [
    "all_zero_edge_instance",
    "all_zero_triple_instance",
    "balanced_tree",
    "complete_graph",
    "cycle_graph",
    "cyclic_triples",
    "degree_profile",
    "edge_variable_name",
    "grid_graph",
    "hypercube_graph",
    "mixed_rank_instance",
    "parity_edge_instance",
    "partition_rounds_triples",
    "path_graph",
    "random_bipartite_regular",
    "random_regular_graph",
    "random_tree",
    "random_triples",
    "threshold_count_edge_instance",
    "torus_graph",
    "triple_variable_name",
    "triples_degree_profile",
]
