"""Seeded graph workload generators.

All generators return :class:`networkx.Graph` objects with integer nodes
and accept explicit seeds, so every experiment in the benchmark harness is
reproducible bit-for-bit.
"""

from __future__ import annotations

import random
from typing import Optional

import networkx as nx

from repro.errors import ReproError


def cycle_graph(num_nodes: int) -> nx.Graph:
    """A cycle on ``num_nodes`` nodes (degree 2)."""
    if num_nodes < 3:
        raise ReproError("a cycle needs at least 3 nodes")
    return nx.cycle_graph(num_nodes)


def path_graph(num_nodes: int) -> nx.Graph:
    """A path on ``num_nodes`` nodes."""
    if num_nodes < 2:
        raise ReproError("a path needs at least 2 nodes")
    return nx.path_graph(num_nodes)


def grid_graph(rows: int, cols: int, periodic: bool = False) -> nx.Graph:
    """A 2-D grid (or torus if ``periodic``) with integer-relabelled nodes."""
    if rows < 2 or cols < 2:
        raise ReproError("a grid needs at least 2x2 nodes")
    graph = nx.grid_2d_graph(rows, cols, periodic=periodic)
    return nx.convert_node_labels_to_integers(graph, ordering="sorted")


def torus_graph(rows: int, cols: int) -> nx.Graph:
    """A 2-D torus (4-regular for ``rows, cols >= 3``)."""
    if rows < 3 or cols < 3:
        raise ReproError("a torus needs at least 3x3 nodes")
    return grid_graph(rows, cols, periodic=True)


def random_regular_graph(num_nodes: int, degree: int, seed: int) -> nx.Graph:
    """A uniformly random ``degree``-regular simple graph."""
    if degree >= num_nodes:
        raise ReproError("degree must be smaller than the number of nodes")
    if (num_nodes * degree) % 2 != 0:
        raise ReproError("num_nodes * degree must be even")
    return nx.random_regular_graph(degree, num_nodes, seed=seed)


def random_tree(num_nodes: int, seed: int) -> nx.Graph:
    """A uniformly random labelled tree."""
    if num_nodes < 2:
        raise ReproError("a tree needs at least 2 nodes")
    rng = random.Random(seed)
    if num_nodes == 2:
        return nx.path_graph(2)
    sequence = [rng.randrange(num_nodes) for _ in range(num_nodes - 2)]
    return nx.from_prufer_sequence(sequence)


def balanced_tree(branching: int, height: int) -> nx.Graph:
    """A complete ``branching``-ary tree of the given height."""
    if branching < 2 or height < 1:
        raise ReproError("need branching >= 2 and height >= 1")
    return nx.balanced_tree(branching, height)


def hypercube_graph(dimension: int) -> nx.Graph:
    """The ``dimension``-dimensional hypercube (regular of that degree)."""
    if dimension < 1:
        raise ReproError("dimension must be at least 1")
    graph = nx.hypercube_graph(dimension)
    return nx.convert_node_labels_to_integers(graph, ordering="sorted")


def complete_graph(num_nodes: int) -> nx.Graph:
    """The complete graph on ``num_nodes`` nodes."""
    if num_nodes < 2:
        raise ReproError("a complete graph needs at least 2 nodes")
    return nx.complete_graph(num_nodes)


def random_bipartite_regular(
    left: int, right: int, left_degree: int, seed: int
) -> nx.Graph:
    """A random bipartite graph, ``left_degree``-regular on the left side.

    Left nodes are ``0 .. left-1``; right nodes are ``left .. left+right-1``.
    Built by a configuration-model style matching of stubs with retries to
    avoid parallel edges, so right degrees are near-balanced but not exact.
    """
    if left_degree > right:
        raise ReproError("left_degree cannot exceed the number of right nodes")
    rng = random.Random(seed)
    graph = nx.Graph()
    graph.add_nodes_from(range(left + right))
    right_nodes = list(range(left, left + right))
    for u in range(left):
        targets = rng.sample(right_nodes, left_degree)
        for v in targets:
            graph.add_edge(u, v)
    return graph


def cycle_csr(num_nodes: int):
    """A cycle as a :class:`repro.graph.CSRGraph`, built without networkx.

    Node-for-node identical to :func:`cycle_graph`; the index arrays are
    assembled directly, so generating a million-node workload costs two
    ``arange`` calls instead of a million dict insertions.
    """
    import numpy as np

    from repro.graph import CSRGraph

    if num_nodes < 3:
        raise ReproError("a cycle needs at least 3 nodes")
    u = np.arange(num_nodes, dtype=np.int64)
    v = (u + 1) % num_nodes
    return CSRGraph.from_edges(num_nodes, u, v)


def torus_csr(rows: int, cols: int):
    """A 2-D torus as a :class:`repro.graph.CSRGraph`, built without networkx.

    Node-for-node identical to :func:`torus_graph` (node ``(r, c)`` maps
    to index ``r * cols + c``, the sorted-label order networkx uses).
    """
    import numpy as np

    from repro.graph import CSRGraph

    if rows < 3 or cols < 3:
        raise ReproError("a torus needs at least 3x3 nodes")
    index = np.arange(rows * cols, dtype=np.int64)
    r, c = np.divmod(index, cols)
    right = r * cols + (c + 1) % cols
    down = ((r + 1) % rows) * cols + c
    u = np.concatenate([index, index])
    v = np.concatenate([right, down])
    return CSRGraph.from_edges(rows * cols, u, v)


def random_regular_csr(num_nodes: int, degree: int, seed: int):
    """A seeded random regular graph as a :class:`repro.graph.CSRGraph`.

    Same graph as :func:`random_regular_graph` (networkx does the
    generation; only the representation differs).
    """
    from repro.graph import CSRGraph

    return CSRGraph.from_networkx(random_regular_graph(num_nodes, degree, seed))


def degree_profile(graph: nx.Graph) -> dict:
    """Summary of a graph's degree distribution (min/max/mean)."""
    degrees = [deg for _, deg in graph.degree()]
    if not degrees:
        return {"min": 0, "max": 0, "mean": 0.0}
    return {
        "min": min(degrees),
        "max": max(degrees),
        "mean": sum(degrees) / len(degrees),
    }
