"""Generic LLL instance builders over graph and hypergraph workloads.

The canonical below-threshold family is the *all-zero* instance: one
uniform variable over ``{0, .., k-1}`` per edge (or per triple), and the
bad event at a node is "every incident variable is 0".  A node of degree
``delta`` then has bad-event probability ``k^-delta`` while its dependency
degree is ``delta`` (edge variables) or up to ``2*delta`` (triples), so
the alphabet size ``k`` is a clean knob for the distance to the paper's
threshold ``p = 2^-d``:

* edge variables on a regular graph: ``k = 2`` sits exactly at the
  threshold (this is sinkless orientation in disguise), ``k >= 3`` is
  strictly below it;
* triple variables with ``t`` triples per node: ``k = 4`` is at the
  threshold, ``k >= 5`` strictly below.

Every graph-taking builder accepts either a :class:`networkx.Graph` or a
:class:`repro.graph.CSRGraph` — the builders only use the traversal
surface (``nodes`` / ``edges`` / ``neighbors`` / ``degree``) that both
provide, and the CSR form skips the per-node dict machinery on large
workloads.
"""

from __future__ import annotations

from typing import Hashable, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.errors import ReproError
from repro.lll.instance import LLLInstance
from repro.probability import BadEvent, DiscreteVariable

Triple = Tuple[int, int, int]


def edge_variable_name(u: int, v: int) -> Tuple[str, int, int]:
    """Canonical name for the variable on edge ``{u, v}``."""
    return ("edge", min(u, v), max(u, v))


def triple_variable_name(triple: Sequence[int]) -> Tuple[str, int, int, int]:
    """Canonical name for the variable on a node triple."""
    a, b, c = sorted(triple)
    return ("tri", a, b, c)


#: Families understood by :func:`build_family_instance` — the CLI's
#: ``--family`` choices and the solve service's ``"family"`` field.
INSTANCE_FAMILIES = ("cycle", "regular", "torus", "triples")


def build_family_instance(
    family: str,
    n: int,
    alphabet: int = 3,
    degree: int = 4,
    seed: int = 0,
) -> LLLInstance:
    """Build a named below-threshold workload family.

    The single instance-spec grammar shared by the ``repro`` CLI
    (``--family``/``--n``/``--alphabet``/...) and the solve service's
    JSON request bodies, so a served request names exactly the workload
    an operator can reproduce from the command line.
    """
    from repro.generators.graphs import (
        cycle_graph,
        random_regular_graph,
        torus_graph,
    )
    from repro.generators.hypergraphs import cyclic_triples

    if family == "cycle":
        return all_zero_edge_instance(cycle_graph(n), alphabet)
    if family == "regular":
        return all_zero_edge_instance(
            random_regular_graph(n, degree, seed=seed), alphabet
        )
    if family == "torus":
        side = max(int(round(n ** 0.5)), 3)
        return all_zero_edge_instance(torus_graph(side, side), alphabet)
    if family == "triples":
        return all_zero_triple_instance(n, cyclic_triples(n), alphabet)
    raise ReproError(
        f"unknown family {family!r}; expected one of {INSTANCE_FAMILIES}"
    )


def _require_no_isolated_nodes(graph: nx.Graph) -> None:
    isolated = [node for node, degree in graph.degree() if degree == 0]
    if isolated:
        raise ReproError(
            f"graph has isolated nodes {isolated[:5]}; their events would "
            f"have empty scopes"
        )


def all_zero_edge_instance(
    graph: nx.Graph,
    alphabet_size: int,
    probabilities: Optional[Sequence[float]] = None,
) -> LLLInstance:
    """Rank-2 instance: one variable per edge, bad event = 'all incident are 0'.

    Parameters
    ----------
    graph:
        The communication graph; its nodes host the bad events and its
        edges the variables.  The dependency graph of the produced
        instance equals ``graph``.
    alphabet_size:
        Support size ``k`` of each variable; ``Pr[bad at v] = k^-deg(v)``
        for uniform variables.
    probabilities:
        Optional non-uniform distribution over ``0..k-1`` (shared by all
        variables); entry 0 is the "bad" value's probability.
    """
    if alphabet_size < 2:
        raise ReproError("alphabet_size must be at least 2")
    _require_no_isolated_nodes(graph)
    values = tuple(range(alphabet_size))
    variables = {}
    for u, v in graph.edges():
        name = edge_variable_name(u, v)
        variables[name] = DiscreteVariable(name, values, probabilities)
    events = []
    for node in graph.nodes():
        scope = [
            variables[edge_variable_name(node, neighbor)]
            for neighbor in sorted(graph.neighbors(node))
        ]
        # Tabulated ("all incident equal 0") rather than an opaque
        # closure: the bad-outcomes hint makes the event — and hence the
        # whole instance — structurally fingerprintable, so kernels,
        # plans and templates are shared across same-shape instances.
        events.append(BadEvent.all_equal(node, scope, 0))
    return LLLInstance(events)


def threshold_count_edge_instance(
    graph: nx.Graph,
    alphabet_size: int,
    min_zeros: int,
    probabilities: Optional[Sequence[float]] = None,
) -> LLLInstance:
    """Rank-2 instance where a node is bad iff >= ``min_zeros`` incident are 0.

    Softer events than :func:`all_zero_edge_instance`; with
    ``min_zeros = deg`` it coincides with the all-zero family.  Useful for
    probing instances at varying distances from the threshold: unlike the
    all-zero events, a single fixing cannot kill a ``min_zeros < deg``
    event outright, so the bookkeeping stays under genuine pressure.
    """
    if alphabet_size < 2:
        raise ReproError("alphabet_size must be at least 2")
    if min_zeros < 1:
        raise ReproError("min_zeros must be at least 1")
    _require_no_isolated_nodes(graph)
    values = tuple(range(alphabet_size))
    variables = {}
    for u, v in graph.edges():
        name = edge_variable_name(u, v)
        variables[name] = DiscreteVariable(name, values, probabilities)
    events = []
    for node in graph.nodes():
        scope = [
            variables[edge_variable_name(node, neighbor)]
            for neighbor in sorted(graph.neighbors(node))
        ]
        names = tuple(variable.name for variable in scope)

        def predicate(assignment: Mapping, _names=names, _k=min_zeros) -> bool:
            zeros = sum(1 for name in _names if assignment[name] == 0)
            return zeros >= _k

        events.append(BadEvent(node, scope, predicate))
    return LLLInstance(events)


def parity_edge_instance(graph: nx.Graph, bias: float) -> LLLInstance:
    """Rank-2 instance with *unkillable* events: bad iff incident XOR is 1.

    Each edge carries a Bernoulli(``bias``) bit; the bad event at a node
    is "the XOR of my incident bits equals 1".  Unlike the all-zero
    family, no single fixing can make a parity event impossible — its
    conditional probability stays strictly positive until the last
    incident bit is fixed — so the bookkeeping remains under pressure
    for the entire run.  On a cycle (d = 2): ``p = 2*bias*(1-bias)``,
    which approaches the threshold ``1/4`` as ``bias -> 1/2``.
    """
    if not (0.0 < bias < 1.0):
        raise ReproError("bias must be strictly between 0 and 1")
    _require_no_isolated_nodes(graph)
    variables = {}
    for u, v in graph.edges():
        name = edge_variable_name(u, v)
        variables[name] = DiscreteVariable(name, (0, 1), (1.0 - bias, bias))
    events = []
    for node in graph.nodes():
        scope = [
            variables[edge_variable_name(node, neighbor)]
            for neighbor in sorted(graph.neighbors(node))
        ]
        names = tuple(variable.name for variable in scope)

        def predicate(assignment: Mapping, _names=names) -> bool:
            parity = 0
            for name in _names:
                parity ^= assignment[name]
            return parity == 1

        events.append(BadEvent(node, scope, predicate))
    return LLLInstance(events)


def all_zero_triple_instance(
    num_nodes: int,
    triples: Sequence[Triple],
    alphabet_size: int,
    probabilities: Optional[Sequence[float]] = None,
) -> LLLInstance:
    """Rank-3 instance: one variable per triple, bad = 'all incident are 0'.

    A node contained in ``t`` triples has bad-event probability
    ``k^-t`` (uniform case) and dependency degree at most ``2t``.
    """
    if alphabet_size < 2:
        raise ReproError("alphabet_size must be at least 2")
    values = tuple(range(alphabet_size))
    variables = {}
    incident: List[List[DiscreteVariable]] = [[] for _ in range(num_nodes)]
    for triple in triples:
        if len(set(triple)) != 3:
            raise ReproError(f"triple {triple!r} has repeated nodes")
        name = triple_variable_name(triple)
        if name in variables:
            raise ReproError(f"duplicate triple {triple!r}")
        variable = DiscreteVariable(name, values, probabilities)
        variables[name] = variable
        for node in triple:
            if node < 0 or node >= num_nodes:
                raise ReproError(f"triple node {node} out of range")
            incident[node].append(variable)
    events = []
    for node in range(num_nodes):
        scope = incident[node]
        if not scope:
            raise ReproError(
                f"node {node} is in no triple; its event would have an "
                f"empty scope"
            )
        events.append(BadEvent.all_equal(node, scope, 0))
    return LLLInstance(events)


def mixed_rank_instance(
    graph: nx.Graph,
    triples: Sequence[Triple],
    edge_alphabet: int,
    triple_alphabet: int,
) -> LLLInstance:
    """An instance mixing rank-2 (edge) and rank-3 (triple) variables.

    The bad event at node ``v`` occurs iff *all* its incident edge
    variables and all its incident triple variables are 0.  Exercises the
    fixer's rank dispatch on a single instance.
    """
    _require_no_isolated_nodes(graph)
    edge_values = tuple(range(edge_alphabet))
    triple_values = tuple(range(triple_alphabet))
    variables = {}
    for u, v in graph.edges():
        name = edge_variable_name(u, v)
        variables[name] = DiscreteVariable(name, edge_values)
    incident_triples: List[List[DiscreteVariable]] = [
        [] for _ in range(graph.number_of_nodes())
    ]
    for triple in triples:
        name = triple_variable_name(triple)
        variable = DiscreteVariable(name, triple_values)
        variables[name] = variable
        for node in triple:
            incident_triples[node].append(variable)
    events = []
    for node in graph.nodes():
        scope = [
            variables[edge_variable_name(node, neighbor)]
            for neighbor in sorted(graph.neighbors(node))
        ]
        scope.extend(incident_triples[node])
        events.append(BadEvent.all_equal(node, scope, 0))
    return LLLInstance(events)
