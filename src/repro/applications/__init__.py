"""The paper's applications (S11) as ready-made LLL instances.

* :mod:`repro.applications.sinkless` — sinkless orientation (at the
  threshold; hardness witness) and its below-threshold relaxation,
* :mod:`repro.applications.hypergraph_sinkless` — three orientations of a
  rank-3 hypergraph with every node a non-sink in at least two,
* :mod:`repro.applications.weak_splitting` — relaxed weak splitting
  (r <= 3, 16 colors, every V-node sees >= 2 colors),
* :mod:`repro.applications.sat` — bounded-occurrence SAT with a sharing
  budget keeping it below the exponential threshold.
"""

from repro.applications import (
    hypergraph_sinkless,
    property_b,
    sat,
    sinkless,
    weak_splitting,
)
from repro.applications.hypergraph_sinkless import (
    hypergraph_sinkless_instance,
    orientations_from_assignment,
)
from repro.applications.property_b import (
    is_proper_two_coloring,
    property_b_instance,
    sparse_uniform_hypergraph,
)
from repro.applications.sat import (
    CnfFormula,
    assignment_to_values,
    sat_instance,
    sparse_shared_formula,
)
from repro.applications.sinkless import (
    is_sinkless,
    orientation_from_assignment,
    relaxed_sinkless_instance,
    sinkless_orientation_instance,
    sinks_of_orientation,
)
from repro.applications.weak_splitting import (
    coloring_from_assignment,
    random_splitting_workload,
    weak_splitting_instance,
)

__all__ = [
    "CnfFormula",
    "assignment_to_values",
    "coloring_from_assignment",
    "hypergraph_sinkless",
    "hypergraph_sinkless_instance",
    "is_proper_two_coloring",
    "is_sinkless",
    "property_b",
    "property_b_instance",
    "sparse_uniform_hypergraph",
    "orientation_from_assignment",
    "orientations_from_assignment",
    "random_splitting_workload",
    "relaxed_sinkless_instance",
    "sat",
    "sat_instance",
    "sinkless",
    "sinkless_orientation_instance",
    "sinks_of_orientation",
    "sparse_shared_formula",
    "weak_splitting",
    "weak_splitting_instance",
]
