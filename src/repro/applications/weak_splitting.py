"""Relaxed weak splitting (the paper's second application).

Weak splitting: given a bipartite graph ``B = (V u U, E)``, color the
nodes of ``U`` so that every node of ``V`` sees more than one color among
its ``U``-neighbors.  The standard 2-color version is P-SLOCAL-complete
and sits *above* the exponential threshold; the paper's relaxation —
``r <= 3`` (``U``-degrees at most 3), **16 colors**, every ``V``-node must
see **at least 2** colors — drops below the threshold and is solved
deterministically by Theorem 1.3.

As an LLL instance: each ``U``-node is a uniform 16-valued variable
affecting its at most three ``V``-neighbors (rank ``<= 3``); the bad event
at ``v`` is "all of v's U-neighbors chose the same color", with
probability ``16^(1 - deg(v))``, while the dependency degree is at most
``2 * deg(v)``; the criterion ``p < 2^-d`` holds whenever every ``V``-node
has degree at least 3.  (The same structure, read as coloring rank-r
hyperedges, is the frugal / hypergraph edge-coloring formulation the
paper mentions.)
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

import networkx as nx

from repro.errors import ReproError
from repro.lll.instance import LLLInstance
from repro.probability import BadEvent, DiscreteVariable, PartialAssignment

#: Palette size of the relaxed variant discussed in the paper.
DEFAULT_NUM_COLORS = 16
#: Minimum number of distinct colors each V-node must see.
MIN_COLORS_SEEN = 2


def _variable_name(u_node: Hashable) -> Tuple[str, Hashable]:
    return ("usplit", u_node)


def weak_splitting_instance(
    bipartite: nx.Graph,
    v_nodes: Sequence[Hashable],
    num_colors: int = DEFAULT_NUM_COLORS,
) -> LLLInstance:
    """Build the relaxed weak-splitting LLL instance.

    Parameters
    ----------
    bipartite:
        The bipartite graph; edges must only connect ``v_nodes`` to the
        remaining (``U``) side.
    v_nodes:
        The constraint side ``V``.  Every ``V``-node needs degree at
        least 1; degree at least 3 is needed for the exponential
        criterion (checked downstream, not here).
    num_colors:
        The ``U`` palette; 16 in the paper's relaxation.
    """
    if num_colors < MIN_COLORS_SEEN:
        raise ReproError(f"need at least {MIN_COLORS_SEEN} colors")
    v_set = set(v_nodes)
    u_set = set(bipartite.nodes()) - v_set
    for u, v in bipartite.edges():
        if (u in v_set) == (v in v_set):
            raise ReproError(
                f"edge {{{u!r}, {v!r}}} does not cross the bipartition"
            )
    for u_node in u_set:
        if bipartite.degree(u_node) > 3:
            raise ReproError(
                f"U-node {u_node!r} has degree {bipartite.degree(u_node)} "
                f"> 3; the relaxation requires r <= 3"
            )
    values = tuple(range(num_colors))
    variables = {
        u_node: DiscreteVariable(_variable_name(u_node), values)
        for u_node in sorted(u_set, key=repr)
    }
    events = []
    for v_node in v_nodes:
        neighbors = sorted(bipartite.neighbors(v_node), key=repr)
        if not neighbors:
            raise ReproError(f"V-node {v_node!r} has no U-neighbors")
        scope = [variables[u_node] for u_node in neighbors]
        names = tuple(variable.name for variable in scope)

        def predicate(values_map: Mapping, _names=names) -> bool:
            seen = {values_map[name] for name in _names}
            return len(seen) < MIN_COLORS_SEEN

        events.append(BadEvent(v_node, scope, predicate))
    return LLLInstance(events)


def coloring_from_assignment(
    u_nodes: Sequence[Hashable], assignment: PartialAssignment
) -> Dict[Hashable, int]:
    """Extract the ``U``-coloring from a solved instance."""
    return {
        u_node: assignment.value_of(_variable_name(u_node))
        for u_node in u_nodes
    }


def colors_seen(
    bipartite: nx.Graph,
    v_node: Hashable,
    coloring: Mapping[Hashable, int],
) -> int:
    """How many distinct colors ``v_node`` sees among its neighbors."""
    return len({coloring[u_node] for u_node in bipartite.neighbors(v_node)})


def satisfies_requirement(
    bipartite: nx.Graph,
    v_nodes: Sequence[Hashable],
    coloring: Mapping[Hashable, int],
) -> bool:
    """Whether every ``V``-node sees at least two colors."""
    return all(
        colors_seen(bipartite, v_node, coloring) >= MIN_COLORS_SEEN
        for v_node in v_nodes
    )


def random_splitting_workload(
    num_v: int, num_u: int, v_degree: int, seed: int
) -> Tuple[nx.Graph, List[int], List[int]]:
    """A random bipartite workload with ``U``-degrees at most 3.

    ``V``-nodes are ``0 .. num_v - 1`` with exactly ``v_degree``
    neighbors each; ``U``-nodes are ``num_v .. num_v + num_u - 1`` and
    absorb at most three ``V``-neighbors each.  Requires enough ``U``
    capacity: ``3 * num_u >= v_degree * num_v``.
    """
    import random as _random

    if 3 * num_u < v_degree * num_v:
        raise ReproError(
            "not enough U capacity: need 3 * num_u >= v_degree * num_v"
        )
    rng = _random.Random(seed)
    graph = nx.Graph()
    v_nodes = list(range(num_v))
    u_nodes = list(range(num_v, num_v + num_u))
    graph.add_nodes_from(v_nodes)
    graph.add_nodes_from(u_nodes)
    capacity = {u_node: 3 for u_node in u_nodes}
    for v_node in v_nodes:
        available = [
            u_node
            for u_node in u_nodes
            if capacity[u_node] > 0 and not graph.has_edge(v_node, u_node)
        ]
        if len(available) < v_degree:
            raise ReproError(
                f"V-node {v_node} cannot find {v_degree} distinct U-nodes"
            )
        chosen = rng.sample(available, v_degree)
        for u_node in chosen:
            graph.add_edge(v_node, u_node)
            capacity[u_node] -= 1
    used_u = [u_node for u_node in u_nodes if graph.degree(u_node) > 0]
    isolated = [u_node for u_node in u_nodes if graph.degree(u_node) == 0]
    graph.remove_nodes_from(isolated)
    return graph, v_nodes, used_u
