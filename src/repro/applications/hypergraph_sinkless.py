"""Hypergraph sinkless orientation — the paper's rank-3 application.

Rank-3 hypergraph: every hyperedge contains exactly three nodes.  An
*orientation* assigns each hyperedge a head; a node is a sink (in that
orientation) iff it is the head of all its hyperedges.  The task from the
paper's Applications section: compute **three** orientations such that
every node is a non-sink in at least two of them.

As an LLL instance: the variable of a hyperedge is the triple of heads
``(h_0, h_1, h_2)`` (one per orientation), uniform over the 27
combinations; the bad event at node ``v`` is "v is a sink in at least two
orientations".  For a node in ``t`` hyperedges,
``Pr[bad] <= 3 * 9^-t`` while the dependency degree is at most ``2t``,
so the exponential criterion ``p < 2^-d`` holds once ``t >= 2`` (the
paper's "degree of the dependency graph at least 7" corresponds to its
worst-case parameter accounting; the builders below verify the criterion
exactly per instance).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.errors import ReproError
from repro.lll.instance import LLLInstance
from repro.probability import BadEvent, DiscreteVariable, PartialAssignment

Triple = Tuple[int, int, int]
#: Number of simultaneous orientations requested.
NUM_ORIENTATIONS = 3
#: Maximum number of orientations in which a node may be a sink.
MAX_SINK_ORIENTATIONS = 1


def _variable_name(triple: Sequence[int]) -> Tuple[str, int, int, int]:
    a, b, c = sorted(triple)
    return ("hsink", a, b, c)


def hypergraph_sinkless_instance(
    num_nodes: int, triples: Sequence[Triple]
) -> LLLInstance:
    """Build the three-orientation sinkless LLL instance.

    Parameters
    ----------
    num_nodes:
        Nodes are ``0 .. num_nodes - 1``; every node must appear in at
        least one triple.
    triples:
        The hyperedges; each a triple of three distinct nodes.
    """
    incident: List[List[DiscreteVariable]] = [[] for _ in range(num_nodes)]
    heads_choices: List[Tuple[int, int, int]] = []
    variables = {}
    for triple in triples:
        ordered = tuple(sorted(triple))
        if len(set(ordered)) != 3:
            raise ReproError(f"triple {triple!r} has repeated nodes")
        name = _variable_name(ordered)
        if name in variables:
            raise ReproError(f"duplicate triple {triple!r}")
        # Value = which member of the triple heads each orientation.
        values = [
            (ordered[i], ordered[j], ordered[k])
            for i in range(3)
            for j in range(3)
            for k in range(3)
        ]
        variable = DiscreteVariable(name, values)
        variables[name] = variable
        for node in ordered:
            if node < 0 or node >= num_nodes:
                raise ReproError(f"triple node {node} out of range")
            incident[node].append(variable)

    events = []
    for node in range(num_nodes):
        scope = incident[node]
        if not scope:
            raise ReproError(f"node {node} appears in no triple")
        names = tuple(variable.name for variable in scope)

        def predicate(values_map: Mapping, _names=names, _node=node) -> bool:
            sink_count = 0
            for orientation in range(NUM_ORIENTATIONS):
                if all(
                    values_map[name][orientation] == _node for name in _names
                ):
                    sink_count += 1
            return sink_count > MAX_SINK_ORIENTATIONS

        events.append(BadEvent(node, scope, predicate))
    return LLLInstance(events)


def orientations_from_assignment(
    triples: Sequence[Triple], assignment: PartialAssignment
) -> List[Dict[Triple, int]]:
    """Extract the three hyperedge -> head maps from a solved instance."""
    orientations: List[Dict[Triple, int]] = [
        {} for _ in range(NUM_ORIENTATIONS)
    ]
    for triple in triples:
        ordered = tuple(sorted(triple))
        heads = assignment.value_of(_variable_name(ordered))
        for orientation in range(NUM_ORIENTATIONS):
            orientations[orientation][ordered] = heads[orientation]
    return orientations


def sink_counts(
    num_nodes: int,
    triples: Sequence[Triple],
    orientations: Sequence[Mapping[Triple, int]],
) -> List[int]:
    """For each node, in how many orientations it is a sink."""
    counts = [0] * num_nodes
    incident: List[List[Triple]] = [[] for _ in range(num_nodes)]
    for triple in triples:
        ordered = tuple(sorted(triple))
        for node in ordered:
            incident[node].append(ordered)
    for node in range(num_nodes):
        for orientation in orientations:
            if incident[node] and all(
                orientation[triple] == node for triple in incident[node]
            ):
                counts[node] += 1
    return counts


def satisfies_requirement(
    num_nodes: int,
    triples: Sequence[Triple],
    orientations: Sequence[Mapping[Triple, int]],
) -> bool:
    """Whether every node is a non-sink in at least two orientations."""
    return all(
        count <= MAX_SINK_ORIENTATIONS
        for count in sink_counts(num_nodes, triples, orientations)
    )
