"""Bounded-occurrence SAT under the exponential criterion.

A CNF formula in which every Boolean variable occurs in at most three
clauses is a natural rank-3 LLL instance: variables are fair coins,
the bad event of a clause is "the clause is unsatisfied"
(probability ``2^-width``), and two clauses are dependent iff they share
a variable.  The exponential criterion ``p < 2^-d`` holds when every
clause's width exceeds the number of *other clause slots* its variables
appear in — i.e. wide clauses with few shared variables.  The generator
below builds such formulas with an explicit sharing budget.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.errors import ReproError
from repro.lll.instance import LLLInstance
from repro.probability import BadEvent, DiscreteVariable, PartialAssignment

#: A literal: (variable index, wanted truth value).
Literal = Tuple[int, bool]
#: A clause: a tuple of literals over distinct variables.
Clause = Tuple[Literal, ...]


@dataclass(frozen=True)
class CnfFormula:
    """A CNF formula with named Boolean variables ``0 .. num_variables-1``."""

    num_variables: int
    clauses: Tuple[Clause, ...]

    def is_satisfied(self, values: Mapping[int, bool]) -> bool:
        """Whether every clause has at least one true literal."""
        return all(
            any(values[index] == wanted for index, wanted in clause)
            for clause in self.clauses
        )

    def max_occurrence(self) -> int:
        """The largest number of clauses any variable appears in."""
        counts: Dict[int, int] = {}
        for clause in self.clauses:
            for index, _wanted in clause:
                counts[index] = counts.get(index, 0) + 1
        return max(counts.values(), default=0)


def _variable_name(index: int) -> Tuple[str, int]:
    return ("x", index)


def sat_instance(formula: CnfFormula) -> LLLInstance:
    """The LLL instance of a CNF formula (clause = bad event)."""
    if not formula.clauses:
        raise ReproError("formula needs at least one clause")
    variables = {
        index: DiscreteVariable(_variable_name(index), (False, True))
        for index in range(formula.num_variables)
    }
    events = []
    for clause_index, clause in enumerate(formula.clauses):
        seen = {index for index, _wanted in clause}
        if len(seen) != len(clause):
            raise ReproError(
                f"clause {clause_index} repeats a variable"
            )
        scope = [variables[index] for index, _wanted in clause]

        def predicate(values_map: Mapping, _clause=clause) -> bool:
            return all(
                values_map[_variable_name(index)] != wanted
                for index, wanted in _clause
            )

        events.append(BadEvent(("clause", clause_index), scope, predicate))
    return LLLInstance(events)


def assignment_to_values(
    formula: CnfFormula, assignment: PartialAssignment
) -> Dict[int, bool]:
    """Extract the Boolean values from a solved instance."""
    return {
        index: assignment.value_of(_variable_name(index))
        for index in range(formula.num_variables)
    }


def sparse_shared_formula(
    num_clauses: int,
    width: int,
    shared_per_clause: int,
    seed: int,
) -> CnfFormula:
    """A random CNF below the exponential threshold.

    Each clause has ``width`` literals: ``shared_per_clause`` variables
    drawn from a common pool (every pool variable used by at most three
    clauses — rank 3) and the rest private.  The dependency degree is at
    most ``2 * shared_per_clause``, so the exponential criterion
    ``2^-width < 2^-d`` holds whenever ``width > 2 * shared_per_clause``.

    Raises
    ------
    ReproError
        If the parameters violate that inequality.
    """
    if width <= 2 * shared_per_clause:
        raise ReproError(
            f"width ({width}) must exceed 2 * shared_per_clause "
            f"({2 * shared_per_clause}) for the exponential criterion"
        )
    if shared_per_clause < 1:
        raise ReproError("shared_per_clause must be at least 1")
    rng = random.Random(seed)
    # Pool sized so that three uses per pool variable suffice.
    pool_size = max((num_clauses * shared_per_clause + 2) // 3 + 1, 3)
    pool_usage = [0] * pool_size
    clauses: List[Clause] = []
    next_private = pool_size
    for _clause_index in range(num_clauses):
        available = [
            index for index in range(pool_size) if pool_usage[index] < 3
        ]
        if len(available) < shared_per_clause:
            raise ReproError("shared pool exhausted; increase pool capacity")
        shared = rng.sample(available, shared_per_clause)
        for index in shared:
            pool_usage[index] += 1
        privates = list(range(next_private, next_private + width - shared_per_clause))
        next_private += width - shared_per_clause
        literals = tuple(
            (index, rng.random() < 0.5) for index in shared + privates
        )
        clauses.append(literals)
    return CnfFormula(num_variables=next_private, clauses=tuple(clauses))
