"""Sinkless orientation — the threshold's hardness witness.

Orient every edge of a graph so that no node is a *sink* (a node all of
whose incident edges point at it).  With each edge oriented uniformly at
random, the bad event "v is a sink" has probability exactly
``2^-deg(v)`` — the instance sits *exactly at* the paper's threshold
``p = 2^-d``, which is why sinkless orientation powers both the
``Omega(log log n)`` randomized [BFH+16] and the ``Omega(log n)``
deterministic [CKP16] lower bounds.  The deterministic fixers reject it
(criterion check fails); the threshold benchmark runs randomized baselines
on it instead.

The module also provides the *relaxed* variant with ``k >= 3`` orientation
labels per edge (a node is bad iff every incident edge gives it label 0),
which is strictly below the threshold and falls to Theorem 1.1.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Tuple

import networkx as nx

from repro.errors import ReproError
from repro.lll.instance import LLLInstance
from repro.probability import BadEvent, DiscreteVariable, PartialAssignment

EdgeKey = Tuple[Hashable, Hashable]


def _edge_key(u, v) -> EdgeKey:
    return (min(u, v), max(u, v))


def _variable_name(u, v) -> Tuple[str, Hashable, Hashable]:
    key = _edge_key(u, v)
    return ("orient", key[0], key[1])


def sinkless_orientation_instance(graph: nx.Graph) -> LLLInstance:
    """The at-threshold LLL instance: one head-choice variable per edge.

    The variable on edge ``{u, v}`` takes the value ``u`` or ``v`` (the
    edge's head) uniformly; the bad event at ``v`` occurs iff every
    incident edge has head ``v``.  For a ``delta``-regular graph:
    ``p = 2^-delta`` and dependency degree ``d = delta`` — exactly
    ``p = 2^-d``.
    """
    if any(degree == 0 for _node, degree in graph.degree()):
        raise ReproError("graph must have no isolated nodes")
    if graph.number_of_edges() == 0:
        raise ReproError("graph must have at least one edge")
    variables = {}
    for u, v in graph.edges():
        key = _edge_key(u, v)
        variables[key] = DiscreteVariable(_variable_name(u, v), key)
    events = []
    for node in graph.nodes():
        scope = [
            variables[_edge_key(node, neighbor)]
            for neighbor in sorted(graph.neighbors(node))
        ]
        names = tuple(variable.name for variable in scope)

        def predicate(values: Mapping, _names=names, _node=node) -> bool:
            return all(values[name] == _node for name in _names)

        events.append(BadEvent(node, scope, predicate))
    return LLLInstance(events)


def orientation_from_assignment(
    graph: nx.Graph, assignment: PartialAssignment
) -> Dict[EdgeKey, Hashable]:
    """Extract the edge -> head mapping from a solved instance."""
    orientation = {}
    for u, v in graph.edges():
        key = _edge_key(u, v)
        orientation[key] = assignment.value_of(_variable_name(u, v))
    return orientation


def sinks_of_orientation(
    graph: nx.Graph, orientation: Mapping[EdgeKey, Hashable]
) -> Tuple[Hashable, ...]:
    """The nodes that are sinks under the given orientation."""
    sinks = []
    for node in graph.nodes():
        incident = [
            orientation[_edge_key(node, neighbor)]
            for neighbor in graph.neighbors(node)
        ]
        if incident and all(head == node for head in incident):
            sinks.append(node)
    return tuple(sinks)


def is_sinkless(graph: nx.Graph, orientation: Mapping[EdgeKey, Hashable]) -> bool:
    """Whether no node is a sink."""
    return not sinks_of_orientation(graph, orientation)


def relaxed_sinkless_instance(graph: nx.Graph, labels: int = 3) -> LLLInstance:
    """A strictly-below-threshold relaxation with ``labels >= 3`` per edge.

    Each edge carries a uniform variable over ``{0, .., labels-1}``; a node
    is bad iff every incident edge's variable is 0 ("all edges point the
    bad way").  On a ``delta``-regular graph this gives
    ``p = labels^-delta < 2^-delta = 2^-d`` — the regime of Theorem 1.1.
    """
    if labels < 3:
        raise ReproError(
            "labels must be at least 3; labels=2 is the at-threshold "
            "sinkless orientation"
        )
    if any(degree == 0 for _node, degree in graph.degree()):
        raise ReproError("graph must have no isolated nodes")
    values = tuple(range(labels))
    variables = {}
    for u, v in graph.edges():
        key = _edge_key(u, v)
        variables[key] = DiscreteVariable(_variable_name(u, v), values)
    events = []
    for node in graph.nodes():
        scope = [
            variables[_edge_key(node, neighbor)]
            for neighbor in sorted(graph.neighbors(node))
        ]
        names = tuple(variable.name for variable in scope)

        def predicate(values_map: Mapping, _names=names) -> bool:
            return all(values_map[name] == 0 for name in _names)

        events.append(BadEvent(node, scope, predicate))
    return LLLInstance(events)
