"""Property B: two-coloring a k-uniform hypergraph with no monochromatic edge.

The original motivating application of the Lovász Local Lemma [EL74]:
color the nodes of a k-uniform hypergraph with two colors so that no
hyperedge is monochromatic.  With fair-coin node colors, a hyperedge is
monochromatic with probability ``2^(1-k)``.

In the paper's regime: each *node* is a random variable; when every node
lies in at most three hyperedges the instance has rank <= 3, and when
hyperedges overlap sparsely (each shares nodes with at most ``k - 2``
others) the dependency degree satisfies ``d <= k - 2``, so
``p = 2^(1-k) < 2^-d`` — strictly below the threshold, and Theorem 1.3
two-colors the hypergraph deterministically.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.errors import ReproError
from repro.lll.instance import LLLInstance
from repro.probability import BadEvent, DiscreteVariable, PartialAssignment

Edge = Tuple[int, ...]


def _variable_name(node: int) -> Tuple[str, int]:
    return ("node", node)


def property_b_instance(num_nodes: int, edges: Sequence[Edge]) -> LLLInstance:
    """The LLL instance: fair-coin node colors, bad = monochromatic edge.

    Parameters
    ----------
    num_nodes:
        Nodes are ``0 .. num_nodes - 1``.
    edges:
        The hyperedges; each a tuple of distinct nodes (size >= 2).
    """
    if not edges:
        raise ReproError("need at least one hyperedge")
    variables = {
        node: DiscreteVariable.fair_coin(_variable_name(node))
        for node in range(num_nodes)
    }
    events = []
    for index, edge in enumerate(edges):
        ordered = tuple(sorted(edge))
        if len(set(ordered)) != len(ordered):
            raise ReproError(f"edge {edge!r} repeats a node")
        if len(ordered) < 2:
            raise ReproError(f"edge {edge!r} needs at least two nodes")
        for node in ordered:
            if node < 0 or node >= num_nodes:
                raise ReproError(f"edge node {node} out of range")
        scope = [variables[node] for node in ordered]
        names = tuple(variable.name for variable in scope)

        def predicate(values: Mapping, _names=names) -> bool:
            first = values[_names[0]]
            return all(values[name] == first for name in _names)

        events.append(BadEvent(("edge", index), scope, predicate))
    return LLLInstance(events)


def coloring_from_assignment(
    num_nodes: int, assignment: PartialAssignment
) -> Dict[int, int]:
    """Extract the node 2-coloring from a solved instance."""
    return {
        node: assignment.value_of(_variable_name(node))
        for node in range(num_nodes)
    }


def monochromatic_edges(
    edges: Sequence[Edge], coloring: Mapping[int, int]
) -> List[Edge]:
    """The hyperedges that are monochromatic under ``coloring``."""
    bad = []
    for edge in edges:
        colors = {coloring[node] for node in edge}
        if len(colors) == 1:
            bad.append(tuple(sorted(edge)))
    return bad


def is_proper_two_coloring(
    edges: Sequence[Edge], coloring: Mapping[int, int]
) -> bool:
    """Whether no hyperedge is monochromatic."""
    return not monochromatic_edges(edges, coloring)


def sparse_uniform_hypergraph(
    num_edges: int,
    uniformity: int,
    shared_per_edge: int,
    seed: int,
) -> Tuple[int, List[Edge]]:
    """A k-uniform hypergraph below the exponential threshold.

    Each hyperedge takes ``shared_per_edge`` nodes from a common pool
    (each pool node used by at most three hyperedges — rank 3) and the
    rest private.  The dependency degree is then at most
    ``2 * shared_per_edge``, so ``p = 2^(1-k) < 2^-d`` holds whenever
    ``uniformity > 2 * shared_per_edge + 1``.

    Returns ``(num_nodes, edges)``.
    """
    if uniformity <= 2 * shared_per_edge + 1:
        raise ReproError(
            f"uniformity ({uniformity}) must exceed 2*shared_per_edge + 1 "
            f"({2 * shared_per_edge + 1}) for the exponential criterion"
        )
    if shared_per_edge < 1:
        raise ReproError("shared_per_edge must be at least 1")
    rng = random.Random(seed)
    pool_size = max((num_edges * shared_per_edge + 2) // 3 + 1, uniformity)
    pool_usage = [0] * pool_size
    edges: List[Edge] = []
    next_private = pool_size
    for _ in range(num_edges):
        available = [
            node for node in range(pool_size) if pool_usage[node] < 3
        ]
        if len(available) < shared_per_edge:
            raise ReproError("shared pool exhausted")
        shared = rng.sample(available, shared_per_edge)
        for node in shared:
            pool_usage[node] += 1
        privates = list(
            range(next_private, next_private + uniformity - shared_per_edge)
        )
        next_private += uniformity - shared_per_edge
        edges.append(tuple(sorted(shared + privates)))
    # Compact node ids: unused pool nodes would otherwise be colorless
    # spectators (they appear in no hyperedge, hence in no event scope).
    used = sorted({node for edge in edges for node in edge})
    renumber = {node: index for index, node in enumerate(used)}
    edges = [tuple(sorted(renumber[node] for node in edge)) for edge in edges]
    return len(used), edges
