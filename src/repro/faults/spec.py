"""Parsing of fault-plan specifications (CLI flag and environment).

A spec is a comma-separated list of tokens::

    seed=7,crash=0.3,hang@2,drop=0.05,dup=0.02,deadline=0.5

Token forms:

``<kind>=<rate>``
    Rate-based injection for a worker fault kind (``crash``, ``hang``,
    ``slow``, ``garble``) or a message fault kind (``drop``, ``dup``).
``<kind>@<chunk>``
    Pin a worker fault to an explicit chunk index (first attempt only).
``seed=<int>``, ``deadline=<seconds>``, ``redeliver=<int>``,
``slow_seconds=<seconds>``, ``hang_seconds=<seconds>``
    Plan parameters.

The same grammar serves ``repro solve --faults SPEC`` and the
``REPRO_FAULTS`` environment variable, which the execution plane and the
simulators consult at construction time — so an unmodified test suite
can be rerun under injected faults (the CI fault-smoke job does exactly
this with the tier-1 scheduler differential tests).
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.errors import FaultSpecError
from repro.faults.plan import WORKER_FAULT_KINDS, FaultPlan

#: Environment variable holding a default fault spec.
ENV_VAR = "REPRO_FAULTS"

#: Spec keys mapping straight to rate fields.
_RATE_KEYS = {
    "crash": "crash_rate",
    "hang": "hang_rate",
    "slow": "slow_rate",
    "garble": "garble_rate",
    "drop": "drop_rate",
    "dup": "duplicate_rate",
    "duplicate": "duplicate_rate",
}

#: Spec keys mapping to scalar plan parameters (with their converters).
_PARAM_KEYS = {
    "seed": ("seed", int),
    "deadline": ("deadline", float),
    "redeliver": ("max_redelivery", int),
    "slow_seconds": ("slow_seconds", float),
    "hang_seconds": ("hang_seconds", float),
}


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse a fault spec string into a :class:`FaultPlan`.

    Raises
    ------
    FaultSpecError
        On unknown keys, malformed values, or out-of-range rates.
    """
    fields: Dict[str, object] = {}
    explicit: List[Tuple[int, str]] = []
    for raw in spec.split(","):
        token = raw.strip()
        if not token:
            continue
        if "@" in token:
            kind, _, position = token.partition("@")
            kind = kind.strip()
            if kind not in WORKER_FAULT_KINDS:
                raise FaultSpecError(
                    f"unknown worker fault kind {kind!r} in token "
                    f"{token!r}; expected one of {WORKER_FAULT_KINDS}"
                )
            try:
                chunk = int(position)
            except ValueError:
                raise FaultSpecError(
                    f"chunk index in token {token!r} is not an integer"
                ) from None
            explicit.append((chunk, kind))
            continue
        key, separator, value = token.partition("=")
        key = key.strip()
        if not separator:
            raise FaultSpecError(
                f"token {token!r} is neither key=value nor kind@chunk"
            )
        if key in _RATE_KEYS:
            try:
                fields[_RATE_KEYS[key]] = float(value)
            except ValueError:
                raise FaultSpecError(
                    f"rate in token {token!r} is not a number"
                ) from None
            continue
        if key in _PARAM_KEYS:
            name, converter = _PARAM_KEYS[key]
            try:
                fields[name] = converter(value)
            except ValueError:
                raise FaultSpecError(
                    f"value in token {token!r} is not a valid "
                    f"{converter.__name__}"
                ) from None
            continue
        raise FaultSpecError(
            f"unknown fault spec key {key!r} in token {token!r}"
        )
    if explicit:
        fields["explicit_chunks"] = tuple(explicit)
    return FaultPlan(**fields)


@lru_cache(maxsize=8)
def _parse_cached(spec: str) -> FaultPlan:
    return parse_fault_spec(spec)


def fault_plan_from_env(var: str = ENV_VAR) -> Optional[FaultPlan]:
    """The ambient fault plan, or ``None`` when the variable is unset.

    Consulted by :class:`~repro.runtime.schedulers.ProcessScheduler` and
    the simulators at construction time so an existing workload can be
    rerun under faults without code changes.  Parsing is cached per spec
    string; the variable is re-read on every call (tests monkeypatch it).
    """
    spec = os.environ.get(var)
    if not spec or not spec.strip():
        return None
    return _parse_cached(spec.strip())
