"""The deterministic fault plan: *what* fails, *where*, reproducibly.

The paper's guarantee is adversarial — below ``p = 2^-d`` the
sequential-local process succeeds under **any** fixing order — and the
execution plane promises the systems-level analogue: a worker may crash,
hang past its deadline or reply slowly, a simulator message may be
dropped or duplicated, and the run must still converge to the exact
serial transcript (or fail with a typed error naming the fault).  A
:class:`FaultPlan` is the adversary of that promise made reproducible:
every injection decision is a pure function of ``(seed, site, index,
attempt)``, derived through a cryptographic hash so it is stable across
processes, platforms and ``PYTHONHASHSEED`` values.  Two runs with the
same plan see byte-identical fault schedules.

Fault classes
-------------

* **Worker faults** (consulted by
  :class:`~repro.runtime.schedulers.ProcessScheduler`, executed by
  :func:`~repro.runtime.workers.execute_chunk`): ``crash`` (the worker
  process dies mid-chunk), ``hang`` (the worker sleeps past any
  reasonable deadline), ``slow`` (bounded extra latency) and ``garble``
  (the worker returns a truncated reply).  Faults may be pinned to an
  explicit chunk (``crash@3``) — which fires on the first attempt only,
  so recovery is deterministic — or drawn at a rate per ``(chunk,
  attempt)``, so a chunk can keep failing until the scheduler's retry
  budget routes it to the in-parent fallback.
* **Message faults** (consulted by the LOCAL simulators): ``drop`` (a
  delivery attempt is lost; the reliable-delivery layer retransmits) and
  ``duplicate`` (a message arrives twice; delivery is idempotent and the
  duplicate is suppressed).  Both recover to the exact fault-free
  transcript; a message dropped on every redelivery attempt raises
  :class:`~repro.errors.FaultRecoveryError`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Worker fault kinds, in injection-priority order.
WORKER_FAULT_KINDS = ("crash", "hang", "slow", "garble")

#: Message fault kinds.
MESSAGE_FAULT_KINDS = ("drop", "duplicate")


def _hash01(*parts: object) -> float:
    """A uniform draw in ``[0, 1)`` determined by ``parts``.

    Uses SHA-256 over the ``repr`` of the parts, so the value is stable
    across interpreter runs and hash randomization — the property that
    makes a fault schedule a reproducible artifact rather than a flake.
    """
    digest = hashlib.sha256(
        "\x1f".join(repr(part) for part in parts).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class WorkerFault:
    """One injected worker fault, shipped (pickled) into the worker."""

    #: One of :data:`WORKER_FAULT_KINDS`.
    kind: str
    #: Latency for ``slow``, sleep duration for ``hang`` (bounded so an
    #: abandoned worker eventually exits even if termination fails).
    seconds: float = 0.0

    def as_payload(self) -> Dict[str, object]:
        """A JSON-friendly description for worker-side obs events."""
        payload: Dict[str, object] = {"kind": self.kind}
        if self.seconds:
            payload["seconds"] = self.seconds
        return payload


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of injected faults.

    All rates are probabilities in ``[0, 1]`` evaluated through
    :func:`_hash01`; explicit ``*_chunks`` pins override rates for the
    named chunk on its first attempt.  The inert plan (all rates zero,
    no pins) is falsy and injects nothing.
    """

    #: Root of every hash draw; same seed, same fault schedule.
    seed: int = 0

    # Worker-fault knobs (ProcessScheduler chunks).
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    slow_rate: float = 0.0
    garble_rate: float = 0.0
    #: Explicit first-attempt faults: ``{chunk_index: kind}``.
    explicit_chunks: Tuple[Tuple[int, str], ...] = ()

    # Message-fault knobs (LOCAL simulators).
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    #: Redelivery attempts before a persistent drop becomes a typed error.
    max_redelivery: int = 5

    # Durations and policy hints.
    #: Injected latency of a ``slow`` worker.
    slow_seconds: float = 0.01
    #: Sleep duration of a ``hang`` worker (a *cap*, not a promise — the
    #: scheduler's deadline should be far below it).
    hang_seconds: float = 30.0
    #: Suggested per-chunk deadline for schedulers built from this plan
    #: (``None`` leaves the scheduler's own default in place).
    deadline: Optional[float] = None

    _explicit: Dict[int, str] = field(
        init=False, repr=False, compare=False, hash=False, default=None
    )

    def __post_init__(self) -> None:
        from repro.errors import FaultSpecError

        for name in (
            "crash_rate",
            "hang_rate",
            "slow_rate",
            "garble_rate",
            "drop_rate",
            "duplicate_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultSpecError(
                    f"fault rate {name}={rate!r} outside [0, 1]"
                )
        if self.max_redelivery < 1:
            raise FaultSpecError(
                f"max_redelivery must be >= 1, got {self.max_redelivery}"
            )
        for chunk, kind in self.explicit_chunks:
            if kind not in WORKER_FAULT_KINDS:
                raise FaultSpecError(
                    f"unknown worker fault kind {kind!r} for chunk {chunk}"
                )
        object.__setattr__(
            self, "_explicit", dict(self.explicit_chunks)
        )

    # ------------------------------------------------------------------
    # Activity predicates (hot-path guards)
    # ------------------------------------------------------------------
    @property
    def has_worker_faults(self) -> bool:
        """Whether any worker-fault knob is live."""
        return bool(
            self._explicit
            or self.crash_rate
            or self.hang_rate
            or self.slow_rate
            or self.garble_rate
        )

    @property
    def has_message_faults(self) -> bool:
        """Whether any message-fault knob is live."""
        return bool(self.drop_rate or self.duplicate_rate)

    def __bool__(self) -> bool:
        return self.has_worker_faults or self.has_message_faults

    # ------------------------------------------------------------------
    # Injection decisions
    # ------------------------------------------------------------------
    def worker_fault(
        self, chunk_index: int, attempt: int
    ) -> Optional[WorkerFault]:
        """The fault (if any) for one dispatch of one chunk.

        Explicit pins fire on the first attempt only — the retry is
        guaranteed clean, making single-fault recovery deterministic.
        Rate-based faults draw fresh per ``(chunk, attempt)``, so a
        chunk can fail repeatedly and exhaust the retry budget.
        """
        kind: Optional[str] = None
        if attempt == 0:
            kind = self._explicit.get(chunk_index)
        if kind is None:
            for candidate, rate in (
                ("crash", self.crash_rate),
                ("hang", self.hang_rate),
                ("slow", self.slow_rate),
                ("garble", self.garble_rate),
            ):
                if rate and _hash01(
                    self.seed, "worker", candidate, chunk_index, attempt
                ) < rate:
                    kind = candidate
                    break
        if kind is None:
            return None
        if kind == "hang":
            return WorkerFault(kind, self.hang_seconds)
        if kind == "slow":
            return WorkerFault(kind, self.slow_seconds)
        return WorkerFault(kind)

    def message_action(
        self, round_number: int, message_index: int, attempt: int
    ) -> Optional[str]:
        """The fate of one delivery attempt of one message.

        ``message_index`` is the message's position in the round's
        delivery order.  Drops re-draw per attempt (redelivery can fail
        again — or forever, at rate 1.0); duplication is decided once,
        on the first attempt.
        """
        if self.drop_rate and _hash01(
            self.seed, "drop", round_number, message_index, attempt
        ) < self.drop_rate:
            return "drop"
        if (
            attempt == 0
            and self.duplicate_rate
            and _hash01(self.seed, "dup", round_number, message_index)
            < self.duplicate_rate
        ):
            return "duplicate"
        return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """A JSON-friendly summary for obs payloads and benchmarks."""
        summary: Dict[str, object] = {"seed": self.seed}
        for name in (
            "crash_rate",
            "hang_rate",
            "slow_rate",
            "garble_rate",
            "drop_rate",
            "duplicate_rate",
        ):
            rate = getattr(self, name)
            if rate:
                summary[name] = rate
        if self._explicit:
            summary["explicit_chunks"] = {
                str(chunk): kind
                for chunk, kind in sorted(self._explicit.items())
            }
        if self.deadline is not None:
            summary["deadline"] = self.deadline
        summary["max_redelivery"] = self.max_redelivery
        return summary
