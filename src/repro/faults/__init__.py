"""Deterministic fault injection for the execution plane and simulators.

The math this repository reproduces is robust to adversarial scheduling;
this package makes the *runtime* demonstrably robust to adversarial
infrastructure.  A :class:`FaultPlan` is a seeded, reproducible schedule
of injected failures — worker crashes, hangs, slow replies and garbled
replies for :class:`~repro.runtime.schedulers.ProcessScheduler`; message
drops and duplications for the LOCAL simulators — and the hardened
execution paths must either recover to the exact fault-free transcript
(the differential suites are the referee) or raise a typed error naming
the fault.  Plans come from code, from ``repro solve --faults SPEC``, or
ambiently from the ``REPRO_FAULTS`` environment variable.
"""

from repro.faults.plan import (
    MESSAGE_FAULT_KINDS,
    WORKER_FAULT_KINDS,
    FaultPlan,
    WorkerFault,
)
from repro.faults.spec import (
    ENV_VAR,
    fault_plan_from_env,
    parse_fault_spec,
)

__all__ = [
    "ENV_VAR",
    "FaultPlan",
    "MESSAGE_FAULT_KINDS",
    "WORKER_FAULT_KINDS",
    "WorkerFault",
    "fault_plan_from_env",
    "parse_fault_spec",
]
