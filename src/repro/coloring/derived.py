"""Edge colorings and 2-hop colorings via virtual graphs.

The distributed fixers schedule variable fixings by color class:

* Corollary 1.2 needs a proper *edge* coloring of the dependency graph —
  computed by vertex-coloring the line graph (degree ``<= 2d - 2``) down
  to ``2d - 1`` colors;
* Corollary 1.4 needs a *2-hop* coloring — a proper vertex coloring of
  ``G^2`` (degree ``<= d^2``) with ``d^2 + 1`` colors.

Both run the real coloring pipeline on the virtual network; since one
virtual round is implementable in two rounds on the host graph (the
virtual node's state sits at an endpoint / at the node itself, and virtual
neighbors are within distance two), the reported host rounds are
``2 * virtual rounds``.  This simulation factor is the substitution for
the paper's cited black boxes [PR01] and [FHK16] — see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from repro.coloring.vertex import ColoringResult, compute_vertex_coloring
from repro.local_model.network import (
    Network,
    line_graph_network,
    square_graph_network,
)
from repro.obs.recorder import active as _obs_active, span as _obs_span

#: Host rounds needed to emulate one round on the line graph or on G^2.
VIRTUAL_ROUND_FACTOR = 2

EdgeKey = Tuple


@dataclass
class EdgeColoringResult:
    """A proper edge coloring with host-graph round accounting."""

    #: ``(min(u,v), max(u,v))`` -> color.
    colors: Dict[EdgeKey, int]
    #: Size of the palette.
    palette: int
    #: Rounds on the host graph (virtual rounds times the factor).
    host_rounds: int
    #: Rounds on the virtual (line) graph.
    virtual_rounds: int


def _dispatch_csr(network):
    """Resolve the array-native fast path for a coloring entry point.

    Accepts either a :class:`Network` or a
    :class:`repro.graph.CSRGraph` (CSR inputs always take the array
    path); returns the CSR to use, or ``None`` for the reference path.
    Imported lazily — repro.graph imports this module for the result
    dataclasses.
    """
    from repro.graph import CSRGraph, csr_eligible_network, vectorized_enabled

    if isinstance(network, CSRGraph):
        return network
    if vectorized_enabled() and csr_eligible_network(network):
        return CSRGraph.from_network(network)
    return None


def compute_edge_coloring(
    network: Network, target: Optional[int] = None
) -> EdgeColoringResult:
    """Edge-color a network with ``2d - 1`` colors (or ``target``).

    ``network`` may also be a :class:`repro.graph.CSRGraph`, in which
    case the array-native substrate is used directly.
    """
    csr = _dispatch_csr(network)
    if csr is not None:
        from repro.graph import edge_coloring_arrays

        return edge_coloring_arrays(csr, target)
    virtual, index = line_graph_network(network)
    if target is None:
        target = max(virtual.max_degree + 1, 1)
    with _obs_span("coloring", "edge_coloring"):
        result = compute_vertex_coloring(virtual, target=target)
    edge_colors = {
        edge: result.colors[virtual_node] for edge, virtual_node in index.items()
    }
    recorder = _obs_active()
    if recorder is not None:
        recorder.event(
            "coloring",
            "phase",
            phase="edge_coloring",
            host_rounds=VIRTUAL_ROUND_FACTOR * result.total_rounds,
            virtual_rounds=result.total_rounds,
            palette=result.palette,
        )
    return EdgeColoringResult(
        colors=edge_colors,
        palette=result.palette,
        host_rounds=VIRTUAL_ROUND_FACTOR * result.total_rounds,
        virtual_rounds=result.total_rounds,
    )


@dataclass
class TwoHopColoringResult:
    """A 2-hop vertex coloring with host-graph round accounting."""

    #: Node -> color; nodes within distance two have distinct colors.
    colors: Dict[Hashable, int]
    #: Size of the palette (``<= d^2 + 1``).
    palette: int
    #: Rounds on the host graph.
    host_rounds: int
    #: Rounds on the virtual (square) graph.
    virtual_rounds: int


def compute_two_hop_coloring(
    network: Network, target: Optional[int] = None
) -> TwoHopColoringResult:
    """2-hop color a network with ``d^2 + 1`` colors (or ``target``).

    ``network`` may also be a :class:`repro.graph.CSRGraph`, in which
    case the array-native substrate is used directly.
    """
    csr = _dispatch_csr(network)
    if csr is not None:
        from repro.graph import two_hop_coloring_arrays

        return two_hop_coloring_arrays(csr, target)
    square = square_graph_network(network)
    if target is None:
        target = max(square.max_degree + 1, 1)
    with _obs_span("coloring", "two_hop_coloring"):
        result = compute_vertex_coloring(square, target=target)
    recorder = _obs_active()
    if recorder is not None:
        recorder.event(
            "coloring",
            "phase",
            phase="two_hop_coloring",
            host_rounds=VIRTUAL_ROUND_FACTOR * result.total_rounds,
            virtual_rounds=result.total_rounds,
            palette=result.palette,
        )
    return TwoHopColoringResult(
        colors=dict(result.colors),
        palette=result.palette,
        host_rounds=VIRTUAL_ROUND_FACTOR * result.total_rounds,
        virtual_rounds=result.total_rounds,
    )
