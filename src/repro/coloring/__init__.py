"""Deterministic distributed coloring (substrate S8).

Linial-style iterated color reduction in ``O(log* n)`` rounds
(:mod:`repro.coloring.linial`), greedy class elimination
(:mod:`repro.coloring.reduction`), and the derived pipelines the fixers
schedule with: ``(d+1)``-vertex coloring, ``(2d-1)``-edge coloring and
``(d^2+1)``-color 2-hop coloring (:mod:`repro.coloring.vertex`,
:mod:`repro.coloring.derived`).
"""

from repro.coloring.cole_vishkin import (
    ColeVishkinAlgorithm,
    compute_cole_vishkin_coloring,
    cv_reduce,
    cv_rounds_needed,
    cycle_parents,
)
from repro.coloring.derived import (
    EdgeColoringResult,
    TwoHopColoringResult,
    VIRTUAL_ROUND_FACTOR,
    compute_edge_coloring,
    compute_two_hop_coloring,
)
from repro.coloring.linial import (
    LinialColoringAlgorithm,
    fixpoint_palette,
    reduce_color,
    reduction_parameters,
    reduction_schedule,
)
from repro.coloring.primes import (
    integer_nth_root_ceil,
    is_prime,
    smallest_prime_at_least,
)
from repro.coloring.reduction import (
    GreedyColorReductionAlgorithm,
    KWColorReductionAlgorithm,
    kw_phase_schedule,
)
from repro.coloring.validate import (
    is_proper_edge_coloring,
    is_proper_vertex_coloring,
    is_two_hop_coloring,
    require_proper_edge_coloring,
    require_proper_vertex_coloring,
    require_two_hop_coloring,
)
from repro.coloring.vertex import ColoringResult, compute_vertex_coloring

__all__ = [
    "ColeVishkinAlgorithm",
    "ColoringResult",
    "compute_cole_vishkin_coloring",
    "cv_reduce",
    "cv_rounds_needed",
    "cycle_parents",
    "EdgeColoringResult",
    "GreedyColorReductionAlgorithm",
    "KWColorReductionAlgorithm",
    "kw_phase_schedule",
    "LinialColoringAlgorithm",
    "TwoHopColoringResult",
    "VIRTUAL_ROUND_FACTOR",
    "compute_edge_coloring",
    "compute_two_hop_coloring",
    "compute_vertex_coloring",
    "fixpoint_palette",
    "integer_nth_root_ceil",
    "is_prime",
    "is_proper_edge_coloring",
    "is_proper_vertex_coloring",
    "is_two_hop_coloring",
    "reduce_color",
    "reduction_parameters",
    "reduction_schedule",
    "require_proper_edge_coloring",
    "require_proper_vertex_coloring",
    "require_two_hop_coloring",
    "smallest_prime_at_least",
]
