"""Color-class elimination: from ``m`` colors down to ``target``.

Two classic reductions, both assuming ``target > d`` (max degree):

* :class:`GreedyColorReductionAlgorithm` — dissolve the highest color
  class each round (``m - target`` rounds);
* :class:`KWColorReductionAlgorithm` — the Kuhn-Wattenhofer batched
  variant: partition the palette into groups of ``2 * target`` colors and
  reduce every group to ``target`` colors in parallel, halving the
  palette in ``target`` rounds, for ``O(target * log(m / target))``
  rounds overall.  This is the default in the vertex-coloring pipeline.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.errors import ColoringError
from repro.local_model.algorithm import LocalAlgorithm, NodeState


class GreedyColorReductionAlgorithm(LocalAlgorithm):
    """LOCAL algorithm dissolving one color class per round.

    Node input: the node's current color in ``[0, palette)``.  In round
    ``j`` the class ``palette - j`` recolors; after ``palette - target``
    rounds every color is below ``target`` and all nodes halt.

    Parameters
    ----------
    palette:
        Size of the incoming proper coloring's palette.
    target:
        Desired palette size; must exceed the maximum degree.
    degree_bound:
        Maximum degree ``d`` of the network (for validation only).
    """

    def __init__(self, palette: int, target: int, degree_bound: int) -> None:
        if target <= degree_bound:
            raise ColoringError(
                f"target palette {target} must exceed the degree bound "
                f"{degree_bound}"
            )
        if palette < 1:
            raise ColoringError("palette must be positive")
        self._palette = palette
        self._target = max(target, 1)
        self._rounds = max(palette - self._target, 0)

    @property
    def rounds_needed(self) -> int:
        """Number of communication rounds the reduction takes."""
        return self._rounds

    def initialize(self, node: NodeState) -> None:
        color = node.input
        if not isinstance(color, int) or color < 0 or color >= self._palette:
            raise ColoringError(
                f"node {node.identifier!r} needs a color in "
                f"[0, {self._palette}), got {color!r}"
            )
        node.memory["color"] = color
        if self._rounds == 0:
            node.halt_with(color)

    def send(self, node: NodeState, round_number: int) -> Dict[Hashable, int]:
        color = node.memory["color"]
        return {neighbor: color for neighbor in node.neighbors}

    def receive(self, node: NodeState, messages, round_number: int) -> None:
        dissolving = self._palette - round_number
        if node.memory["color"] == dissolving:
            used = {c for c in messages.values() if c is not None}
            for candidate in range(self._target):
                if candidate not in used:
                    node.memory["color"] = candidate
                    break
            else:
                raise ColoringError(
                    f"node {node.identifier!r} found no free color below "
                    f"{self._target}"
                )
        if round_number == self._rounds:
            node.halt_with(node.memory["color"])


def kw_phase_schedule(palette: int, target: int) -> List[Tuple[int, int]]:
    """The deterministic phase list of the Kuhn-Wattenhofer reduction.

    Each entry is ``(m, s)``: the palette at the start of the phase and
    the group width ``s = 2 * target`` (the final phase may have a single
    narrower group).  The phase runs ``min(s, m) - target`` rounds and
    leaves ``ceil(m / s) * target`` colors (capped at ``m``).
    """
    schedule = []
    m = palette
    s = 2 * target
    while m > target:
        schedule.append((m, s))
        groups = (m + s - 1) // s
        m = min(groups * target, m - 1)
    return schedule


class KWColorReductionAlgorithm(LocalAlgorithm):
    """Batched parallel color reduction (Kuhn-Wattenhofer style).

    Node input: the node's current color in ``[0, palette)``.  Every
    phase splits the palette into groups of ``2 * target`` consecutive
    colors; within each group the classes above ``target`` are dissolved
    one per round (simultaneously across groups — nodes in different
    groups keep distinct color ranges, so cross-group conflicts cannot
    arise), then colors are renumbered group-locally.  All nodes follow
    the same globally-known schedule and halt together.

    Parameters
    ----------
    palette:
        Size of the incoming proper coloring's palette.
    target:
        Desired palette size; must exceed the maximum degree.
    degree_bound:
        Maximum degree ``d`` of the network (for validation only).
    """

    def __init__(self, palette: int, target: int, degree_bound: int) -> None:
        if target <= degree_bound:
            raise ColoringError(
                f"target palette {target} must exceed the degree bound "
                f"{degree_bound}"
            )
        if palette < 1:
            raise ColoringError("palette must be positive")
        self._palette = palette
        self._target = target
        self._phases = kw_phase_schedule(palette, target)
        # Flatten to a per-round plan: (phase_index, dissolve_offset) plus
        # a renumber flag on the last round of each phase.
        self._plan: List[Tuple[int, int, bool]] = []
        for phase_index, (m, s) in enumerate(self._phases):
            rounds = min(s, m) - target
            for j in range(rounds):
                is_last = j == rounds - 1
                self._plan.append((phase_index, target + j, is_last))

    @property
    def rounds_needed(self) -> int:
        """Number of communication rounds the reduction takes."""
        return len(self._plan)

    def initialize(self, node: NodeState) -> None:
        color = node.input
        if not isinstance(color, int) or color < 0 or color >= self._palette:
            raise ColoringError(
                f"node {node.identifier!r} needs a color in "
                f"[0, {self._palette}), got {color!r}"
            )
        node.memory["color"] = color
        if not self._plan:
            node.halt_with(color)

    def send(self, node: NodeState, round_number: int) -> Dict[Hashable, int]:
        color = node.memory["color"]
        return {neighbor: color for neighbor in node.neighbors}

    def receive(self, node: NodeState, messages, round_number: int) -> None:
        phase_index, dissolve_offset, is_last = self._plan[round_number - 1]
        m, s = self._phases[phase_index]
        target = self._target
        color = node.memory["color"]
        group, offset = divmod(color, s)
        if offset == dissolve_offset:
            base = group * s
            used = {c for c in messages.values() if c is not None}
            for candidate in range(base, base + target):
                if candidate not in used:
                    node.memory["color"] = candidate
                    break
            else:
                raise ColoringError(
                    f"node {node.identifier!r} found no free color in its "
                    f"group [{base}, {base + target})"
                )
        if is_last:
            # Group-local renumbering: color = group * target + offset.
            group, offset = divmod(node.memory["color"], s)
            if offset >= target:
                raise ColoringError(
                    f"node {node.identifier!r} still has offset {offset} "
                    f">= target {target} at the end of a phase"
                )
            node.memory["color"] = group * target + offset
        if round_number == len(self._plan):
            node.halt_with(node.memory["color"])
