"""Linial-style iterated color reduction in ``O(log* n)`` rounds.

One reduction round shrinks a proper ``m``-coloring of a graph with
maximum degree ``d`` to a proper ``q^2``-coloring, where ``q`` is a prime
chosen so that ``q >= d*k + 1`` and ``q^(k+1) >= m`` for some degree bound
``k``.  A node's color is read as the coefficient vector of a polynomial
of degree at most ``k`` over GF(q); distinct colors give distinct
polynomials, two distinct degree-``<=k`` polynomials agree on at most
``k`` points, so among the ``q > d*k`` evaluation points some ``x``
distinguishes a node's polynomial from all ``<= d`` neighbors'.  The pair
``(x, p(x))`` is the new color.

Iterating from the identifier space ``m = N`` reaches a fixpoint palette
of size ``O(d^2)`` after ``O(log* N)`` rounds — this reproduces the
symmetry-breaking substrate that the paper's Corollaries 1.2 and 1.4 cite
([PR01], [FHK16]) with the same ``log* n`` round shape.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.errors import ColoringError
from repro.coloring.primes import integer_nth_root_ceil, smallest_prime_at_least
from repro.local_model.algorithm import LocalAlgorithm, NodeState

#: Cap on the polynomial degree considered when picking parameters; the
#: palette shrinks so fast that tiny degrees always win, but the search is
#: cheap and a bound keeps it obviously finite.
_MAX_POLY_DEGREE = 64


def reduction_parameters(m: int, d: int) -> Optional[Tuple[int, int]]:
    """The ``(q, k)`` minimising the next palette size ``q^2``.

    Returns ``None`` when no choice makes progress (``q^2 < m``), i.e.
    the iteration has reached its fixpoint.
    """
    if m < 2:
        return None
    d = max(d, 1)
    best: Optional[Tuple[int, int]] = None
    best_size = m  # require strict progress
    for k in range(1, _MAX_POLY_DEGREE + 1):
        lower = max(d * k + 1, integer_nth_root_ceil(m, k + 1))
        q = smallest_prime_at_least(lower)
        size = q * q
        if size < best_size:
            best_size = size
            best = (q, k)
        if d * k + 1 > best_size:
            break
    return best


def fixpoint_palette(m: int, d: int) -> int:
    """The palette size at which :func:`reduction_parameters` stalls."""
    while True:
        parameters = reduction_parameters(m, d)
        if parameters is None:
            return m
        q, _k = parameters
        m = q * q


def reduction_schedule(m: int, d: int) -> List[Tuple[int, int, int]]:
    """The deterministic sequence of reductions from palette ``m``.

    Returns a list of ``(m_before, q, k)`` rows; its length is the number
    of communication rounds the Linial phase needs (``O(log* m)``).
    """
    schedule = []
    while True:
        parameters = reduction_parameters(m, d)
        if parameters is None:
            return schedule
        q, k = parameters
        schedule.append((m, q, k))
        m = q * q


def _polynomial_coefficients(color: int, q: int, k: int) -> List[int]:
    """The base-``q`` digits of ``color`` as ``k + 1`` coefficients."""
    coefficients = []
    for _ in range(k + 1):
        coefficients.append(color % q)
        color //= q
    if color != 0:
        raise ColoringError(
            f"color does not fit in {k + 1} base-{q} digits"
        )
    return coefficients


def _evaluate(coefficients: List[int], x: int, q: int) -> int:
    """Evaluate the polynomial at ``x`` over GF(q) (Horner)."""
    value = 0
    for coefficient in reversed(coefficients):
        value = (value * x + coefficient) % q
    return value


def reduce_color(
    color: int, neighbor_colors: Iterable[int], m: int, q: int, k: int
) -> int:
    """One node's Linial reduction step: old color -> new color in ``[q^2]``.

    Raises
    ------
    ColoringError
        If no distinguishing evaluation point exists — impossible for a
        proper coloring with ``q > d*k``, so this signals an improper
        input coloring.
    """
    if color < 0 or color >= m:
        raise ColoringError(f"color {color} outside palette [0, {m})")
    neighbor_list = list(neighbor_colors)
    if any(c == color for c in neighbor_list):
        raise ColoringError("a neighbor shares this node's color")
    own = _polynomial_coefficients(color, q, k)
    others = [_polynomial_coefficients(c, q, k) for c in neighbor_list]
    for x in range(q):
        value = _evaluate(own, x, q)
        if all(_evaluate(other, x, q) != value for other in others):
            return x * q + value
    raise ColoringError(
        f"no distinguishing point found (q={q}, k={k}, "
        f"{len(others)} neighbors) — input coloring was not proper"
    )


class LinialColoringAlgorithm(LocalAlgorithm):
    """LOCAL algorithm: iterate the reduction until the fixpoint palette.

    Node input: the initial color (defaults to the node identifier).  The
    palette evolution is deterministic and globally known, so all nodes
    follow the same schedule and halt together after ``len(schedule)``
    rounds, outputting their final color.

    Parameters
    ----------
    identifier_space:
        Strict upper bound on initial colors (e.g. ``max id + 1``).
    degree_bound:
        Maximum degree ``d`` of the network.
    """

    def __init__(self, identifier_space: int, degree_bound: int) -> None:
        if identifier_space < 1:
            raise ColoringError("identifier_space must be positive")
        self._schedule = reduction_schedule(identifier_space, degree_bound)

    @property
    def schedule(self) -> List[Tuple[int, int, int]]:
        """The ``(m, q, k)`` reduction schedule this instance follows."""
        return list(self._schedule)

    @property
    def final_palette(self) -> int:
        """Palette size after the last scheduled reduction."""
        if not self._schedule:
            return 0
        m, q, _k = self._schedule[-1]
        return q * q

    def initialize(self, node: NodeState) -> None:
        color = node.input if node.input is not None else node.identifier
        if not isinstance(color, int) or color < 0:
            raise ColoringError(
                f"node {node.identifier!r} needs a non-negative integer "
                f"initial color"
            )
        node.memory["color"] = color
        if not self._schedule:
            node.halt_with(color)

    def send(self, node: NodeState, round_number: int) -> Dict[Hashable, int]:
        color = node.memory["color"]
        return {neighbor: color for neighbor in node.neighbors}

    def receive(self, node: NodeState, messages, round_number: int) -> None:
        m, q, k = self._schedule[round_number - 1]
        neighbor_colors = [c for c in messages.values() if c is not None]
        node.memory["color"] = reduce_color(
            node.memory["color"], neighbor_colors, m, q, k
        )
        if round_number == len(self._schedule):
            node.halt_with(node.memory["color"])
