"""Cole-Vishkin 3-coloring of rooted pseudoforests in O(log* n) rounds.

The historical origin of the ``log* n`` bound the paper's corollaries
inherit: on a graph where every node knows a *parent* among its
neighbors (a rooted pseudoforest — e.g. an oriented cycle or a rooted
tree), iterated bit tricks shrink unique identifiers to six colors in
``log* n`` rounds, and three shift-down phases finish the job with a
palette of three.

One reduction round: a node with color ``c`` and parent color ``c_p``
finds the lowest bit position ``i`` where they differ and recolors to
``2i + bit_i(c)``.  Adjacent (child, parent) pairs stay properly colored
— if both picked the same position, their bits there differ; otherwise
the positions differ — and ``n``-bit colors shrink to
``~2 log n``-bit colors per round, down to the fixpoint palette
``{0..5}``.

Shift-down phase (to eliminate a color class ``x`` in {3, 4, 5}): first
every node adopts its parent's color (roots rotate theirs), making every
node's children monochromatic; then the class-``x`` nodes see at most
two distinct colors around them and pick a free color from ``{0, 1, 2}``.

This module complements :mod:`repro.coloring.linial` (which handles
arbitrary bounded-degree graphs); it is the right tool when an
orientation is available, matching the classic treatment of cycles.
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from repro.errors import ColoringError
from repro.local_model.algorithm import LocalAlgorithm, NodeState
from repro.local_model.network import Network
from repro.local_model.simulator import Simulator


def cv_reduce(color: int, parent_color: int) -> int:
    """One Cole-Vishkin step: ``(c, c_parent) -> 2i + bit_i(c)``."""
    if color == parent_color:
        raise ColoringError(
            "child and parent share a color; input coloring is improper"
        )
    differing = color ^ parent_color
    position = (differing & -differing).bit_length() - 1
    bit = (color >> position) & 1
    return 2 * position + bit


def cv_rounds_needed(identifier_space: int) -> int:
    """Rounds until colors provably sit in {0..5}, from ``[N]`` ids."""
    rounds = 0
    palette = max(identifier_space, 2)
    while palette > 6:
        # colors < palette need ceil(log2 palette) bits; the new color is
        # 2 * position + bit < 2 * bits.
        bits = (palette - 1).bit_length()
        palette = 2 * bits
        rounds += 1
    return rounds


class ColeVishkinAlgorithm(LocalAlgorithm):
    """LOCAL algorithm: 3-color a rooted pseudoforest.

    Node input: the identifier of the node's parent (a neighbor), or
    ``None`` for roots.  Roots simulate a parent whose color always
    differs (their identifier with the lowest bit flipped, then a
    rotating palette color during shift-downs).

    Rounds: ``cv_rounds_needed(N)`` bit-reduction rounds, then 6 rounds
    (three shift-down + recolor pairs) to eliminate colors 5, 4, 3.
    """

    #: The three shift-down target classes, eliminated in this order.
    _ELIMINATE = (5, 4, 3)

    def __init__(self, identifier_space: int) -> None:
        if identifier_space < 1:
            raise ColoringError("identifier_space must be positive")
        self._reduction_rounds = cv_rounds_needed(identifier_space)
        self._total_rounds = self._reduction_rounds + 2 * len(self._ELIMINATE)

    @property
    def rounds_needed(self) -> int:
        """Total rounds the algorithm takes."""
        return self._total_rounds

    def initialize(self, node: NodeState) -> None:
        parent = node.input
        if parent is not None and parent not in node.neighbors:
            raise ColoringError(
                f"node {node.identifier!r}: parent {parent!r} is not a "
                f"neighbor"
            )
        node.memory["parent"] = parent
        node.memory["color"] = node.identifier
        if not isinstance(node.identifier, int) or node.identifier < 0:
            raise ColoringError("node identifiers must be non-negative ints")

    def send(self, node: NodeState, round_number: int) -> Dict[Hashable, int]:
        color = node.memory["color"]
        return {neighbor: color for neighbor in node.neighbors}

    def receive(self, node: NodeState, messages, round_number: int) -> None:
        parent = node.memory["parent"]
        color = node.memory["color"]
        parent_color = messages.get(parent) if parent is not None else None

        if round_number <= self._reduction_rounds:
            if parent is None:
                # Roots pretend their parent differs in the lowest bit.
                parent_color = color ^ 1
            node.memory["color"] = cv_reduce(color, parent_color)
        else:
            phase = round_number - self._reduction_rounds - 1
            eliminate = self._ELIMINATE[phase // 2]
            if phase % 2 == 0:
                # Shift-down: adopt the parent's color; roots rotate.
                if parent is None:
                    node.memory["color"] = (color + 1) % 3
                else:
                    node.memory["color"] = parent_color
            else:
                if node.memory["color"] == eliminate:
                    used = {c for c in messages.values() if c is not None}
                    for candidate in range(3):
                        if candidate not in used:
                            node.memory["color"] = candidate
                            break
                    else:
                        raise ColoringError(
                            f"node {node.identifier!r}: no free color in "
                            f"{{0, 1, 2}} during shift-down"
                        )
        if round_number == self._total_rounds:
            node.halt_with(node.memory["color"])


def compute_cole_vishkin_coloring(
    network: Network, parents: Dict[Hashable, Hashable]
) -> Dict[str, object]:
    """Run Cole-Vishkin on a network with the given parent pointers.

    Parameters
    ----------
    network:
        The communication graph (identifiers must be non-negative ints).
    parents:
        ``node -> parent neighbor`` (or ``None`` for roots); every node
        must appear.

    Returns a dict with ``colors`` (node -> color in {0, 1, 2}) and
    ``rounds``.
    """
    missing = [node for node in network.nodes if node not in parents]
    if missing:
        raise ColoringError(f"no parent entry for nodes {missing[:3]!r}")
    # Array-native fast path: one CSR gather per round instead of a
    # per-node message loop.  Imported lazily (repro.graph imports the
    # coloring package).
    from repro.graph import (
        CSRGraph,
        cole_vishkin_arrays,
        csr_eligible_network,
        vectorized_enabled,
    )

    if vectorized_enabled() and csr_eligible_network(network):
        return cole_vishkin_arrays(CSRGraph.from_network(network), parents)
    algorithm = ColeVishkinAlgorithm(network.identifier_space())
    simulator = Simulator(network, algorithm, inputs=dict(parents))
    result = simulator.run(max_rounds=algorithm.rounds_needed + 1)
    return {"colors": dict(result.outputs), "rounds": result.rounds}


def cycle_parents(num_nodes: int) -> Dict[int, int]:
    """The canonical orientation of a generator cycle: parent = (i+1) % n."""
    if num_nodes < 3:
        raise ColoringError("a cycle needs at least 3 nodes")
    return {node: (node + 1) % num_nodes for node in range(num_nodes)}
