"""Small number-theory helpers for the Linial color reduction.

The polynomial set-family construction evaluates polynomials over a prime
field GF(q); these routines find suitable primes and integer roots without
floating-point hazards.
"""

from __future__ import annotations

from repro.errors import ColoringError


def is_prime(n: int) -> bool:
    """Deterministic trial-division primality test (fine for small n)."""
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    divisor = 3
    while divisor * divisor <= n:
        if n % divisor == 0:
            return False
        divisor += 2
    return True


def smallest_prime_at_least(n: int) -> int:
    """The smallest prime ``>= n``."""
    if n < 2:
        return 2
    candidate = n
    while not is_prime(candidate):
        candidate += 1
    return candidate


def integer_nth_root_ceil(value: int, n: int) -> int:
    """The smallest integer ``r`` with ``r**n >= value`` (exact arithmetic)."""
    if value <= 0:
        raise ColoringError("value must be positive")
    if n < 1:
        raise ColoringError("n must be at least 1")
    if value == 1:
        return 1
    low, high = 1, value
    while low < high:
        mid = (low + high) // 2
        if mid**n >= value:
            high = mid
        else:
            low = mid + 1
    return low
