"""Independent validity checks for colorings.

These checkers never trust the algorithms that produced a coloring; the
test suite and the distributed fixers re-validate every coloring before
using it as a schedule.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Tuple

import networkx as nx

from repro.errors import ColoringError


def is_proper_vertex_coloring(graph: nx.Graph, colors: Mapping) -> bool:
    """Whether adjacent nodes always have distinct colors."""
    missing = [node for node in graph.nodes() if node not in colors]
    if missing:
        return False
    return all(colors[u] != colors[v] for u, v in graph.edges())


def is_proper_edge_coloring(graph: nx.Graph, colors: Mapping) -> bool:
    """Whether edges sharing an endpoint always have distinct colors.

    ``colors`` is keyed by ``(min(u, v), max(u, v))`` tuples.
    """
    for u, v in graph.edges():
        if (min(u, v), max(u, v)) not in colors:
            return False
    for node in graph.nodes():
        seen = set()
        for neighbor in graph.neighbors(node):
            key = (min(node, neighbor), max(node, neighbor))
            color = colors[key]
            if color in seen:
                return False
            seen.add(color)
    return True


def is_two_hop_coloring(graph: nx.Graph, colors: Mapping) -> bool:
    """Whether nodes within distance two always have distinct colors."""
    if not is_proper_vertex_coloring(graph, colors):
        return False
    for node in graph.nodes():
        seen: Dict[int, Hashable] = {}
        for neighbor in graph.neighbors(node):
            color = colors[neighbor]
            if color in seen and seen[color] != neighbor:
                return False
            seen[color] = neighbor
        # Distance-2 pairs through this node: all neighbors are pairwise
        # within distance two, which the loop above already enforces via
        # distinct colors; also the node itself vs. its neighbors.
        if colors[node] in seen:
            return False
    return True


def require_proper_vertex_coloring(graph: nx.Graph, colors: Mapping) -> None:
    """Raise :class:`ColoringError` unless the vertex coloring is proper."""
    if not is_proper_vertex_coloring(graph, colors):
        raise ColoringError("vertex coloring is not proper")


def require_proper_edge_coloring(graph: nx.Graph, colors: Mapping) -> None:
    """Raise :class:`ColoringError` unless the edge coloring is proper."""
    if not is_proper_edge_coloring(graph, colors):
        raise ColoringError("edge coloring is not proper")


def require_two_hop_coloring(graph: nx.Graph, colors: Mapping) -> None:
    """Raise :class:`ColoringError` unless the coloring is 2-hop proper."""
    if not is_two_hop_coloring(graph, colors):
        raise ColoringError("coloring is not a proper 2-hop coloring")
