"""End-to-end distributed vertex coloring pipelines.

:func:`compute_vertex_coloring` chains the Linial reduction (``log* n``
rounds to an ``O(d^2)`` palette) with the greedy class elimination (down
to any ``target > d``), running both as honest LOCAL simulations and
reporting the exact total round count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from repro.errors import ColoringError
from repro.coloring.linial import LinialColoringAlgorithm
from repro.coloring.reduction import (
    GreedyColorReductionAlgorithm,
    KWColorReductionAlgorithm,
)
from repro.local_model.network import Network
from repro.local_model.simulator import Simulator
from repro.obs.recorder import active as _obs_active, span as _obs_span


@dataclass
class ColoringResult:
    """A proper coloring with its round accounting."""

    #: Node -> color.
    colors: Dict[Hashable, int]
    #: Size of the final palette (colors are in ``[0, palette)``).
    palette: int
    #: Rounds spent in the Linial (log* n) phase.
    linial_rounds: int
    #: Rounds spent in the greedy class-elimination phase.
    reduction_rounds: int

    @property
    def total_rounds(self) -> int:
        """Total communication rounds across both phases."""
        return self.linial_rounds + self.reduction_rounds

    @property
    def num_colors_used(self) -> int:
        """Number of distinct colors actually present."""
        return len(set(self.colors.values()))


def compute_vertex_coloring(
    network: Network,
    target: Optional[int] = None,
    identifier_space: Optional[int] = None,
    max_rounds: int = 1_000_000,
    reduction: str = "kw",
) -> ColoringResult:
    """Properly color a network with ``target`` colors (default ``d + 1``).

    Parameters
    ----------
    network:
        The communication graph; node identifiers must be non-negative
        integers (they seed the initial coloring).
    target:
        Final palette size; must exceed the maximum degree.  ``None``
        selects ``d + 1``.  Passing the Linial fixpoint palette (or
        anything at least as large) skips the reduction phase.
    identifier_space:
        Strict upper bound on node identifiers; computed from the network
        when omitted.
    reduction:
        ``"kw"`` (default) uses the Kuhn-Wattenhofer batched reduction
        (``O(target * log(palette / target))`` rounds); ``"greedy"`` uses
        one-class-per-round elimination (``palette - target`` rounds).
    """
    if reduction not in ("kw", "greedy"):
        raise ColoringError(f"unknown reduction strategy {reduction!r}")
    degree = max(network.max_degree, 1)
    if identifier_space is None:
        identifier_space = network.identifier_space()
    if target is None:
        target = degree + 1
    if target <= network.max_degree:
        raise ColoringError(
            f"target {target} must exceed the maximum degree "
            f"{network.max_degree}"
        )

    # Array-native fast path (REPRO_GRAPH=vectorized, the default):
    # whole-palette rounds over a CSR adjacency, element-identical to the
    # per-node simulation below.  Imported lazily — repro.graph imports
    # this module for ColoringResult.
    from repro.graph import backend as _graph_backend

    if _graph_backend.vectorized_enabled():
        from repro.graph import (
            CSRGraph,
            csr_eligible_network,
            vertex_coloring_arrays,
        )

        if csr_eligible_network(network):
            return vertex_coloring_arrays(
                CSRGraph.from_network(network),
                target=target,
                identifier_space=identifier_space,
                max_rounds=max_rounds,
                reduction=reduction,
            )

    recorder = _obs_active()
    linial = LinialColoringAlgorithm(identifier_space, degree)
    simulator = Simulator(network, linial)
    with _obs_span("coloring", "linial"):
        linial_result = simulator.run(max_rounds)
    palette = linial.final_palette or identifier_space
    colors = dict(linial_result.outputs)
    if recorder is not None:
        recorder.count("coloring", "linial_rounds", linial_result.rounds)
        recorder.event(
            "coloring",
            "phase",
            phase="linial",
            rounds=linial_result.rounds,
            palette=palette,
            nodes=len(colors),
        )

    reduction_rounds = 0
    if palette > target:
        if reduction == "kw":
            reducer = KWColorReductionAlgorithm(
                palette, target, network.max_degree
            )
        else:
            reducer = GreedyColorReductionAlgorithm(
                palette, target, network.max_degree
            )
        with _obs_span("coloring", "reduction", strategy=reduction):
            reduction_result = Simulator(network, reducer, inputs=colors).run(
                max_rounds
            )
        colors = dict(reduction_result.outputs)
        palette = target
        reduction_rounds = reduction_result.rounds
        if recorder is not None:
            recorder.count("coloring", "reduction_rounds", reduction_rounds)
            recorder.event(
                "coloring",
                "phase",
                phase="reduction",
                strategy=reduction,
                rounds=reduction_rounds,
                palette=palette,
            )

    return ColoringResult(
        colors=colors,
        palette=palette,
        linial_rounds=linial_result.rounds,
        reduction_rounds=reduction_rounds,
    )
