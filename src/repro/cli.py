"""Command-line interface: quick demos and instance solving.

Usage (also via ``python -m repro``)::

    python -m repro info                      # paper + library summary
    python -m repro solve --family cycle --n 24 --alphabet 3
    python -m repro solve --family triples --n 18 --alphabet 5 --distributed
    python -m repro solve --family triples --n 18 --scheduler batch
    python -m repro solve --family triples --n 18 --scheduler process \\
        --faults seed=7,crash=0.3,deadline=1   # fault-injected, same answer
    python -m repro solve --family triples --n 18 --obs-trace run.jsonl
    python -m repro solve --family triples --n 18 --decide scalar \\
        --engine naive --graph reference     # pin the oracle backends
    python -m repro plan --family triples --n 18  # inspect the fix plan
    python -m repro stats run.jsonl           # span/counter/histogram summary
    python -m repro stats run.jsonl --json    # machine-readable summary
    python -m repro stats live.jsonl --follow # tail a running trace
    python -m repro profile run.jsonl         # flamegraph-ready hot stacks
    python -m repro bench compare --results-dir /tmp/fresh  # perf gate
    python -m repro trace run.jsonl --component fixer.rank3
    python -m repro threshold --n 32          # the phase-shift demo
    python -m repro logstar 1000000           # evaluate log*

The CLI intentionally exposes only the curated workload families of
:mod:`repro.generators`; programmatic users should build instances
directly against the library API.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.analysis import format_table, log_star
from repro.core import solve, solve_distributed, solve_distributed_local
from repro.errors import CriterionViolationError, ReproError
from repro.generators import build_family_instance, random_regular_graph
from repro.lll import verify_solution
from repro.runtime.schedulers import SCHEDULER_NAMES

FAMILIES = ("cycle", "regular", "torus", "triples")


def _apply_backend_args(args) -> None:
    """Install the ``--engine``/``--graph``/``--decide``/``--artifacts``/
    ``--ipc`` selections.

    Each flag is the CLI front for one of the five process-wide backend
    switches (``REPRO_ENGINE`` / ``REPRO_GRAPH`` / ``REPRO_DECIDE`` /
    ``REPRO_ARTIFACTS`` / ``REPRO_IPC``); a flag that was not given
    leaves the ambient environment selection untouched.
    """
    if getattr(args, "engine", None):
        from repro.probability import set_engine_mode

        set_engine_mode(args.engine)
    if getattr(args, "graph", None):
        from repro.graph import set_backend

        set_backend(args.graph)
    if getattr(args, "decide", None):
        from repro.core.vector import set_decide_mode

        set_decide_mode(args.decide)
    if getattr(args, "artifacts", None):
        from repro.artifacts import set_artifacts_mode

        set_artifacts_mode(args.artifacts)
    if getattr(args, "ipc", None):
        from repro.runtime.shm import set_ipc_mode

        set_ipc_mode(args.ipc)


def _build_instance(args):
    return build_family_instance(
        args.family,
        args.n,
        alphabet=args.alphabet,
        degree=args.degree,
        seed=args.seed,
    )


def _command_info(args) -> int:
    print(f"repro {__version__}")
    print(
        "Reproduction of Brandt, Maus & Uitto, 'A Sharp Threshold "
        "Phenomenon for the\nDistributed Complexity of the Lovász Local "
        "Lemma' (PODC 2019)."
    )
    print()
    rows = [
        {"claim": "Theorem 1.1 (rank 2)", "api": "repro.core.solve_rank2"},
        {"claim": "Theorem 1.3 (rank 3)", "api": "repro.core.solve_rank3"},
        {"claim": "Corollary 1.2/1.4", "api": "repro.core.solve_distributed"},
        {
            "claim": "message-level protocol",
            "api": "repro.core.solve_distributed_local",
        },
        {
            "claim": "naive rank-r (Sec. 1)",
            "api": "repro.core.solve_naive",
        },
        {"claim": "Moser-Tardos baselines", "api": "repro.baselines"},
        {"claim": "applications", "api": "repro.applications"},
    ]
    print(format_table(rows))
    if getattr(args, "landscape", False):
        from repro.analysis import landscape_rows

        print()
        print(
            format_table(
                landscape_rows(),
                title="The distributed-LLL complexity landscape "
                "(as surveyed by the paper)",
            )
        )
    return 0


def _command_solve(args) -> int:
    if getattr(args, "obs_trace", None):
        from repro.obs import recording

        with recording(path=args.obs_trace):
            code = _solve_impl(args)
        print(f"observability trace written to {args.obs_trace}")
        return code
    return _solve_impl(args)


def _fault_plan_for(args):
    spec = getattr(args, "faults", None)
    if not spec:
        return None
    from repro.faults import parse_fault_spec

    return parse_fault_spec(spec)


def _make_scheduler(args, fault_plan=None):
    name = getattr(args, "scheduler", None)
    if name is None:
        return None
    from repro.runtime import make_scheduler

    if name == "process":
        # Worker count and IPC mode resolve *here*, at construction, so
        # the run header can echo the exact backend configuration.
        kwargs = {}
        if fault_plan is not None:
            kwargs["fault_plan"] = fault_plan
        if getattr(args, "workers", None):
            kwargs["max_workers"] = args.workers
        return make_scheduler(name, **kwargs)
    return make_scheduler(name)


def _solve_impl(args) -> int:
    _apply_backend_args(args)
    instance = _build_instance(args)
    summary = instance.summary()
    print(
        f"instance: {summary['num_events']} events, "
        f"{summary['num_variables']} variables, rank {summary['rank']}, "
        f"p = {summary['p']:.6g}, d = {summary['d']}, "
        f"p*2^d = {summary['p_times_2^d']:.4g}"
    )
    fault_plan = _fault_plan_for(args)
    scheduler = _make_scheduler(args, fault_plan)
    if scheduler is not None:
        print(f"scheduler: {scheduler.describe()}")
    if scheduler is not None and args.protocol:
        raise ReproError(
            "--scheduler applies to the scheduled paths; the message-level "
            "protocol (--protocol) executes its own schedule"
        )
    if fault_plan is not None and not args.protocol and (
        getattr(args, "scheduler", None) != "process"
    ):
        raise ReproError(
            "--faults injects worker faults into the process scheduler or "
            "message faults into the protocol simulation; combine it with "
            "--scheduler process or --protocol"
        )
    if fault_plan is not None:
        print(f"fault plan: {fault_plan.describe()}")
    try:
        if args.protocol:
            result = solve_distributed_local(instance, fault_plan=fault_plan)
        elif args.distributed:
            result = solve_distributed(instance, scheduler=scheduler)
        else:
            result = solve(instance, scheduler=scheduler)
    except CriterionViolationError as error:
        print(f"REJECTED: {error}")
        return 1
    if args.distributed or args.protocol:
        print(
            f"solved in {result.total_rounds} LOCAL rounds "
            f"({result.coloring_rounds} coloring + "
            f"{result.schedule_rounds} schedule)"
        )
        assignment = result.assignment
    else:
        print(f"solved sequentially in {result.num_steps} fixing steps")
        assignment = result.assignment
    ok = verify_solution(instance, assignment).ok
    print(f"verification: {'all bad events avoided' if ok else 'FAILED'}")
    return 0 if ok else 2


def _command_serve(args) -> int:
    import asyncio

    from repro.serve import ServeConfig, run_server

    _apply_backend_args(args)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        scheduler=args.scheduler,
        workers=args.workers,
        ipc=getattr(args, "ipc", None),
        max_inflight=args.max_inflight,
        deadline_s=args.deadline,
    )
    if getattr(args, "obs_trace", None):
        from repro.obs import recording

        with recording(path=args.obs_trace):
            asyncio.run(run_server(config))
        print(f"observability trace written to {args.obs_trace}")
        return 0
    asyncio.run(run_server(config))
    return 0


def _command_plan(args) -> int:
    from repro.runtime import plan_for_instance

    _apply_backend_args(args)
    instance = _build_instance(args)
    plan = plan_for_instance(instance)
    plan.validate()
    print(
        f"plan: kind={plan.kind}, palette={plan.palette}, "
        f"coloring_rounds={plan.coloring_rounds}"
    )
    print(
        f"classes: {plan.num_classes} "
        f"({plan.num_cells} cells, {plan.num_ops} ops)"
    )
    rows = [
        {
            "class": color_class.color,
            "cells": len(color_class.cells),
            "ops": color_class.num_ops,
            "span": color_class.span,
        }
        for color_class in plan.classes
    ]
    print(format_table(rows, title="color classes"))
    print(f"critical path: {plan.critical_path} fixings")
    return 0


def _command_threshold(args) -> int:
    if getattr(args, "obs_trace", None):
        from repro.obs import recording

        with recording(path=args.obs_trace):
            code = _threshold_impl(args)
        print(f"observability trace written to {args.obs_trace}")
        return code
    return _threshold_impl(args)


def _threshold_impl(args) -> int:
    from repro.applications import (
        relaxed_sinkless_instance,
        sinkless_orientation_instance,
    )
    from repro.baselines import distributed_moser_tardos

    graph = random_regular_graph(args.n, 3, seed=args.seed)
    at = sinkless_orientation_instance(graph)
    print(f"AT the threshold (sinkless orientation, p = 2^-3):")
    try:
        solve(at)
        print("  unexpectedly accepted?!")
    except CriterionViolationError:
        print("  deterministic fixer: rejected (as the paper proves)")
    mt = distributed_moser_tardos(at, seed=args.seed)
    print(f"  distributed Moser-Tardos: {mt.rounds} rounds")
    below = relaxed_sinkless_instance(graph, labels=3)
    result = solve_distributed(below)
    print(f"BELOW the threshold (3 labels, p = 3^-3):")
    print(f"  deterministic: {result.total_rounds} LOCAL rounds")
    return 0


def _command_logstar(args) -> int:
    print(log_star(args.value))
    return 0


def _command_report(args) -> int:
    from repro.analysis import load_results, render_report

    artifacts = load_results(args.results_dir)
    print(render_report(artifacts, args.experiments or None))
    return 0


def _command_stats(args) -> int:
    import json as _json

    from repro.obs import (
        follow_trace,
        render_summary,
        summarize_trace,
        summarize_trace_file,
        summary_to_dict,
    )

    if args.follow:
        # Tail the live trace: print each snapshot as it lands, then the
        # full summary once every started run has ended.
        events = []
        for event in follow_trace(
            args.trace, idle_timeout=args.idle_timeout
        ):
            events.append(event)
            if event.get("event") == "snapshot" and not args.json:
                payload = event.get("payload") or {}
                live = {
                    **(payload.get("counters") or {}),
                    **(payload.get("gauges") or {}),
                }
                print(
                    f"snapshot @{event.get('ts_ns', 0) / 1e9:.3f}s "
                    + " ".join(
                        f"{key}={value}"
                        for key, value in sorted(live.items())
                    )
                )
        summary = summarize_trace(events)
    else:
        # Streaming single pass: multi-GB traces never materialize.
        summary = summarize_trace_file(
            args.trace, validate=not args.no_validate
        )
    if args.json:
        print(_json.dumps(summary_to_dict(summary), indent=2, default=repr))
    else:
        print(render_summary(summary))
    return 0


def _command_profile(args) -> int:
    from repro.obs import (
        collect_profiles,
        iter_trace,
        render_collapsed,
        render_profile_report,
    )

    stacks = collect_profiles(
        iter_trace(args.trace), component=args.component
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(render_collapsed(stacks) + "\n")
        print(f"wrote {len(stacks)} collapsed stacks to {args.out}")
        return 0
    print(render_profile_report(stacks, top=args.top))
    return 0


def _command_bench(args) -> int:
    if args.bench_command == "compare":
        from repro.analysis import compare_results

        kwargs = {}
        if args.tolerance is not None:
            kwargs["tolerance"] = args.tolerance
        report = compare_results(
            candidate_dir=args.results_dir,
            baseline_dir=args.baseline_dir,
            experiments=args.experiments or None,
            **kwargs,
        )
        print(report.render(verbose=args.verbose))
        return 0 if report.ok else 3
    raise ReproError(f"unknown bench subcommand {args.bench_command!r}")


def _command_cache(args) -> int:
    from repro.artifacts import STORE, artifacts_mode

    if args.cache_command == "stats":
        print(f"artifact cache: mode={artifacts_mode()}")
        stats = STORE.stats()
        if not stats:
            print("  (no tiers materialised)")
        for name in sorted(stats):
            tier = stats[name]
            print(
                f"  {name:<12} size={tier['size']}/{tier['capacity']}"
                f"  hits={tier['hits']}  misses={tier['misses']}"
                f"  evictions={tier['evictions']}"
            )
        totals = STORE.totals()
        print(
            f"  {'total':<12} size={totals['size']}"
            f"  hits={totals['hits']}  misses={totals['misses']}"
            f"  evictions={totals['evictions']}"
        )
        return 0
    if args.cache_command == "clear":
        cleared = STORE.totals()["size"]
        STORE.clear()
        print(f"cleared {cleared} cached artifacts")
        return 0
    raise ReproError(f"unknown cache subcommand {args.cache_command!r}")


def _command_trace(args) -> int:
    from repro.obs import check_events, read_trace, render_trace

    events = read_trace(args.trace)
    if args.check:
        count = check_events(events)
        print(f"schema OK: {count} events")
        return 0
    print(
        render_trace(
            events,
            component=args.component,
            kind=args.event,
            limit=args.limit,
        )
    )
    return 0


def _command_surface(args) -> int:
    from repro.analysis import render_surface_ascii, surface_to_csv

    if args.csv:
        count = surface_to_csv(args.csv, resolution=args.resolution)
        print(f"wrote {count} samples of f(a, b) to {args.csv}")
    else:
        print(render_surface_ascii(width=args.width, height=args.height))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Deterministic distributed LLL below the exponential "
        "threshold (Brandt-Maus-Uitto, PODC 2019).",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    info_parser = commands.add_parser(
        "info", help="library and paper summary"
    )
    info_parser.add_argument(
        "--landscape", action="store_true",
        help="also print the complexity-landscape survey",
    )

    def add_instance_arguments(subparser) -> None:
        subparser.add_argument(
            "--family", choices=FAMILIES, default="cycle",
            help="workload family",
        )
        subparser.add_argument("--n", type=int, default=24, help="size")
        subparser.add_argument(
            "--alphabet", type=int, default=3, help="values per variable"
        )
        subparser.add_argument(
            "--degree", type=int, default=4, help="degree (regular family)"
        )
        subparser.add_argument("--seed", type=int, default=0)

    def add_backend_arguments(subparser) -> None:
        subparser.add_argument(
            "--engine", choices=("compiled", "naive"), default=None,
            help="probability engine (default: REPRO_ENGINE, else "
            "compiled)",
        )
        subparser.add_argument(
            "--graph", choices=("vectorized", "reference"), default=None,
            help="graph substrate backend (default: REPRO_GRAPH, else "
            "vectorized)",
        )
        subparser.add_argument(
            "--decide", choices=("vector", "scalar"), default=None,
            help="decide plane: whole-class batch decisions or the "
            "per-op scalar oracle (default: REPRO_DECIDE, else vector)",
        )
        subparser.add_argument(
            "--artifacts", choices=("on", "off"), default=None,
            help="structural-fingerprint artifact cache: reuse "
            "kernels/plans/templates across same-shape instances "
            "(default: REPRO_ARTIFACTS, else on)",
        )
        subparser.add_argument(
            "--ipc", choices=("shm", "pickle"), default=None,
            help="process-scheduler IPC plane: zero-copy shared memory "
            "or the per-chunk pickle oracle (default: REPRO_IPC, else "
            "shm)",
        )

    solve_parser = commands.add_parser(
        "solve", help="solve a generated workload"
    )
    add_instance_arguments(solve_parser)
    add_backend_arguments(solve_parser)
    solve_parser.add_argument(
        "--distributed", action="store_true",
        help="run the scheduled distributed algorithm",
    )
    solve_parser.add_argument(
        "--protocol", action="store_true",
        help="run the message-level LOCAL protocol",
    )
    solve_parser.add_argument(
        "--scheduler", choices=SCHEDULER_NAMES, default=None,
        help="execution-plane backend for the fix plan "
        "(default: plain serial execution)",
    )
    solve_parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker-process count for --scheduler process "
        "(default: the CPU count)",
    )
    solve_parser.add_argument(
        "--obs-trace", metavar="PATH",
        help="record a structured JSONL observability trace to PATH",
    )
    solve_parser.add_argument(
        "--faults", metavar="SPEC",
        help="inject deterministic faults (e.g. "
        "'seed=7,crash=0.3,hang@2,drop=0.05,deadline=1'); worker faults "
        "need --scheduler process, message faults need --protocol",
    )

    plan_parser = commands.add_parser(
        "plan",
        help="print the color-class fix plan of a generated workload",
    )
    add_instance_arguments(plan_parser)
    add_backend_arguments(plan_parser)

    serve_parser = commands.add_parser(
        "serve",
        help="run the persistent HTTP solve service (LLL-as-a-service)",
    )
    add_backend_arguments(serve_parser)
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8787,
        help="bind port (0 picks a free one, announced on stdout)",
    )
    serve_parser.add_argument(
        "--scheduler", choices=SCHEDULER_NAMES, default="process",
        help="execution backend kept warm across requests",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker-process count for --scheduler process "
        "(default: the CPU count)",
    )
    serve_parser.add_argument(
        "--max-inflight", type=int, default=8, metavar="N",
        help="admission bound on queued + running requests "
        "(excess gets a typed 429)",
    )
    serve_parser.add_argument(
        "--deadline", type=float, default=60.0, metavar="SECONDS",
        help="default per-request deadline (requests may name their "
        "own via 'deadline_s')",
    )
    serve_parser.add_argument(
        "--obs-trace", metavar="PATH",
        help="record a structured JSONL observability trace to PATH "
        "(request latency quantiles, cache hit-rate gauges)",
    )

    threshold_parser = commands.add_parser(
        "threshold", help="demonstrate the phase shift"
    )
    threshold_parser.add_argument("--n", type=int, default=24)
    threshold_parser.add_argument("--seed", type=int, default=0)
    threshold_parser.add_argument(
        "--obs-trace", metavar="PATH",
        help="record a structured JSONL observability trace to PATH",
    )

    stats_parser = commands.add_parser(
        "stats", help="summarize a JSONL observability trace"
    )
    stats_parser.add_argument("trace", help="path to a .jsonl trace file")
    stats_parser.add_argument(
        "--no-validate", action="store_true",
        help="skip schema validation before summarizing",
    )
    stats_parser.add_argument(
        "--json", action="store_true",
        help="emit the summary as one machine-readable JSON object",
    )
    stats_parser.add_argument(
        "--follow", action="store_true",
        help="tail a live trace: print snapshots as they arrive, then "
        "the summary when the run ends",
    )
    stats_parser.add_argument(
        "--idle-timeout", type=float, default=None, metavar="SECONDS",
        help="with --follow, stop after this long without new events",
    )

    profile_parser = commands.add_parser(
        "profile",
        help="render the collapsed-stack profile events of a trace "
        "(record them with REPRO_PROFILE=sample|cprofile)",
    )
    profile_parser.add_argument(
        "trace", help="path to a .jsonl trace file"
    )
    profile_parser.add_argument(
        "--component", help="only profile events of this component"
    )
    profile_parser.add_argument(
        "--out", metavar="PATH",
        help="write a flamegraph-ready .folded file instead of a report",
    )
    profile_parser.add_argument(
        "--top", type=int, default=25,
        help="rows per report section (default 25)",
    )

    bench_parser = commands.add_parser(
        "bench", help="benchmark artifact tooling"
    )
    bench_commands = bench_parser.add_subparsers(
        dest="bench_command", required=True
    )
    compare_parser = bench_commands.add_parser(
        "compare",
        help="gate a fresh benchmark run against committed baselines",
    )
    compare_parser.add_argument(
        "--results-dir", required=True,
        help="directory of freshly produced <ID>.json artifacts",
    )
    compare_parser.add_argument(
        "--baseline-dir", default="benchmarks/results",
        help="directory of committed baseline artifacts",
    )
    compare_parser.add_argument(
        "--experiments", nargs="*",
        help="restrict the gate to these experiment ids",
    )
    compare_parser.add_argument(
        "--tolerance", type=float, default=None,
        help="relative tolerance band for speedup/overhead ratios",
    )
    compare_parser.add_argument(
        "--verbose", action="store_true",
        help="also list every passing metric",
    )

    cache_parser = commands.add_parser(
        "cache", help="inspect or clear the artifact cache"
    )
    cache_commands = cache_parser.add_subparsers(
        dest="cache_command", required=True
    )
    cache_commands.add_parser(
        "stats", help="per-tier sizes, hits, misses and evictions"
    )
    cache_commands.add_parser(
        "clear", help="drop every cached artifact and reset counters"
    )

    trace_parser = commands.add_parser(
        "trace", help="list the events of a JSONL observability trace"
    )
    trace_parser.add_argument("trace", help="path to a .jsonl trace file")
    trace_parser.add_argument(
        "--component", help="only events of this component"
    )
    trace_parser.add_argument("--event", help="only events of this kind")
    trace_parser.add_argument(
        "--limit", type=int, help="show only the last N matching events"
    )
    trace_parser.add_argument(
        "--check", action="store_true",
        help="validate the schema and print a verdict instead of events",
    )

    logstar_parser = commands.add_parser(
        "logstar", help="evaluate log*(value)"
    )
    logstar_parser.add_argument("value", type=float)

    report_parser = commands.add_parser(
        "report", help="render the benchmark artifacts as one report"
    )
    report_parser.add_argument(
        "--results-dir", default="benchmarks/results",
        help="directory of <ID>.json artifacts",
    )
    report_parser.add_argument(
        "--experiments", nargs="*",
        help="restrict to these experiment ids",
    )

    surface_parser = commands.add_parser(
        "surface", help="render or export the Figure-1 surface f(a, b)"
    )
    surface_parser.add_argument(
        "--csv", help="write samples to this CSV file instead of rendering"
    )
    surface_parser.add_argument("--resolution", type=int, default=40)
    surface_parser.add_argument("--width", type=int, default=48)
    surface_parser.add_argument("--height", type=int, default=24)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "info": _command_info,
        "solve": _command_solve,
        "plan": _command_plan,
        "serve": _command_serve,
        "threshold": _command_threshold,
        "logstar": _command_logstar,
        "report": _command_report,
        "surface": _command_surface,
        "stats": _command_stats,
        "trace": _command_trace,
        "profile": _command_profile,
        "bench": _command_bench,
        "cache": _command_cache,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream consumer (e.g. `head`) closed the pipe: not an error.
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
