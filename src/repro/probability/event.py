"""Bad events over discrete random variables, with exact conditionals.

A :class:`BadEvent` is a predicate over the values of a finite *scope* of
independent discrete variables.  The central operation is
:meth:`BadEvent.probability`: the exact probability that the event occurs
conditioned on a partial assignment.

Exactness matters: the paper's algorithms compare conditional probability
*ratios* (``Inc`` values) against geometric constraints with equality cases,
so a Monte-Carlo estimate would make the invariant checks meaningless.

Two engines compute the same quantities (see
:mod:`repro.probability.engine`):

* the **naive** enumerator walks the product space of the still-unfixed
  scope variables and calls the predicate per outcome — always available,
  retained as the differential oracle;
* the **compiled** kernel (default) tabulates the predicate once into a
  mixed-radix truth table, after which ``probability`` is a strided sum
  over the pinned table slice and :meth:`conditional_increases` answers
  the ``Inc`` ratios of *all* candidate values of a variable in a single
  table pass.

The public signatures are engine-agnostic; callers outside the hot path
never see the difference.
"""

from __future__ import annotations

import itertools
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.artifacts.fingerprint import event_artifact_key
from repro.artifacts.store import (
    LRUCache,
    STORE as _ARTIFACTS,
    artifacts_enabled,
)
from repro.errors import EnumerationLimitError, InvalidAssignmentError, UnknownVariableError
from repro.probability import engine as _engine
from repro.probability.assignment import PartialAssignment
from repro.probability.engine import EventKernel, checked_mass_sum
from repro.probability.variable import DiscreteVariable

#: Default cap on the number of outcomes enumerated per probability query.
DEFAULT_ENUMERATION_LIMIT = 1 << 22

#: Default cap on memoised conditional probabilities per event.  A long
#: sweep touches each event under many scope restrictions; the cap keeps
#: memory bounded while still covering the working set of a fixing run.
DEFAULT_CACHE_LIMIT = 4096


class _Uncompiled:
    """Sentinel: kernel compilation has not been attempted yet."""

    __slots__ = ()


_UNCOMPILED = _Uncompiled()


class BadEvent:
    """A bad event depending on a finite set of discrete variables.

    Parameters
    ----------
    name:
        Hashable identifier, unique within an LLL instance.  In the
        distributed view this is the node of the dependency graph hosting
        the event.
    variables:
        The scope: every variable the predicate may read.  The dependency
        graph of an instance is derived from scope intersections, so the
        scope should be tight.
    predicate:
        ``predicate(values)`` receives a dict mapping each scope variable's
        name to a value and returns ``True`` iff the *bad* event occurs
        under that outcome.
    enumeration_limit:
        Safety cap on exact enumeration size (see
        :class:`repro.errors.EnumerationLimitError`).
    cache_limit:
        Cap on memoised conditional probabilities; the least recently
        used entry is evicted once the cap is reached.  ``0`` disables
        caching.
    """

    __slots__ = (
        "_name",
        "_variables",
        "_scope_names",
        "_predicate",
        "_enumeration_limit",
        "_cache",
        "_cache_limit",
        "_kernel",
        "_bad_outcomes_hint",
        "_artifact_key",
    )

    def __init__(
        self,
        name: Hashable,
        variables: Sequence[DiscreteVariable],
        predicate: Callable[[Mapping[Hashable, Hashable]], bool],
        enumeration_limit: int = DEFAULT_ENUMERATION_LIMIT,
        cache_limit: int = DEFAULT_CACHE_LIMIT,
    ) -> None:
        self._name = name
        self._variables = tuple(variables)
        self._scope_names = tuple(v.name for v in self._variables)
        if len(set(self._scope_names)) != len(self._scope_names):
            raise UnknownVariableError(
                f"event {name!r} lists a variable twice in its scope"
            )
        self._predicate = predicate
        self._enumeration_limit = int(enumeration_limit)
        self._cache_limit = int(cache_limit)
        self._cache = LRUCache(self._cache_limit)
        self._kernel = _UNCOMPILED
        self._bad_outcomes_hint: Optional[FrozenSet[Tuple[Hashable, ...]]] = None
        # Memoised structural digest (repro.artifacts.fingerprint); the
        # event is immutable once its hint is set, so it never goes stale.
        self._artifact_key: Optional[bytes] = None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> Hashable:
        """The event's identifier."""
        return self._name

    @property
    def variables(self) -> Tuple[DiscreteVariable, ...]:
        """The scope variables, in construction order."""
        return self._variables

    @property
    def scope_names(self) -> Tuple[Hashable, ...]:
        """Names of the scope variables."""
        return self._scope_names

    def depends_on(self, variable_name: Hashable) -> bool:
        """Whether ``variable_name`` is in the event's scope."""
        return variable_name in self._scope_names

    @property
    def bad_outcomes_hint(self) -> Optional[FrozenSet[Tuple[Hashable, ...]]]:
        """The tabulated bad outcomes, when the event carries them.

        Present on events built via :meth:`from_bad_outcomes` /
        :meth:`all_equal` (and everything loaded through
        :mod:`repro.lll.io`); the hint is the complete predicate
        semantics, which is what makes an event — and any instance
        containing it — structurally fingerprintable for the artifact
        cache.  ``None`` for opaque predicate closures.
        """
        return self._bad_outcomes_hint

    # ------------------------------------------------------------------
    # Kernel management
    # ------------------------------------------------------------------
    def _acquire_kernel(self) -> Optional[EventKernel]:
        """The compiled kernel, or ``None`` when unavailable.

        Compilation happens lazily on first use and only when the engine
        mode is ``compiled`` and the full scope product fits under both
        the compile limit and the event's own enumeration limit (so a
        kernel-computable query is always naive-computable too).
        """
        if not _engine.compiled_enabled():
            return None
        kernel = self._kernel
        if kernel is _UNCOMPILED:
            kernel = self._compile_kernel()
            self._kernel = kernel
        return kernel

    def _compile_kernel(self) -> Optional[EventKernel]:
        limit = min(_engine.compile_limit(), self._enumeration_limit)
        size = 1
        for variable in self._variables:
            size *= variable.num_values
            if size > limit:
                return None
        # Cross-instance reuse: an event whose semantics are tabulated
        # (bad-outcomes hint) is content-addressable, and a same-shape
        # instance solved earlier already paid for this exact kernel.
        # Keys include the event *name*, so reuse is across instances,
        # never within one (within-instance dedup already happens at
        # the KernelStack layer, and keeping compile counts per event
        # keeps them deterministic for the perf gate).
        artifact_key = (
            event_artifact_key(self) if artifacts_enabled() else None
        )
        if artifact_key is not None:
            kernel = _ARTIFACTS.get("kernels", artifact_key)
            if kernel is not None:
                _engine.STATS.kernel_reuses += 1
                return kernel
        if self._bad_outcomes_hint is not None:
            kernel = EventKernel.from_outcomes(
                self._variables, self._bad_outcomes_hint
            )
        else:
            kernel = EventKernel.compile(self._variables, self._predicate)
        _engine.STATS.kernel_compiles += 1
        _engine.STATS.kernel_compile_outcomes += kernel.num_outcomes
        from repro.obs.recorder import active as _obs_active

        recorder = _obs_active()
        if recorder is not None:
            recorder.count("engine", "kernel_compiles_live")
            recorder.event(
                "engine",
                "kernel_compile",
                event_name=repr(self._name),
                outcomes=kernel.num_outcomes,
                bad_outcomes=kernel.num_bad,
            )
        if artifact_key is not None:
            _ARTIFACTS.put("kernels", artifact_key, kernel)
        return kernel

    @property
    def kernel_compiled(self) -> bool:
        """Whether a compiled kernel is attached to this event."""
        return isinstance(self._kernel, EventKernel)

    def compiled_kernel(self) -> Optional[EventKernel]:
        """The event's compiled kernel, compiling lazily if possible.

        Returns ``None`` when the engine runs in naive mode or the scope
        product exceeds the compile limit — callers (the batch and
        process schedulers) must fall back to the regular event API.
        """
        return self._acquire_kernel()

    def scope_pins(self, assignment: PartialAssignment) -> Optional[List[int]]:
        """Pinned value indices per scope position (``-1`` = free).

        ``None`` when no kernel is available or a fixed value lies
        outside its variable's support; see :meth:`compiled_kernel`.
        """
        if self._acquire_kernel() is None:
            return None
        return self._pins(assignment)

    def _pins(self, assignment: PartialAssignment) -> Optional[List[int]]:
        """Pinned value indices per scope position (``-1`` = free).

        Returns ``None`` when a fixed value is outside its variable's
        support (possible for assignments built from raw dicts); such
        queries fall back to the naive path, which hands the raw value to
        the predicate exactly as before.
        """
        kernel = self._kernel
        pins: List[int] = []
        for position, name in enumerate(self._scope_names):
            if assignment.is_fixed(name):
                index = kernel.value_index(position, assignment.value_of(name))
                if index is None:
                    return None
                pins.append(index)
            else:
                pins.append(-1)
        return pins

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def occurs(self, assignment: PartialAssignment) -> bool:
        """Evaluate the predicate under a *complete* (for this scope) assignment.

        Raises
        ------
        UnknownVariableError
            If any scope variable is unfixed.
        """
        for name in self._scope_names:
            if not assignment.is_fixed(name):
                raise UnknownVariableError(
                    f"cannot evaluate event {self._name!r}: variable {name!r} "
                    f"is not fixed"
                )
        kernel = self._acquire_kernel()
        if kernel is not None:
            row: List[int] = []
            for position, name in enumerate(self._scope_names):
                index = kernel.value_index(position, assignment.value_of(name))
                if index is None:
                    break
                row.append(index)
            else:
                return kernel.occurs(row)
        values = {
            name: assignment.value_of(name) for name in self._scope_names
        }
        return bool(self._predicate(values))

    def probability(self, assignment: Optional[PartialAssignment] = None) -> float:
        """Exact ``Pr[event | assignment]``.

        Unfixed scope variables are enumerated over their full support;
        fixed scope variables are pinned.  Variables outside the scope are
        ignored (they are independent of the event).
        """
        if assignment is None:
            assignment = _EMPTY_ASSIGNMENT
        key = assignment.restriction_key(self._scope_names)
        cached = self._cache.get(key)
        if cached is not None:
            _engine.STATS.cache_hits += 1
            return cached
        _engine.STATS.cache_misses += 1

        probability = None
        kernel = self._acquire_kernel()
        if kernel is not None:
            pins = self._pins(assignment)
            if pins is not None:
                probability = kernel.probability(
                    pins, f"event {self._name!r}"
                )
        if probability is None:
            probability = self._naive_probability(assignment)
        self._cache_store(key, probability)
        return probability

    def _naive_probability(self, assignment: PartialAssignment) -> float:
        """The enumerating oracle path (also the large-scope fallback)."""
        _engine.STATS.naive_queries += 1
        fixed_values: Dict[Hashable, Hashable] = {}
        free: List[DiscreteVariable] = []
        for variable in self._variables:
            if assignment.is_fixed(variable.name):
                fixed_values[variable.name] = assignment.value_of(variable.name)
            else:
                free.append(variable)
        self._check_enumeration_size(free)
        return self._enumerate(fixed_values, free)

    def _check_enumeration_size(
        self, free: Sequence[DiscreteVariable]
    ) -> int:
        """Validate the full free-scope product *before* any enumeration.

        Raises
        ------
        EnumerationLimitError
            Naming the event's scope so oversized instances fail fast,
            with zero enumeration work done.
        """
        outcome_count = 1
        for variable in free:
            outcome_count *= variable.num_values
        if outcome_count > self._enumeration_limit:
            raise EnumerationLimitError(
                f"event {self._name!r} (scope {self._scope_names!r}): "
                f"enumerating {outcome_count} outcomes over {len(free)} "
                f"free variables exceeds the limit of "
                f"{self._enumeration_limit}"
            )
        return outcome_count

    def _enumerate(
        self,
        fixed_values: Dict[Hashable, Hashable],
        free: Sequence[DiscreteVariable],
    ) -> float:
        """Sum the probability mass of outcomes where the predicate holds."""
        if not free:
            return 1.0 if self._predicate(fixed_values) else 0.0
        supports = [tuple(variable.support_items()) for variable in free]
        names = [variable.name for variable in free]
        terms = []
        values = dict(fixed_values)
        for combo in itertools.product(*supports):
            mass = 1.0
            for name, (value, prob) in zip(names, combo):
                values[name] = value
                mass *= prob
            if self._predicate(values):
                terms.append(mass)
        return checked_mass_sum(terms, f"event {self._name!r}")

    def conditional_increase(
        self,
        assignment: PartialAssignment,
        variable: DiscreteVariable,
        value: Hashable,
    ) -> float:
        """The ``Inc`` ratio of the paper for fixing ``variable = value``.

        Returns ``Pr[event | assignment, variable=value] /
        Pr[event | assignment]``, or ``0.0`` when the denominator is zero
        (matching the convention below Definition 3.8 of the paper).
        Fixing a variable outside the scope returns ``1.0``.
        """
        if not self.depends_on(variable.name):
            return 1.0
        before = self.probability(assignment)
        if before == 0.0:
            return 0.0
        after = self.probability(assignment.fixed(variable, value))
        return after / before

    def conditional_increases(
        self,
        assignment: PartialAssignment,
        variable: DiscreteVariable,
    ) -> Dict[Hashable, float]:
        """Batch ``Inc``: the ratio for *every* support value at once.

        Equivalent to ``{y: conditional_increase(assignment, variable, y)
        for y, _ in variable.support_items()}`` but, under the compiled
        engine, computed in a single table pass instead of one enumeration
        per candidate value.  The per-value conditional probabilities are
        written into the cache, so the follow-up ``probability`` query
        after the fixer commits a value is a cache hit.

        ``variable`` must not be fixed in ``assignment`` (the fixers only
        ever query unfixed variables).
        """
        if not self.depends_on(variable.name):
            return {value: 1.0 for value, _prob in variable.support_items()}
        if assignment.is_fixed(variable.name):
            raise InvalidAssignmentError(
                f"conditional_increases: variable {variable.name!r} is "
                f"already fixed"
            )
        before = self.probability(assignment)
        if before == 0.0:
            return {value: 0.0 for value, _prob in variable.support_items()}

        kernel = self._acquire_kernel()
        if kernel is not None:
            pins = self._pins(assignment)
            if pins is not None:
                target = self._scope_names.index(variable.name)
                afters = kernel.conditional_masses(
                    pins, target, f"event {self._name!r}"
                )
                increases: Dict[Hashable, float] = {}
                for value, _prob in variable.support_items():
                    index = kernel.value_index(target, value)
                    after = afters[index]
                    key = assignment.restriction_key_with(
                        self._scope_names, variable.name, value
                    )
                    if key not in self._cache:
                        self._cache_store(key, after)
                    increases[value] = after / before
                return increases

        _engine.STATS.naive_batch_queries += 1
        return {
            value: self.conditional_increase(assignment, variable, value)
            for value, _prob in variable.support_items()
        }

    # ------------------------------------------------------------------
    # Tabulation
    # ------------------------------------------------------------------
    def bad_outcomes(
        self, limit: Optional[int] = None
    ) -> List[Tuple[Hashable, ...]]:
        """Tabulate the bad outcomes as value tuples in scope order.

        Reuses the compiled truth table when one is available (or
        compilable); otherwise enumerates the predicate over the full
        scope product, capped at ``limit`` (default: the event's
        enumeration limit).  Outcomes are returned in lexicographic
        (mixed-radix code) order, so serialisation round trips are
        byte-stable across engines.
        """
        kernel = self._acquire_kernel()
        if kernel is not None:
            return kernel.bad_value_tuples()
        cap = self._enumeration_limit if limit is None else int(limit)
        outcome_count = 1
        for variable in self._variables:
            outcome_count *= variable.num_values
        if outcome_count > cap:
            raise EnumerationLimitError(
                f"event {self._name!r} (scope {self._scope_names!r}): "
                f"tabulating {outcome_count} outcomes exceeds the limit "
                f"{cap}"
            )
        outcomes: List[Tuple[Hashable, ...]] = []
        values: Dict[Hashable, Hashable] = {}
        for combo in itertools.product(
            *(variable.values for variable in self._variables)
        ):
            for name, value in zip(self._scope_names, combo):
                values[name] = value
            if self._predicate(values):
                outcomes.append(combo)
        return outcomes

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def _cache_store(
        self, key: Tuple[Tuple[Hashable, Hashable], ...], value: float
    ) -> None:
        if self._cache.put(key, value) is not None:
            _engine.STATS.cache_evictions += 1

    def clear_cache(self) -> None:
        """Drop all memoised conditional probabilities."""
        self._cache.clear()

    @property
    def cache_size(self) -> int:
        """Number of memoised conditional probabilities."""
        return len(self._cache)

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss/eviction counts and current size/limit of the cache."""
        cache = self._cache
        return {
            "hits": cache.hits,
            "misses": cache.misses,
            "evictions": cache.evictions,
            "size": len(cache),
            "limit": self._cache_limit,
        }

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    @classmethod
    def from_bad_outcomes(
        cls,
        name: Hashable,
        variables: Sequence[DiscreteVariable],
        bad_outcomes: Iterable[Tuple[Hashable, ...]],
        enumeration_limit: int = DEFAULT_ENUMERATION_LIMIT,
    ) -> "BadEvent":
        """Build an event from an explicit list of bad outcome tuples.

        Each tuple lists one value per scope variable, aligned with
        ``variables``.  The outcome set doubles as a precomputed truth
        table: the compiled engine builds the kernel directly from it,
        without re-enumerating the scope product.
        """
        order = tuple(v.name for v in variables)
        bad = frozenset(tuple(outcome) for outcome in bad_outcomes)

        def predicate(values: Mapping[Hashable, Hashable]) -> bool:
            return tuple(values[n] for n in order) in bad

        event = cls(name, variables, predicate, enumeration_limit)
        event._bad_outcomes_hint = bad
        return event

    @classmethod
    def all_equal(
        cls,
        name: Hashable,
        variables: Sequence[DiscreteVariable],
        target: Hashable,
        enumeration_limit: int = DEFAULT_ENUMERATION_LIMIT,
    ) -> "BadEvent":
        """The event "every scope variable equals ``target``".

        This is the shape of sinkless-orientation-style events: a node is
        bad iff every incident edge variable points at it.
        """
        order = tuple(v.name for v in variables)

        def predicate(values: Mapping[Hashable, Hashable]) -> bool:
            return all(values[n] == target for n in order)

        event = cls(name, variables, predicate, enumeration_limit)
        if all(target in variable for variable in variables):
            event._bad_outcomes_hint = frozenset(
                {tuple(target for _ in variables)}
            )
        else:
            event._bad_outcomes_hint = frozenset()
        return event

    def __repr__(self) -> str:
        return f"BadEvent(name={self._name!r}, scope={self._scope_names!r})"


_EMPTY_ASSIGNMENT = PartialAssignment()
