"""Bad events over discrete random variables, with exact conditionals.

A :class:`BadEvent` is a predicate over the values of a finite *scope* of
independent discrete variables.  The central operation is
:meth:`BadEvent.probability`: the exact probability that the event occurs
conditioned on a partial assignment, computed by enumerating the product
space of the still-unfixed scope variables.

Exactness matters: the paper's algorithms compare conditional probability
*ratios* (``Inc`` values) against geometric constraints with equality cases,
so a Monte-Carlo estimate would make the invariant checks meaningless.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Dict, Hashable, Iterable, Mapping, Optional, Sequence, Tuple

from repro.errors import EnumerationLimitError, UnknownVariableError
from repro.probability.assignment import PartialAssignment
from repro.probability.variable import DiscreteVariable

#: Default cap on the number of outcomes enumerated per probability query.
DEFAULT_ENUMERATION_LIMIT = 1 << 22


class BadEvent:
    """A bad event depending on a finite set of discrete variables.

    Parameters
    ----------
    name:
        Hashable identifier, unique within an LLL instance.  In the
        distributed view this is the node of the dependency graph hosting
        the event.
    variables:
        The scope: every variable the predicate may read.  The dependency
        graph of an instance is derived from scope intersections, so the
        scope should be tight.
    predicate:
        ``predicate(values)`` receives a dict mapping each scope variable's
        name to a value and returns ``True`` iff the *bad* event occurs
        under that outcome.
    enumeration_limit:
        Safety cap on exact enumeration size (see
        :class:`repro.errors.EnumerationLimitError`).
    """

    __slots__ = (
        "_name",
        "_variables",
        "_scope_names",
        "_predicate",
        "_enumeration_limit",
        "_cache",
    )

    def __init__(
        self,
        name: Hashable,
        variables: Sequence[DiscreteVariable],
        predicate: Callable[[Mapping[Hashable, Hashable]], bool],
        enumeration_limit: int = DEFAULT_ENUMERATION_LIMIT,
    ) -> None:
        self._name = name
        self._variables = tuple(variables)
        self._scope_names = tuple(v.name for v in self._variables)
        if len(set(self._scope_names)) != len(self._scope_names):
            raise UnknownVariableError(
                f"event {name!r} lists a variable twice in its scope"
            )
        self._predicate = predicate
        self._enumeration_limit = int(enumeration_limit)
        self._cache: Dict[Tuple[Tuple[Hashable, Hashable], ...], float] = {}

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> Hashable:
        """The event's identifier."""
        return self._name

    @property
    def variables(self) -> Tuple[DiscreteVariable, ...]:
        """The scope variables, in construction order."""
        return self._variables

    @property
    def scope_names(self) -> Tuple[Hashable, ...]:
        """Names of the scope variables."""
        return self._scope_names

    def depends_on(self, variable_name: Hashable) -> bool:
        """Whether ``variable_name`` is in the event's scope."""
        return variable_name in self._scope_names

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def occurs(self, assignment: PartialAssignment) -> bool:
        """Evaluate the predicate under a *complete* (for this scope) assignment.

        Raises
        ------
        UnknownVariableError
            If any scope variable is unfixed.
        """
        values = {}
        for name in self._scope_names:
            if not assignment.is_fixed(name):
                raise UnknownVariableError(
                    f"cannot evaluate event {self._name!r}: variable {name!r} "
                    f"is not fixed"
                )
            values[name] = assignment.value_of(name)
        return bool(self._predicate(values))

    def probability(self, assignment: Optional[PartialAssignment] = None) -> float:
        """Exact ``Pr[event | assignment]``.

        Unfixed scope variables are enumerated over their full support;
        fixed scope variables are pinned.  Variables outside the scope are
        ignored (they are independent of the event).
        """
        if assignment is None:
            assignment = _EMPTY_ASSIGNMENT
        key = assignment.restriction_key(self._scope_names)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        fixed_values: Dict[Hashable, Hashable] = {}
        free: list = []
        for variable in self._variables:
            if assignment.is_fixed(variable.name):
                fixed_values[variable.name] = assignment.value_of(variable.name)
            else:
                free.append(variable)

        outcome_count = 1
        for variable in free:
            outcome_count *= variable.num_values
            if outcome_count > self._enumeration_limit:
                raise EnumerationLimitError(
                    f"event {self._name!r}: enumerating {len(free)} free "
                    f"variables exceeds the limit of "
                    f"{self._enumeration_limit} outcomes"
                )

        probability = self._enumerate(fixed_values, free)
        self._cache[key] = probability
        return probability

    def _enumerate(
        self,
        fixed_values: Dict[Hashable, Hashable],
        free: Sequence[DiscreteVariable],
    ) -> float:
        """Sum the probability mass of outcomes where the predicate holds."""
        if not free:
            return 1.0 if self._predicate(fixed_values) else 0.0
        supports = [tuple(variable.support_items()) for variable in free]
        names = [variable.name for variable in free]
        terms = []
        values = dict(fixed_values)
        for combo in itertools.product(*supports):
            mass = 1.0
            for name, (value, prob) in zip(names, combo):
                values[name] = value
                mass *= prob
            if self._predicate(values):
                terms.append(mass)
        return min(1.0, math.fsum(terms))

    def conditional_increase(
        self,
        assignment: PartialAssignment,
        variable: DiscreteVariable,
        value: Hashable,
    ) -> float:
        """The ``Inc`` ratio of the paper for fixing ``variable = value``.

        Returns ``Pr[event | assignment, variable=value] /
        Pr[event | assignment]``, or ``0.0`` when the denominator is zero
        (matching the convention below Definition 3.8 of the paper).
        Fixing a variable outside the scope returns ``1.0``.
        """
        if not self.depends_on(variable.name):
            return 1.0
        before = self.probability(assignment)
        if before == 0.0:
            return 0.0
        after = self.probability(assignment.fixed(variable, value))
        return after / before

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def clear_cache(self) -> None:
        """Drop all memoised conditional probabilities."""
        self._cache.clear()

    @property
    def cache_size(self) -> int:
        """Number of memoised conditional probabilities."""
        return len(self._cache)

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    @classmethod
    def from_bad_outcomes(
        cls,
        name: Hashable,
        variables: Sequence[DiscreteVariable],
        bad_outcomes: Iterable[Tuple[Hashable, ...]],
        enumeration_limit: int = DEFAULT_ENUMERATION_LIMIT,
    ) -> "BadEvent":
        """Build an event from an explicit list of bad outcome tuples.

        Each tuple lists one value per scope variable, aligned with
        ``variables``.
        """
        order = tuple(v.name for v in variables)
        bad = frozenset(tuple(outcome) for outcome in bad_outcomes)

        def predicate(values: Mapping[Hashable, Hashable]) -> bool:
            return tuple(values[n] for n in order) in bad

        return cls(name, variables, predicate, enumeration_limit)

    @classmethod
    def all_equal(
        cls,
        name: Hashable,
        variables: Sequence[DiscreteVariable],
        target: Hashable,
        enumeration_limit: int = DEFAULT_ENUMERATION_LIMIT,
    ) -> "BadEvent":
        """The event "every scope variable equals ``target``".

        This is the shape of sinkless-orientation-style events: a node is
        bad iff every incident edge variable points at it.
        """
        order = tuple(v.name for v in variables)

        def predicate(values: Mapping[Hashable, Hashable]) -> bool:
            return all(values[n] == target for n in order)

        return cls(name, variables, predicate, enumeration_limit)

    def __repr__(self) -> str:
        return f"BadEvent(name={self._name!r}, scope={self._scope_names!r})"


_EMPTY_ASSIGNMENT = PartialAssignment()
