"""Exact discrete probability engine (substrate S1).

Independent finite random variables (:class:`DiscreteVariable`), partial
assignments (:class:`PartialAssignment`), bad events with exact conditional
probabilities (:class:`BadEvent`), whole-space operations
(:class:`ProductSpace`), and the table-driven compiled kernel engine
(:mod:`repro.probability.engine`, selected via ``REPRO_ENGINE``).
"""

from repro.probability.assignment import PartialAssignment
from repro.probability.engine import (
    EventKernel,
    engine_mode,
    reset_stats as reset_engine_stats,
    set_engine_mode,
    stats as engine_stats,
    using_engine,
)
from repro.probability.event import (
    BadEvent,
    DEFAULT_CACHE_LIMIT,
    DEFAULT_ENUMERATION_LIMIT,
)
from repro.probability.space import DEFAULT_SPACE_LIMIT, ProductSpace
from repro.probability.variable import DiscreteVariable

__all__ = [
    "BadEvent",
    "DiscreteVariable",
    "EventKernel",
    "PartialAssignment",
    "ProductSpace",
    "DEFAULT_CACHE_LIMIT",
    "DEFAULT_ENUMERATION_LIMIT",
    "DEFAULT_SPACE_LIMIT",
    "engine_mode",
    "engine_stats",
    "reset_engine_stats",
    "set_engine_mode",
    "using_engine",
]
