"""Exact discrete probability engine (substrate S1).

Independent finite random variables (:class:`DiscreteVariable`), partial
assignments (:class:`PartialAssignment`), bad events with exact conditional
probabilities (:class:`BadEvent`), and whole-space operations
(:class:`ProductSpace`).
"""

from repro.probability.assignment import PartialAssignment
from repro.probability.event import BadEvent, DEFAULT_ENUMERATION_LIMIT
from repro.probability.space import DEFAULT_SPACE_LIMIT, ProductSpace
from repro.probability.variable import DiscreteVariable

__all__ = [
    "BadEvent",
    "DiscreteVariable",
    "PartialAssignment",
    "ProductSpace",
    "DEFAULT_ENUMERATION_LIMIT",
    "DEFAULT_SPACE_LIMIT",
]
