"""Product probability spaces over independent discrete variables.

:class:`ProductSpace` groups the variables of an instance and offers
whole-space operations: enumeration, sampling, expectations, and exact
probabilities of joint predicates.  The per-event conditionals used by the
fixing algorithms live on :class:`repro.probability.BadEvent`; the space is
mainly used by tests, baselines and the exhaustive-search oracle.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Dict, Hashable, Iterable, Iterator, Optional, Sequence, Tuple

from repro.errors import EnumerationLimitError, UnknownVariableError
from repro.probability.assignment import PartialAssignment
from repro.probability.engine import checked_mass_sum
from repro.probability.variable import DiscreteVariable

#: Default cap on whole-space enumeration size.
DEFAULT_SPACE_LIMIT = 1 << 24


class ProductSpace:
    """The product space of a finite family of independent variables."""

    __slots__ = ("_variables", "_by_name", "_limit")

    def __init__(
        self,
        variables: Sequence[DiscreteVariable],
        enumeration_limit: int = DEFAULT_SPACE_LIMIT,
    ) -> None:
        self._variables = tuple(variables)
        self._by_name: Dict[Hashable, DiscreteVariable] = {}
        for variable in self._variables:
            if variable.name in self._by_name:
                raise UnknownVariableError(
                    f"duplicate variable name {variable.name!r} in product space"
                )
            self._by_name[variable.name] = variable
        self._limit = int(enumeration_limit)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def variables(self) -> Tuple[DiscreteVariable, ...]:
        """The variables spanning the space."""
        return self._variables

    def variable(self, name: Hashable) -> DiscreteVariable:
        """Look up a variable by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownVariableError(f"no variable named {name!r}") from None

    def __len__(self) -> int:
        return len(self._variables)

    def __contains__(self, name: Hashable) -> bool:
        return name in self._by_name

    @property
    def num_outcomes(self) -> int:
        """Total number of outcomes in the product space."""
        count = 1
        for variable in self._variables:
            count *= variable.num_values
        return count

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def enumerate_assignments(
        self, given: Optional[PartialAssignment] = None
    ) -> Iterator[Tuple[PartialAssignment, float]]:
        """Yield ``(assignment, probability)`` for every completion of ``given``.

        The probability is the joint mass of the enumerated (free) part;
        fixed variables contribute no factor, matching conditioning on them.
        """
        free = [
            v
            for v in self._variables
            if given is None or not given.is_fixed(v.name)
        ]
        count = 1
        for variable in free:
            count *= variable.num_values
            if count > self._limit:
                raise EnumerationLimitError(
                    f"enumerating {len(free)} variables exceeds the limit "
                    f"of {self._limit} outcomes"
                )
        base = given.copy() if given is not None else PartialAssignment()
        supports = [tuple(v.support_items()) for v in free]
        for combo in itertools.product(*supports):
            assignment = base.copy()
            mass = 1.0
            for variable, (value, prob) in zip(free, combo):
                assignment.fix(variable, value)
                mass *= prob
            yield assignment, mass

    def probability(
        self,
        predicate: Callable[[PartialAssignment], bool],
        given: Optional[PartialAssignment] = None,
    ) -> float:
        """Exact probability that ``predicate`` holds, given a partial fix."""
        terms = [
            mass
            for assignment, mass in self.enumerate_assignments(given)
            if predicate(assignment)
        ]
        return checked_mass_sum(terms, "ProductSpace.probability")

    def expectation(
        self,
        function: Callable[[PartialAssignment], float],
        given: Optional[PartialAssignment] = None,
    ) -> float:
        """Exact expectation of ``function`` over completions of ``given``."""
        return math.fsum(
            mass * function(assignment)
            for assignment, mass in self.enumerate_assignments(given)
        )

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(
        self, rng, given: Optional[PartialAssignment] = None
    ) -> PartialAssignment:
        """Sample a full assignment; fixed variables of ``given`` are kept."""
        assignment = given.copy() if given is not None else PartialAssignment()
        for variable in self._variables:
            if not assignment.is_fixed(variable.name):
                assignment.fix(variable, variable.sample(rng))
        return assignment

    def resample(
        self,
        rng,
        assignment: PartialAssignment,
        names: Iterable[Hashable],
    ) -> PartialAssignment:
        """Return a copy of ``assignment`` with ``names`` freshly resampled.

        This is the elementary step of the Moser-Tardos framework.  The
        variables are resampled in the space's construction order (not
        the order of ``names``) so that runs are reproducible even when
        ``names`` is a set — Python's string hashing varies per process,
        and consuming the RNG in set order would leak that into results.
        """
        selected = set(names)
        unknown = [name for name in selected if name not in self._by_name]
        if unknown:
            raise UnknownVariableError(
                f"cannot resample unknown variables {unknown[:3]!r}"
            )
        fresh = assignment.as_dict()
        for variable in self._variables:
            if variable.name in selected:
                fresh[variable.name] = variable.sample(rng)
        return PartialAssignment(fresh)

    def __repr__(self) -> str:
        return f"ProductSpace({len(self._variables)} variables)"
