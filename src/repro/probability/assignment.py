"""Partial assignments of values to discrete random variables.

A :class:`PartialAssignment` records which variables have been fixed and to
what value.  The deterministic fixers of the paper build one incrementally:
a variable, once fixed, is never revisited.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Mapping, Optional, Tuple

from repro.errors import InvalidAssignmentError
from repro.probability.variable import DiscreteVariable


class PartialAssignment:
    """A mapping from variable names to fixed values.

    The class is a thin, mostly-immutable wrapper around a ``dict``.  The
    mutating entry point is :meth:`fix`, which returns ``self`` to allow
    chaining; :meth:`fixed` produces an independent copy extended by one
    binding, which the fixers use to evaluate hypothetical choices without
    disturbing the committed state.
    """

    __slots__ = ("_values",)

    def __init__(self, values: Optional[Mapping[Hashable, Hashable]] = None) -> None:
        self._values: Dict[Hashable, Hashable] = dict(values) if values else {}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_fixed(self, name: Hashable) -> bool:
        """Whether the named variable has been assigned a value."""
        return name in self._values

    def value_of(self, name: Hashable) -> Hashable:
        """The value assigned to ``name``.

        Raises
        ------
        InvalidAssignmentError
            If the variable has not been fixed.
        """
        try:
            return self._values[name]
        except KeyError:
            raise InvalidAssignmentError(
                f"variable {name!r} has not been fixed"
            ) from None

    def get(self, name: Hashable, default: Hashable = None) -> Hashable:
        """The value assigned to ``name``, or ``default``."""
        return self._values.get(name, default)

    def __contains__(self, name: Hashable) -> bool:
        return name in self._values

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._values)

    def items(self) -> Iterable[Tuple[Hashable, Hashable]]:
        """Iterate over ``(name, value)`` bindings."""
        return self._values.items()

    def as_dict(self) -> Dict[Hashable, Hashable]:
        """A copy of the bindings as a plain dictionary."""
        return dict(self._values)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def fix(self, variable: DiscreteVariable, value: Hashable) -> "PartialAssignment":
        """Bind ``variable`` to ``value`` in place and return ``self``.

        Raises
        ------
        InvalidAssignmentError
            If the value is outside the variable's support, or the
            variable was already fixed to a *different* value.
        """
        if value not in variable:
            raise InvalidAssignmentError(
                f"value {value!r} is not in the support of {variable.name!r}"
            )
        existing = self._values.get(variable.name, _UNSET)
        if existing is not _UNSET and existing != value:
            raise InvalidAssignmentError(
                f"variable {variable.name!r} already fixed to {existing!r}; "
                f"cannot re-fix to {value!r}"
            )
        self._values[variable.name] = value
        return self

    def fixed(self, variable: DiscreteVariable, value: Hashable) -> "PartialAssignment":
        """Return a *copy* of this assignment with one extra binding."""
        copy = PartialAssignment(self._values)
        return copy.fix(variable, value)

    def copy(self) -> "PartialAssignment":
        """An independent copy of this assignment."""
        return PartialAssignment(self._values)

    # ------------------------------------------------------------------
    # Cache keys
    # ------------------------------------------------------------------
    def restriction_key(
        self, scope_names: Iterable[Hashable]
    ) -> Tuple[Tuple[Hashable, Hashable], ...]:
        """A hashable key identifying this assignment restricted to a scope.

        Two assignments that agree on every fixed variable of ``scope_names``
        produce equal keys; events use this to cache conditional
        probabilities, which only depend on the scope restriction.
        """
        pairs = [
            (name, self._values[name]) for name in scope_names if name in self._values
        ]
        pairs.sort(key=lambda pair: repr(pair[0]))
        return tuple(pairs)

    def restriction_key_with(
        self,
        scope_names: Iterable[Hashable],
        extra_name: Hashable,
        extra_value: Hashable,
    ) -> Tuple[Tuple[Hashable, Hashable], ...]:
        """The :meth:`restriction_key` of ``self`` plus one extra binding.

        Equivalent to ``self.fixed(var, value).restriction_key(scope)``
        but without copying the assignment; the batch ``Inc`` query uses
        it to pre-populate an event's probability cache with every
        hypothetical one-value extension it just computed.
        """
        pairs = [
            (name, self._values[name]) for name in scope_names if name in self._values
        ]
        pairs.append((extra_name, extra_value))
        pairs.sort(key=lambda pair: repr(pair[0]))
        return tuple(pairs)

    def __repr__(self) -> str:
        return f"PartialAssignment({self._values!r})"


class _Unset:
    """Sentinel distinguishing 'not fixed' from 'fixed to None'."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unset>"


_UNSET = _Unset()
