"""Discrete random variables with finite support.

The paper's probability spaces are spanned by finitely many independent
discrete random variables.  :class:`DiscreteVariable` is the immutable
building block: a name, a finite tuple of values, and a probability for
each value.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, Optional, Sequence, Tuple

from repro.errors import InvalidAssignmentError, InvalidDistributionError

#: Probabilities are accepted as a distribution if they sum to 1 up to this.
_SUM_TOLERANCE = 1e-9


class DiscreteVariable:
    """An independent random variable with a finite discrete distribution.

    Instances are immutable and hashable by :attr:`name`, so they can be
    used as dictionary keys and set members.  Two variables with the same
    name are considered the same variable; constructing two *different*
    distributions under the same name within one instance is a modelling
    error that :class:`repro.lll.LLLInstance` rejects.

    Parameters
    ----------
    name:
        Hashable identifier, unique within an LLL instance.
    values:
        The support of the variable.  Values may be any hashable objects.
    probabilities:
        One probability per value.  Must be non-negative and sum to one.
        If omitted, the distribution is uniform.
    """

    __slots__ = ("_name", "_values", "_probabilities", "_index")

    def __init__(
        self,
        name: Hashable,
        values: Sequence[Hashable],
        probabilities: Optional[Sequence[float]] = None,
    ) -> None:
        values = tuple(values)
        if not values:
            raise InvalidDistributionError(
                f"variable {name!r} must have at least one value"
            )
        if len(set(values)) != len(values):
            raise InvalidDistributionError(
                f"variable {name!r} has duplicate values: {values!r}"
            )
        if probabilities is None:
            probabilities = tuple(1.0 / len(values) for _ in values)
        else:
            probabilities = tuple(float(p) for p in probabilities)
        if len(probabilities) != len(values):
            raise InvalidDistributionError(
                f"variable {name!r}: {len(values)} values but "
                f"{len(probabilities)} probabilities"
            )
        if any(p < 0.0 for p in probabilities):
            raise InvalidDistributionError(
                f"variable {name!r} has negative probabilities"
            )
        total = math.fsum(probabilities)
        if abs(total - 1.0) > _SUM_TOLERANCE:
            raise InvalidDistributionError(
                f"variable {name!r}: probabilities sum to {total}, expected 1"
            )
        self._name = name
        self._values = values
        self._probabilities = probabilities
        self._index = {value: i for i, value in enumerate(values)}

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> Hashable:
        """The variable's identifier."""
        return self._name

    @property
    def values(self) -> Tuple[Hashable, ...]:
        """The support of the variable, in construction order."""
        return self._values

    @property
    def probabilities(self) -> Tuple[float, ...]:
        """The probability of each value, aligned with :attr:`values`."""
        return self._probabilities

    @property
    def num_values(self) -> int:
        """Size of the support."""
        return len(self._values)

    def probability_of(self, value: Hashable) -> float:
        """Return ``Pr[X = value]``.

        Raises
        ------
        InvalidAssignmentError
            If ``value`` is not in the support.
        """
        index = self._index.get(value)
        if index is None:
            raise InvalidAssignmentError(
                f"value {value!r} is not in the support of variable "
                f"{self._name!r}"
            )
        return self._probabilities[index]

    def __contains__(self, value: Hashable) -> bool:
        return value in self._index

    def index_of(self, value: Hashable) -> Optional[int]:
        """Position of ``value`` in :attr:`values`, or ``None`` if absent.

        The compiled probability engine uses value indices as mixed-radix
        digits; a ``None`` signals an out-of-support value that must take
        the uncompiled path.
        """
        return self._index.get(value)

    def support_items(self) -> Iterable[Tuple[Hashable, float]]:
        """Yield ``(value, probability)`` pairs with positive probability."""
        for value, prob in zip(self._values, self._probabilities):
            if prob > 0.0:
                yield value, prob

    @property
    def is_uniform(self) -> bool:
        """Whether every value has the same probability."""
        first = self._probabilities[0]
        return all(abs(p - first) <= _SUM_TOLERANCE for p in self._probabilities)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, rng) -> Hashable:
        """Draw one value using ``rng`` (a :class:`random.Random`)."""
        point = rng.random()
        cumulative = 0.0
        for value, prob in zip(self._values, self._probabilities):
            cumulative += prob
            if point < cumulative:
                return value
        # Floating point slack: fall back to the last positive-probability
        # value so sampling never fails.
        for value, prob in reversed(tuple(zip(self._values, self._probabilities))):
            if prob > 0.0:
                return value
        return self._values[-1]

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, name: Hashable, values: Sequence[Hashable]) -> "DiscreteVariable":
        """A uniformly distributed variable over ``values``."""
        return cls(name, values)

    @classmethod
    def fair_coin(cls, name: Hashable) -> "DiscreteVariable":
        """A uniform variable over ``(0, 1)``."""
        return cls(name, (0, 1))

    @classmethod
    def bernoulli(cls, name: Hashable, p_one: float) -> "DiscreteVariable":
        """A ``{0, 1}`` variable with ``Pr[X = 1] = p_one``."""
        return cls(name, (0, 1), (1.0 - p_one, p_one))

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def __hash__(self) -> int:
        return hash(self._name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiscreteVariable):
            return NotImplemented
        return (
            self._name == other._name
            and self._values == other._values
            and self._probabilities == other._probabilities
        )

    def __repr__(self) -> str:
        return (
            f"DiscreteVariable(name={self._name!r}, "
            f"values={self._values!r}, probabilities={self._probabilities!r})"
        )
