"""Compiled event kernels: the table-driven exact-probability engine.

The naive substrate re-enumerates an event's predicate over the Cartesian
product of its free supports on *every* probability query.  This module
compiles each predicate **once** into a tabulated kernel indexed by
mixed-radix outcome codes:

* each scope variable gets a *stride* (the mixed-radix place value of its
  position) and a *weight vector* (its probability tuple);
* the full outcome table is enumerated a single time, and the outcomes
  where the predicate holds are kept as rows of value indices (plus their
  codes, for O(1) ``occurs`` membership);
* ``probability(assignment)`` becomes a strided sum over the table rows
  consistent with the pins of the fixed scope variables — no predicate
  calls, no per-outcome dict building;
* ``conditional_increases`` computes the ``Inc`` ratios of Definition 3.8
  for *every* candidate value of a variable in one table pass, by
  bucketing row masses on the target variable's index.

Numerical contract: the kernel multiplies the same probability floats in
the same (scope-position) order as the naive enumerator and sums with
``math.fsum``, so the two engines agree bit-for-bit wherever both are
defined — the differential Hypothesis suite in
``tests/test_probability_engine.py`` holds them to 1e-12.

The engine is selected process-wide via the ``REPRO_ENGINE`` environment
variable (``compiled`` by default; ``naive`` retains the enumerating path
as a differential oracle) and can be toggled at runtime with
:func:`set_engine_mode` / :class:`using_engine`.  Events whose full scope
product exceeds :func:`compile_limit` are never compiled and always take
the naive path, so oversized scopes keep their existing
:class:`~repro.errors.EnumerationLimitError` behaviour.
"""

from __future__ import annotations

import math
import os
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ProbabilityMassError

#: Probability mass above ``1 + tolerance`` indicates a support/weight bug.
PROBABILITY_MASS_TOLERANCE = 1e-9

#: Default cap on the full-scope outcome count a kernel may tabulate.
DEFAULT_COMPILE_LIMIT = 1 << 16

#: Environment variable selecting the engine ("naive" or "compiled").
ENGINE_ENV = "REPRO_ENGINE"

#: Environment variable overriding the kernel compile limit.
COMPILE_LIMIT_ENV = "REPRO_ENGINE_COMPILE_LIMIT"

_VALID_MODES = ("naive", "compiled")


def _mode_from_env() -> str:
    mode = os.environ.get(ENGINE_ENV, "compiled").strip().lower()
    if mode not in _VALID_MODES:
        raise ConfigurationError(
            f"{ENGINE_ENV}={mode!r} is not a valid engine mode; "
            f"expected one of {_VALID_MODES}"
        )
    return mode


def _compile_limit_from_env() -> int:
    raw = os.environ.get(COMPILE_LIMIT_ENV)
    if raw is None:
        return DEFAULT_COMPILE_LIMIT
    try:
        limit = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{COMPILE_LIMIT_ENV}={raw!r} is not an integer"
        ) from None
    if limit < 1:
        raise ConfigurationError(
            f"{COMPILE_LIMIT_ENV} must be positive, got {limit}"
        )
    return limit


# Environment values are validated lazily, on first use: raising at
# import time would crash ``import repro`` itself with a raw traceback
# before any CLI error handling can catch the ReproError.
_MODE: Optional[str] = None
_COMPILE_LIMIT: Optional[int] = None


def engine_mode() -> str:
    """The active engine mode: ``"naive"`` or ``"compiled"``."""
    global _MODE
    if _MODE is None:
        _MODE = _mode_from_env()
    return _MODE


def compiled_enabled() -> bool:
    """Whether the compiled kernel path is active."""
    return engine_mode() == "compiled"


def compile_limit() -> int:
    """Maximum full-scope outcome count a kernel may tabulate."""
    global _COMPILE_LIMIT
    if _COMPILE_LIMIT is None:
        _COMPILE_LIMIT = _compile_limit_from_env()
    return _COMPILE_LIMIT


def set_engine_mode(mode: str) -> str:
    """Select the engine process-wide; returns the previous mode."""
    global _MODE
    if mode not in _VALID_MODES:
        raise ConfigurationError(
            f"invalid engine mode {mode!r}; expected one of {_VALID_MODES}"
        )
    previous = engine_mode()
    _MODE = mode
    return previous


class using_engine:
    """Context manager: run the body under a specific engine mode.

    The differential oracle pattern used by the parity tests and the
    engine benchmark::

        with using_engine("naive"):
            reference = solve(instance_a)
        with using_engine("compiled"):
            candidate = solve(instance_b)
    """

    def __init__(self, mode: str) -> None:
        self._mode = mode
        self._previous: Optional[str] = None

    def __enter__(self) -> str:
        self._previous = set_engine_mode(self._mode)
        return self._mode

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._previous is not None:
            set_engine_mode(self._previous)


# ----------------------------------------------------------------------
# Engine statistics (aggregated across all events; see repro.obs)
# ----------------------------------------------------------------------
_STAT_NAMES = (
    "kernel_compiles",
    "kernel_reuses",
    "kernel_compile_outcomes",
    "kernel_queries",
    "kernel_batch_queries",
    "kernel_occurs_queries",
    "naive_queries",
    "naive_batch_queries",
    "vector_queries",
    "vector_passes",
    "vector_fallbacks",
    "vector_memo_hits",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
)


class EngineStats:
    """Plain-integer counters; incremented inline on the hot path."""

    __slots__ = _STAT_NAMES

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for name in _STAT_NAMES:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in _STAT_NAMES}


#: The process-wide counters every event increments.
STATS = EngineStats()

#: Snapshot of the last values pushed to a recorder, per stat name.
_PUBLISHED: Dict[str, int] = {name: 0 for name in _STAT_NAMES}


def reset_stats() -> None:
    """Zero the engine counters (and the published snapshot)."""
    STATS.reset()
    for name in _STAT_NAMES:
        _PUBLISHED[name] = 0


def stats() -> Dict[str, int]:
    """Current values of all engine counters."""
    return STATS.as_dict()


def publish_stats(recorder) -> Dict[str, int]:
    """Push counter *deltas* since the last publish into ``recorder``.

    Counters on a :class:`repro.obs.Recorder` are monotonic, so repeated
    publishes must only add what accrued in between.  Returns the deltas.
    """
    deltas: Dict[str, int] = {}
    for name in _STAT_NAMES:
        value = getattr(STATS, name)
        delta = value - _PUBLISHED[name]
        if delta > 0:
            recorder.count("engine", name, delta)
            _PUBLISHED[name] = value
            deltas[name] = delta
    return deltas


# ----------------------------------------------------------------------
# Mass checking (satellite: no silent clamping)
# ----------------------------------------------------------------------
def checked_mass_sum(terms: Iterable[float], context: str) -> float:
    """``fsum`` the probability terms, rejecting mass beyond ``1 + eps``.

    A total above ``1 + PROBABILITY_MASS_TOLERANCE`` cannot arise from
    valid distributions; it indicates a support/weight bug, so it raises
    :class:`~repro.errors.ProbabilityMassError` instead of being clamped
    silently.  Float dust within tolerance is still clamped to 1.0 so the
    invariant checks downstream can rely on probabilities ``<= 1``.
    """
    total = math.fsum(terms)
    if total > 1.0 + PROBABILITY_MASS_TOLERANCE:
        raise ProbabilityMassError(
            f"{context}: probability mass sums to {total!r} > 1; "
            f"the supports or weights are inconsistent"
        )
    return min(total, 1.0)


# ----------------------------------------------------------------------
# The compiled kernel
# ----------------------------------------------------------------------
#: Intern table mapping kernel structures to small fingerprint ids.
_FINGERPRINTS: Dict[Tuple, int] = {}


class EventKernel:
    """A predicate compiled into a mixed-radix outcome table.

    Rows are the *bad* outcomes, stored as tuples of per-variable value
    indices (scope order); ``codes`` are their mixed-radix encodings
    ``sum(index[i] * stride[i])`` for O(1) ``occurs`` membership.

    Queries take *pins*: a list with one entry per scope position, the
    pinned value index for fixed variables and ``-1`` for free ones.
    """

    __slots__ = (
        "_values",
        "_probs",
        "_index_maps",
        "_num_values",
        "_strides",
        "_rows",
        "_codes",
        "_fingerprint",
        "_batch_arrays",
        "_support_maps",
        "num_outcomes",
    )

    def __init__(
        self,
        variables: Sequence,
        rows: Iterable[Tuple[int, ...]],
    ) -> None:
        self._values: Tuple[Tuple[Hashable, ...], ...] = tuple(
            variable.values for variable in variables
        )
        self._probs: Tuple[Tuple[float, ...], ...] = tuple(
            variable.probabilities for variable in variables
        )
        self._index_maps: Tuple[Dict[Hashable, int], ...] = tuple(
            {value: index for index, value in enumerate(variable.values)}
            for variable in variables
        )
        self._num_values: Tuple[int, ...] = tuple(
            variable.num_values for variable in variables
        )
        strides = [1] * len(self._num_values)
        for position in range(len(strides) - 2, -1, -1):
            strides[position] = (
                strides[position + 1] * self._num_values[position + 1]
            )
        self._strides: Tuple[int, ...] = tuple(strides)
        self.num_outcomes = 1
        for count in self._num_values:
            self.num_outcomes *= count
        # Sort rows by code: deterministic, and identical to the
        # lexicographic order itertools.product produces.
        self._rows: Tuple[Tuple[int, ...], ...] = tuple(
            sorted(set(tuple(row) for row in rows))
        )
        self._codes: frozenset = frozenset(
            self.encode(row) for row in self._rows
        )
        self._fingerprint: Optional[int] = None
        self._batch_arrays = None
        self._support_maps: Optional[dict] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def compile(cls, variables: Sequence, predicate) -> "EventKernel":
        """Enumerate the full outcome table once and keep the bad rows.

        The enumeration is depth-first over scope positions so that each
        step rebinds a *single* entry of the values dict (product-style
        iteration would rewrite every entry per outcome); with the last
        position varying fastest this amortises to ~1 dict write per
        predicate call, which matters because compilation is the only
        O(num_outcomes) work the compiled engine ever does per event.
        """
        names = [variable.name for variable in variables]
        value_lists = [variable.values for variable in variables]
        rows: List[Tuple[int, ...]] = []
        width = len(names)
        if width == 0:
            if predicate({}):
                rows.append(())
            return cls(variables, rows)
        values: Dict[Hashable, Hashable] = {}
        combo = [0] * width
        last = width - 1
        last_name = names[last]
        last_values = value_lists[last]

        def descend(position: int) -> None:
            if position == last:
                for index, value in enumerate(last_values):
                    values[last_name] = value
                    if predicate(values):
                        combo[last] = index
                        rows.append(tuple(combo))
                return
            name = names[position]
            for index, value in enumerate(value_lists[position]):
                values[name] = value
                combo[position] = index
                descend(position + 1)

        descend(0)
        return cls(variables, rows)

    @classmethod
    def from_outcomes(
        cls,
        variables: Sequence,
        bad_outcomes: Iterable[Tuple[Hashable, ...]],
    ) -> "EventKernel":
        """Build a kernel directly from tabulated bad value tuples.

        Used for events constructed via
        :meth:`repro.probability.BadEvent.from_bad_outcomes`: the bad set
        *is* the truth table, so no predicate enumeration is needed.
        Outcomes mentioning values outside a variable's support can never
        occur and are dropped.
        """
        index_maps = [
            {value: index for index, value in enumerate(variable.values)}
            for variable in variables
        ]
        width = len(index_maps)
        rows: List[Tuple[int, ...]] = []
        for outcome in bad_outcomes:
            outcome = tuple(outcome)
            if len(outcome) != width:
                continue
            row: List[int] = []
            for position, value in enumerate(outcome):
                index = index_maps[position].get(value)
                if index is None:
                    break
                row.append(index)
            else:
                rows.append(tuple(row))
        return cls(variables, rows)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_bad(self) -> int:
        """Number of bad outcomes in the table."""
        return len(self._rows)

    @property
    def width(self) -> int:
        """Number of scope positions (variables) of the kernel."""
        return len(self._num_values)

    @property
    def num_values(self) -> Tuple[int, ...]:
        """Support size of each scope position."""
        return self._num_values

    def batch_arrays(self):
        """The truth table as numpy arrays, built lazily and cached.

        Returns ``(rows, factors)`` with shape ``[num_bad, width]``:
        ``rows[r, p]`` is the value index of bad row ``r`` at scope
        position ``p`` and ``factors[r, p]`` its probability weight
        ``probs[p][rows[r, p]]``.  These are the per-kernel inputs
        :class:`KernelStack` pads and stacks for whole-class queries.
        """
        if self._batch_arrays is None:
            np = _numpy()
            rows = np.array(self._rows, dtype=np.int64).reshape(
                self.num_bad, self.width
            )
            factors = np.ones((self.num_bad, self.width), dtype=np.float64)
            for position, probs in enumerate(self._probs):
                factors[:, position] = np.asarray(probs, dtype=np.float64)[
                    rows[:, position]
                ]
            self._batch_arrays = (rows, factors)
        return self._batch_arrays

    @property
    def strides(self) -> Tuple[int, ...]:
        """The mixed-radix place value of each scope position."""
        return self._strides

    def encode(self, row: Sequence[int]) -> int:
        """The mixed-radix code of a row of value indices."""
        code = 0
        for index, stride in zip(row, self._strides):
            code += index * stride
        return code

    def value_index(self, position: int, value: Hashable) -> Optional[int]:
        """Index of ``value`` in the scope variable at ``position``."""
        return self._index_maps[position].get(value)

    def support_map(
        self, position: int, values: Tuple[Hashable, ...]
    ) -> Optional[Tuple[int, ...]]:
        """Value indices of a support tuple at one scope position, cached.

        ``None`` if any value is outside the scope variable's value list.
        Cached per kernel *object* (not per fingerprint): fingerprints
        deliberately ignore value labels, which are exactly what this
        maps.  The vector decide plane calls this once per (variable,
        pin-site) pair per class, so the cache turns the per-op label
        translation into a dict hit.
        """
        maps = self._support_maps
        if maps is None:
            maps = self._support_maps = {}
        key = (position, values)
        cached = maps.get(key, False)
        if cached is False:
            index_map = self._index_maps[position]
            indices: Optional[Tuple[int, ...]] = tuple(
                index_map.get(value, -1) for value in values
            )
            if -1 in indices:
                indices = None
            cached = maps[key] = indices
        return cached

    def bad_value_tuples(self) -> List[Tuple[Hashable, ...]]:
        """The bad outcomes as value tuples, in code (lexicographic) order.

        This is exactly the tabulation
        :func:`repro.lll.io.instance_to_dict` needs, so serialisation can
        reuse the compiled table instead of re-enumerating the predicate.
        """
        values = self._values
        return [
            tuple(values[position][index] for position, index in enumerate(row))
            for row in self._rows
        ]

    def fingerprint(self) -> int:
        """A small interned id identifying the kernel's numeric structure.

        Two kernels share a fingerprint iff they have the same weight
        vectors and the same bad-row table — exactly the inputs that
        determine every numeric query answer (``probability`` and
        ``conditional_masses`` operate on indices, never on value
        labels).  The scheduler decision cache keys on this, so
        structurally identical events across an instance collapse to one
        engine pass per distinct local situation.
        """
        if self._fingerprint is None:
            structure = (self._probs, self._rows)
            self._fingerprint = _FINGERPRINTS.setdefault(
                structure, len(_FINGERPRINTS)
            )
        return self._fingerprint

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def occurs(self, row: Sequence[int]) -> bool:
        """Whether the fully-indexed outcome is bad (one set lookup)."""
        STATS.kernel_occurs_queries += 1
        return self.encode(row) in self._codes

    def probability(self, pins: Sequence[int], context: str) -> float:
        """Strided sum over the table slice selected by ``pins``.

        Rows disagreeing with a pinned index contribute nothing; free
        positions contribute their weight-vector entry.  Multiplication
        runs in scope-position order — the same float sequence the naive
        enumerator produces — and the terms are ``fsum``-ed, so the result
        is bit-identical to naive enumeration.
        """
        STATS.kernel_queries += 1
        probs = self._probs
        terms: List[float] = []
        for row in self._rows:
            mass = 1.0
            for position, index in enumerate(row):
                pin = pins[position]
                if pin >= 0:
                    if pin != index:
                        mass = -1.0
                        break
                else:
                    mass *= probs[position][index]
            if mass >= 0.0:
                terms.append(mass)
        return checked_mass_sum(terms, context)

    def conditional_masses(
        self,
        pins: Sequence[int],
        target: int,
        context: str,
    ) -> List[float]:
        """``Pr[event | pins, target=index]`` for every index, in one pass.

        The batch leg of the ``Inc`` computation: row masses are bucketed
        by the target position's value index, skipping the target's own
        weight factor (conditioning pins it).  Entry ``i`` of the result
        equals ``probability(pins with target pinned to i)`` exactly.
        """
        STATS.kernel_batch_queries += 1
        probs = self._probs
        buckets: List[List[float]] = [
            [] for _ in range(self._num_values[target])
        ]
        for row in self._rows:
            mass = 1.0
            for position, index in enumerate(row):
                if position == target:
                    continue
                pin = pins[position]
                if pin >= 0:
                    if pin != index:
                        mass = -1.0
                        break
                else:
                    mass *= probs[position][index]
            if mass >= 0.0:
                buckets[row[target]].append(mass)
        return [checked_mass_sum(terms, context) for terms in buckets]

    def __repr__(self) -> str:
        return (
            f"EventKernel(outcomes={self.num_outcomes}, bad={self.num_bad})"
        )


# ----------------------------------------------------------------------
# Whole-class batch evaluation (the vector decide plane's engine layer)
# ----------------------------------------------------------------------
_NUMPY = None


def _numpy():
    """Import numpy on first batch use, keeping scalar imports light."""
    global _NUMPY
    if _NUMPY is None:
        import numpy

        _NUMPY = numpy
    return _NUMPY


#: Padded-stack cells beyond which :class:`KernelStack` refuses to build
#: (callers fall back to the scalar path instead of burning memory).
DEFAULT_STACK_LIMIT = 1 << 22


class KernelStack:
    """The truth tables of a color class's events, stacked and padded.

    One instance covers every event a class's decisions read: kernel
    ``e``'s table occupies slice ``e`` of three padded arrays —
    ``rows[e, r, p]`` (value indices, padded with 0), ``factors[e, r, p]``
    (probability weights, padded with 1.0) and ``row_valid[e, r]``
    (``False`` for padding rows).  Padded scope positions carry pin ``-1``
    (free) and factor 1.0, so they multiply masses by exactly 1.0 and
    never constrain row validity — the padded query is bit-identical to
    the unpadded one.

    :meth:`query` answers a whole batch of ``conditional_masses`` +
    ``probability`` pairs (one per affected event per op of a wave) in a
    handful of numpy passes, preserving the scalar engine's numerical
    contract:

    * per-row masses multiply the same probability floats in the same
      scope-position order (skipped positions multiply by 1.0, which is
      exact for IEEE doubles);
    * bucket and before sums with more than one surviving row are
      delegated to the scalar kernel methods, whose ``math.fsum`` order
      is the contract — the scatter fast path only applies where a
      bucket holds at most one row, where ``fsum([x]) == x`` exactly;
    * the ``checked_mass_sum`` raise/clamp semantics are reproduced,
      including the per-event error context.
    """

    __slots__ = (
        "kernels",
        "width",
        "depth",
        "rows",
        "factors",
        "row_valid",
        "cells",
    )

    def __init__(self, kernels: Sequence[EventKernel]) -> None:
        np = _numpy()
        self.kernels = list(kernels)
        count = len(self.kernels)
        self.width = max((k.width for k in self.kernels), default=0)
        self.depth = max((k.num_bad for k in self.kernels), default=0)
        depth = max(self.depth, 1)
        width = max(self.width, 1)
        self.cells = count * depth * width
        self.rows = np.zeros((count, depth, width), dtype=np.int64)
        self.factors = np.ones((count, depth, width), dtype=np.float64)
        self.row_valid = np.zeros((count, depth), dtype=bool)
        for index, kernel in enumerate(self.kernels):
            if kernel.num_bad == 0:
                continue
            k_rows, k_factors = kernel.batch_arrays()
            self.rows[index, : kernel.num_bad, : kernel.width] = k_rows
            self.factors[index, : kernel.num_bad, : kernel.width] = k_factors
            self.row_valid[index, : kernel.num_bad] = True

    def query(
        self,
        event_index,
        pins,
        targets,
        max_values: int,
        names: Sequence[Hashable],
    ):
        """Batched ``(conditional_masses, probability)`` for ``Q`` queries.

        Parameters
        ----------
        event_index:
            ``[Q]`` int array — which stacked kernel each query reads.
        pins:
            ``[Q, width]`` int array — the querying event's current pins
            (``-1`` = free), padded with ``-1``.
        targets:
            ``[Q]`` int array — the scope position being conditioned on.
        max_values:
            Width of the returned ``afters`` matrix (max support size
            over the batch); entries beyond a target's support stay 0.
        names:
            Per-*query* event names, for ``checked_mass_sum`` contexts
            (several queries may share one stacked kernel when events
            are deduplicated by fingerprint).

        Returns ``(afters, before)``: ``afters[q, i]`` equals
        ``kernel.conditional_masses(pins, target)[i]`` and ``before[q]``
        equals ``kernel.probability(pins)`` — bit-identical to the
        scalar methods.
        """
        np = _numpy()
        count = int(event_index.shape[0])
        STATS.vector_passes += 1
        STATS.vector_queries += count
        afters = np.zeros((count, max_values), dtype=np.float64)
        before = np.zeros(count, dtype=np.float64)
        if count == 0:
            return afters, before
        if self.depth <= 1:
            # Single-row tables (the common all-zero generators): every
            # bucket holds at most one row, so the scatter path is always
            # exact and the bucket bookkeeping can be skipped wholesale.
            rows0 = self.rows[event_index, 0]
            factors0 = self.factors[event_index, 0]
            free = pins < 0
            valid = self.row_valid[event_index, 0] & (
                free | (pins == rows0)
            ).all(axis=1)
            masses = np.ones(count, dtype=np.float64)
            befores = np.ones(count, dtype=np.float64)
            for position in range(self.width):
                column = factors0[:, position]
                masses = masses * np.where(
                    free[:, position] & (targets != position), column, 1.0
                )
                befores = befores * np.where(free[:, position], column, 1.0)
            lanes = np.arange(count)
            target_values = rows0[lanes, targets]
            afters[lanes[valid], target_values[valid]] = masses[valid]
            before = np.where(valid, befores, 0.0)
            limit = 1.0 + PROBABILITY_MASS_TOLERANCE
            if bool((masses > limit).any()) or bool((befores > limit).any()):
                bad = valid & ((masses > limit) | (befores > limit))
                for q in np.nonzero(bad)[0]:
                    self._scalar_query(
                        np, int(q), event_index, pins, targets, names,
                        afters, before,
                    )
            np.minimum(afters, 1.0, out=afters)
            np.minimum(before, 1.0, out=before)
            return afters, before
        rows = self.rows[event_index]
        factors = self.factors[event_index]
        valid = self.row_valid[event_index]
        if self.width:
            free = pins < 0
            valid = valid & (free[:, None, :] | (pins[:, None, :] == rows)).all(
                axis=2
            )
            masses = np.ones(rows.shape[:2], dtype=np.float64)
            befores = np.ones(rows.shape[:2], dtype=np.float64)
            for position in range(self.width):
                column = factors[:, :, position]
                include = free[:, position] & (targets != position)
                masses = masses * np.where(include[:, None], column, 1.0)
                befores = befores * np.where(
                    free[:, position, None], column, 1.0
                )
        else:
            masses = np.ones(rows.shape[:2], dtype=np.float64)
            befores = masses
        target_values = np.take_along_axis(
            rows, targets[:, None, None], axis=2
        )[:, :, 0]
        keys = np.arange(count)[:, None] * max_values + target_values
        flat_keys = keys[valid]
        bucket_counts = np.bincount(
            flat_keys, minlength=count * max_values
        ).reshape(count, max_values)
        row_counts = valid.sum(axis=1)
        # Queries whose buckets all hold <= 1 row take the exact scatter
        # path (fsum of a singleton is the value itself); the rest replay
        # through the scalar kernel methods to preserve fsum order.
        simple = (bucket_counts.max(axis=1) <= 1) & (row_counts <= 1)
        scatter = valid & simple[:, None]
        afters_flat = afters.reshape(-1)
        afters_flat[keys[scatter]] = masses[scatter]
        before = np.where(
            simple, np.where(valid, befores, 0.0).max(axis=1, initial=0.0), 0.0
        )
        limit = 1.0 + PROBABILITY_MASS_TOLERANCE
        if bool((afters > limit).any()) or bool((before > limit).any()):
            # Over-unit mass: replay the offending queries through the
            # scalar methods so the ProbabilityMassError (context and
            # message included) is the one the scalar engine raises.
            bad = (afters > limit).any(axis=1) | (before > limit)
            for q in np.nonzero(bad)[0]:
                self._scalar_query(
                    np, int(q), event_index, pins, targets, names,
                    afters, before,
                )
        np.minimum(afters, 1.0, out=afters)
        np.minimum(before, 1.0, out=before)
        if not bool(simple.all()):
            for q in np.nonzero(~simple)[0]:
                STATS.vector_fallbacks += 1
                self._scalar_query(
                    np, int(q), event_index, pins, targets, names,
                    afters, before,
                )
        return afters, before

    def _scalar_query(
        self, np, q, event_index, pins, targets, names, afters, before
    ) -> None:
        """Answer query ``q`` via the scalar kernel methods, in place."""
        kernel = self.kernels[int(event_index[q])]
        pin_list = [int(pin) for pin in pins[q, : kernel.width]]
        context = f"event {names[q]!r}"
        target = int(targets[q])
        masses = kernel.conditional_masses(pin_list, target, context)
        afters[q, : len(masses)] = masses
        afters[q, len(masses):] = 0.0
        before[q] = kernel.probability(pin_list, context)
