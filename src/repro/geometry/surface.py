"""The boundary surface of the set of representable triples.

Lemma 3.5 of the paper characterises the set ``S_rep`` of representable
triples as ``{(a, b, c) : a + b <= 4, 0 <= c <= f(a, b)}`` with

    f(a, b) = 4 + (a*b - 2a - 2b - sqrt(a*b*(4-a)*(4-b))) / 2 .

Lemma 3.6 proves ``f`` convex on ``{a, b >= 0, a + b <= 4}`` by showing the
leading principal minors of its Hessian are positive.  This module
implements ``f``, its gradient and Hessian (the closed forms from the
paper's appendix), and pointwise convexity checks used by the Figure-1
reproduction.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.errors import ReproError

#: Numerical tolerance for domain membership checks.
DOMAIN_TOLERANCE = 1e-12


def in_domain(a: float, b: float, tolerance: float = DOMAIN_TOLERANCE) -> bool:
    """Whether ``(a, b)`` lies in ``{a, b >= 0, a + b <= 4}`` (up to tolerance)."""
    return a >= -tolerance and b >= -tolerance and a + b <= 4.0 + tolerance


def _require_domain(a: float, b: float) -> Tuple[float, float]:
    """Clamp tiny numerical excursions, reject genuine domain violations."""
    if not in_domain(a, b, tolerance=1e-9):
        raise ReproError(
            f"({a}, {b}) is outside the domain a, b >= 0, a + b <= 4"
        )
    a = min(max(a, 0.0), 4.0)
    b = min(max(b, 0.0), 4.0)
    if a + b > 4.0:
        # Shave the (at most 1e-9) excess off the larger coordinate.
        excess = a + b - 4.0
        if a >= b:
            a -= excess
        else:
            b -= excess
    return a, b


def boundary_surface(a: float, b: float) -> float:
    """``f(a, b)``: the largest ``c`` such that ``(a, b, c)`` is representable.

    Defined on ``{a, b >= 0, a + b <= 4}``; the paper's Lemma 3.5.  The
    value is always in ``[0, 4]``: it equals 4 at the origin and 0 on the
    line ``a + b = 4``.
    """
    a, b = _require_domain(a, b)
    radicand = a * b * (4.0 - a) * (4.0 - b)
    value = 4.0 + 0.5 * (a * b - 2.0 * a - 2.0 * b - math.sqrt(max(radicand, 0.0)))
    # The exact value is non-negative on the domain; clamp float dust.
    return max(value, 0.0)


def surface_alternative_form(a: float, b: float) -> float:
    """``f(a, b)`` via the equivalent form ``((sqrt((4-a)(4-b)) - sqrt(ab))/2)^2``.

    The paper's appendix derives this as an intermediate identity; having
    both forms lets tests cross-check the algebra.
    """
    a, b = _require_domain(a, b)
    root = math.sqrt((4.0 - a) * (4.0 - b)) - math.sqrt(a * b)
    return (root / 2.0) ** 2


def gradient(a: float, b: float) -> Tuple[float, float]:
    """``(df/da, df/db)`` at an interior point of the domain.

    Uses the closed form from the paper's appendix:
    ``df/da = (b - 2 - b(4-b)(4-2a) / (2 sqrt(ab(4-a)(4-b)))) / 2``.

    Raises
    ------
    ReproError
        If the point is on the boundary ``a = 0``, ``b = 0``, ``a = 4`` or
        ``b = 4``, where the derivative is unbounded or undefined.
    """
    a, b = _require_domain(a, b)
    radicand = a * b * (4.0 - a) * (4.0 - b)
    if radicand <= 0.0:
        raise ReproError(
            f"gradient of f is undefined on the boundary (a={a}, b={b})"
        )
    root = math.sqrt(radicand)
    df_da = 0.5 * (b - 2.0 - b * (4.0 - b) * (4.0 - 2.0 * a) / (2.0 * root))
    df_db = 0.5 * (a - 2.0 - a * (4.0 - a) * (4.0 - 2.0 * b) / (2.0 * root))
    return df_da, df_db


def hessian(a: float, b: float) -> Tuple[Tuple[float, float], Tuple[float, float]]:
    """The Hessian of ``f`` at an interior point, in closed form.

    From the paper's appendix:

    * ``d2f/da2 = 2 / (a(4-a)) * sqrt(b(4-b) / (a(4-a)))``
    * ``d2f/dadb = 1/2 - (2-a)(2-b) / (2 sqrt(ab(4-a)(4-b)))``

    and symmetrically for ``d2f/db2``.
    """
    a, b = _require_domain(a, b)
    qa = a * (4.0 - a)
    qb = b * (4.0 - b)
    if qa <= 0.0 or qb <= 0.0:
        raise ReproError(
            f"Hessian of f is undefined on the boundary (a={a}, b={b})"
        )
    faa = 2.0 / qa * math.sqrt(qb / qa)
    fbb = 2.0 / qb * math.sqrt(qa / qb)
    fab = 0.5 - (2.0 - a) * (2.0 - b) / (2.0 * math.sqrt(qa * qb))
    return ((faa, fab), (fab, fbb))


def hessian_minors(a: float, b: float) -> Tuple[float, float]:
    """The two leading principal minors of the Hessian at ``(a, b)``.

    Lemma 3.6 proves both are strictly positive on the open domain, which
    by Sylvester's criterion makes the Hessian positive definite and ``f``
    convex.
    """
    ((faa, fab), (_, fbb)) = hessian(a, b)
    return faa, faa * fbb - fab * fab


def is_convex_at(a: float, b: float, tolerance: float = 0.0) -> bool:
    """Whether the convexity certificate holds at the interior point ``(a, b)``."""
    first, second = hessian_minors(a, b)
    return first > tolerance and second > tolerance


def numerical_gradient(a: float, b: float, step: float = 1e-6) -> Tuple[float, float]:
    """Central-difference gradient of ``f``, for cross-checking the closed form."""
    df_da = (boundary_surface(a + step, b) - boundary_surface(a - step, b)) / (
        2.0 * step
    )
    df_db = (boundary_surface(a, b + step) - boundary_surface(a, b - step)) / (
        2.0 * step
    )
    return df_da, df_db


def surface_grid(resolution: int) -> Tuple[list, list, list]:
    """Sample ``f`` on a triangular grid over its domain (Figure 1 data).

    Returns parallel lists ``(a_values, b_values, f_values)`` covering the
    points ``(4i/resolution, 4j/resolution)`` with ``a + b <= 4``.
    """
    if resolution < 1:
        raise ReproError("resolution must be at least 1")
    a_values, b_values, f_values = [], [], []
    for i in range(resolution + 1):
        a = 4.0 * i / resolution
        for j in range(resolution + 1 - i):
            b = 4.0 * j / resolution
            a_values.append(a)
            b_values.append(b)
            f_values.append(boundary_surface(a, b))
    return a_values, b_values, f_values
