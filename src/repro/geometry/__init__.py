"""Representable-triple geometry (core math, S3).

The surface ``f(a, b)`` bounding ``S_rep`` with its convexity certificate
(:mod:`repro.geometry.surface`, Lemmas 3.5/3.6), membership and
constructive decomposition of representable pairs and triples, and
empirical incurvedness checks (:mod:`repro.geometry.representable`,
Definition 3.3/3.4, Lemma 3.7).
"""

from repro.geometry.representable import (
    DEFAULT_TOLERANCE,
    TripleDecomposition,
    decompose_triple,
    is_representable_pair,
    is_representable_triple,
    representability_margin,
    representability_margin_array,
    segment_points_inside,
    violates_incurvedness,
)
from repro.geometry.surface import (
    boundary_surface,
    gradient,
    hessian,
    hessian_minors,
    in_domain,
    is_convex_at,
    numerical_gradient,
    surface_alternative_form,
    surface_grid,
)

__all__ = [
    "DEFAULT_TOLERANCE",
    "TripleDecomposition",
    "boundary_surface",
    "decompose_triple",
    "gradient",
    "hessian",
    "hessian_minors",
    "in_domain",
    "is_convex_at",
    "is_representable_pair",
    "is_representable_triple",
    "numerical_gradient",
    "representability_margin",
    "representability_margin_array",
    "segment_points_inside",
    "surface_alternative_form",
    "surface_grid",
    "violates_incurvedness",
]
