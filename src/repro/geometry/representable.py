"""Representable pairs and triples (Definition 3.3) and their decomposition.

A triple ``(a, b, c)`` is *representable* if there are values
``a1, a2, b1, b3, c2, c3`` in ``[0, 2]`` with

    a1*a2 = a,   b1*b3 = b,   c2*c3 = c,
    a1 + b1 <= 2,   a2 + c2 <= 2,   b3 + c3 <= 2.

The indices mirror the paper's picture: the triple lives on the triangle
``{u, v, w}`` of the dependency graph; ``a1``/``b1`` sit on edge
``e = {u, v}``, ``a2``/``c2`` on ``e' = {u, w}`` and ``b3``/``c3`` on
``e'' = {v, w}``.  Lemma 3.5 characterises the representable set as
``a + b <= 4`` and ``c <= f(a, b)``, and its proof is constructive; the
:func:`decompose_triple` implementation follows that construction case by
case.

The rank-2 analogue is a *pair*: one edge carries two values summing to at
most 2, so ``(a, b)`` is representable iff ``a, b >= 0`` and ``a + b <= 2``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.errors import NotRepresentableError
from repro.geometry.surface import boundary_surface

#: Default numerical slack for membership and decomposition checks.
DEFAULT_TOLERANCE = 1e-9


# ----------------------------------------------------------------------
# Rank 2: representable pairs
# ----------------------------------------------------------------------
def is_representable_pair(
    a: float, b: float, tolerance: float = DEFAULT_TOLERANCE
) -> bool:
    """Whether ``(a, b)`` can be written on one edge: ``a, b >= 0, a + b <= 2``."""
    return a >= -tolerance and b >= -tolerance and a + b <= 2.0 + tolerance


# ----------------------------------------------------------------------
# Rank 3: representable triples
# ----------------------------------------------------------------------
def is_representable_triple(
    a: float, b: float, c: float, tolerance: float = DEFAULT_TOLERANCE
) -> bool:
    """Membership in ``S_rep`` via the Lemma 3.5 characterisation."""
    if a < -tolerance or b < -tolerance or c < -tolerance:
        return False
    a = max(a, 0.0)
    b = max(b, 0.0)
    c = max(c, 0.0)
    if a + b > 4.0 + tolerance:
        return False
    a_dom = min(a, 4.0)
    b_dom = min(b, 4.0)
    if a_dom + b_dom > 4.0:
        excess = a_dom + b_dom - 4.0
        if a_dom >= b_dom:
            a_dom -= excess
        else:
            b_dom -= excess
    return c <= boundary_surface(a_dom, b_dom) + tolerance


def representability_margin(a: float, b: float, c: float) -> float:
    """Signed distance-like margin of ``(a, b, c)`` relative to ``S_rep``.

    Positive means strictly inside, negative means outside; the magnitude
    is the smallest slack over the characterisation's constraints
    (non-negativity, ``a + b <= 4`` and ``c <= f(a, b)``).  The rank-3
    fixer uses this to pick, among the non-evil values, the one leaving
    the most room.
    """
    margin = min(a, b, c)
    margin = min(margin, 4.0 - (a + b))
    if margin < 0.0:
        return margin
    a_dom = min(max(a, 0.0), 4.0)
    b_dom = min(max(b, 0.0), 4.0)
    if a_dom + b_dom > 4.0:
        excess = a_dom + b_dom - 4.0
        if a_dom >= b_dom:
            a_dom -= excess
        else:
            b_dom -= excess
    return min(margin, boundary_surface(a_dom, b_dom) - max(c, 0.0))


def representability_margin_array(a, b, c):
    """Vectorized :func:`representability_margin` over numpy arrays.

    Bit-identical to the scalar function applied elementwise: every
    arithmetic step mirrors the scalar composition (including the
    double clamp-and-shave of :func:`~repro.geometry.surface
    .boundary_surface`'s domain normalisation), and numpy's
    ``minimum``/``maximum``/``sqrt`` are IEEE correctly-rounded, so each
    lane reproduces the scalar float sequence exactly.  The scalar
    function's early return for ``margin < 0`` is realised by masking —
    those lanes never consult the boundary surface, whose domain check
    cannot fail on the remaining lanes (``margin >= 0`` implies
    ``a, b, c >= 0`` and ``a + b <= 4``).
    """
    import numpy as np

    margin = np.minimum(np.minimum(a, b), c)
    margin = np.minimum(margin, 4.0 - (a + b))
    negative = margin < 0.0
    a_dom = np.minimum(np.maximum(a, 0.0), 4.0)
    b_dom = np.minimum(np.maximum(b, 0.0), 4.0)
    excess = (a_dom + b_dom) - 4.0
    over = (a_dom + b_dom) > 4.0
    shave_a = over & (a_dom >= b_dom)
    shave_b = over & ~shave_a
    a_dom = np.where(shave_a, a_dom - excess, a_dom)
    b_dom = np.where(shave_b, b_dom - excess, b_dom)
    # boundary_surface re-normalises its inputs the same way; replicate
    # the second clamp-and-shave so the composed float ops line up.
    a_dom = np.minimum(np.maximum(a_dom, 0.0), 4.0)
    b_dom = np.minimum(np.maximum(b_dom, 0.0), 4.0)
    excess = (a_dom + b_dom) - 4.0
    over = (a_dom + b_dom) > 4.0
    shave_a = over & (a_dom >= b_dom)
    shave_b = over & ~shave_a
    a_dom = np.where(shave_a, a_dom - excess, a_dom)
    b_dom = np.where(shave_b, b_dom - excess, b_dom)
    radicand = a_dom * b_dom * (4.0 - a_dom) * (4.0 - b_dom)
    surface = 4.0 + 0.5 * (
        a_dom * b_dom
        - 2.0 * a_dom
        - 2.0 * b_dom
        - np.sqrt(np.maximum(radicand, 0.0))
    )
    surface = np.maximum(surface, 0.0)
    return np.where(
        negative,
        margin,
        np.minimum(margin, surface - np.maximum(c, 0.0)),
    )


@dataclass(frozen=True)
class TripleDecomposition:
    """Witness values for a representable triple (Definition 3.3)."""

    a1: float
    a2: float
    b1: float
    b3: float
    c2: float
    c3: float

    def products(self) -> Tuple[float, float, float]:
        """The triple ``(a1*a2, b1*b3, c2*c3)`` this decomposition realises."""
        return (self.a1 * self.a2, self.b1 * self.b3, self.c2 * self.c3)

    def edge_sums(self) -> Tuple[float, float, float]:
        """The three per-edge sums ``(a1+b1, a2+c2, b3+c3)``."""
        return (self.a1 + self.b1, self.a2 + self.c2, self.b3 + self.c3)

    def max_violation(self, a: float, b: float, c: float) -> float:
        """How far this witness is from certifying ``(a, b, c)``.

        Zero (up to float error) means: all six values are in ``[0, 2]``,
        all three edge sums are at most 2, and the products are at least
        ``a``, ``b`` and ``c`` respectively.  Products larger than the
        target are fine — they only loosen the probability bound.
        """
        values = (self.a1, self.a2, self.b1, self.b3, self.c2, self.c3)
        range_violation = max(
            max(-value for value in values),
            max(value - 2.0 for value in values),
        )
        sum_violation = max(total - 2.0 for total in self.edge_sums())
        pa, pb, pc = self.products()
        product_violation = max(a - pa, b - pb, c - pc)
        return max(range_violation, sum_violation, product_violation, 0.0)


def _clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into ``[low, high]``."""
    return min(max(value, low), high)


def _interior_split_point(a: float, b: float) -> float:
    """The optimal ``x1`` from the proof of Lemma 3.5, for ``a, b > 0``.

    ``x1`` is the value of ``a1`` maximising the representable ``c``:
    ``x1 = (a(4-b) - sqrt(ab(4-a)(4-b))) / (2(a-b))`` for ``a != b`` and
    ``x1 = 1`` for ``a == b``.  The result lies in ``[a/2, 2 - b/2]``.
    """
    if math.isclose(a, b, rel_tol=0.0, abs_tol=1e-12):
        return 1.0
    radicand = a * b * (4.0 - a) * (4.0 - b)
    root = math.sqrt(max(radicand, 0.0))
    x1 = (a * (4.0 - b) - root) / (2.0 * (a - b))
    return _clamp(x1, a / 2.0, 2.0 - b / 2.0)


def decompose_triple(
    a: float, b: float, c: float, tolerance: float = DEFAULT_TOLERANCE
) -> TripleDecomposition:
    """Constructively decompose a representable triple.

    Follows the constructive direction of Lemma 3.5: choose
    ``a1 = x1``, ``a2 = a/x1``, ``b1 = 2 - x1``, ``b3 = b/(2 - x1)``,
    ``c2 = 2 - a2`` and absorb the slack ``c <= f(a, b)`` into ``c3``.

    Raises
    ------
    NotRepresentableError
        If ``(a, b, c)`` is not in ``S_rep`` (up to ``tolerance``).
    """
    if not is_representable_triple(a, b, c, tolerance):
        raise NotRepresentableError(
            f"triple ({a}, {b}, {c}) is not representable"
        )
    a = _clamp(a, 0.0, 4.0)
    b = _clamp(b, 0.0, 4.0)
    c = _clamp(c, 0.0, 4.0)
    if a + b > 4.0:
        excess = a + b - 4.0
        if a >= b:
            a -= excess
        else:
            b -= excess

    zero = 1e-15
    if a <= zero and b <= zero:
        # f(0, 0) = 4; put all the mass on the c-edge pair.
        return TripleDecomposition(
            a1=0.0, a2=0.0, b1=0.0, b3=0.0, c2=2.0, c3=c / 2.0
        )
    if a <= zero:
        # f(0, b) = 4 - b; the u-side is free, so b and c each use one
        # full half of their shared budgets.
        return TripleDecomposition(
            a1=0.0, a2=0.0, b1=2.0, b3=b / 2.0, c2=2.0, c3=c / 2.0
        )
    if b <= zero:
        # Symmetric to the previous case.
        return TripleDecomposition(
            a1=2.0, a2=a / 2.0, b1=0.0, b3=0.0, c2=2.0 - a / 2.0,
            c3=0.0 if c <= zero else c / (2.0 - a / 2.0),
        )

    x1 = _interior_split_point(a, b)
    a1 = x1
    a2 = _clamp(a / x1, 0.0, 2.0)
    b1 = 2.0 - x1
    b3 = _clamp(b / (2.0 - x1), 0.0, 2.0)
    c2 = 2.0 - a2
    c3_cap = 2.0 - b3
    if c <= zero:
        c2_final, c3 = c2, 0.0
    elif c2 <= zero:
        # f(a, b) = c2 * c3_cap = 0 here, so a representable c must be ~0.
        c2_final, c3 = c2, 0.0
    else:
        c2_final = c2
        c3 = _clamp(c / c2, 0.0, c3_cap)
    return TripleDecomposition(a1=a1, a2=a2, b1=b1, b3=b3, c2=c2_final, c3=c3)


# ----------------------------------------------------------------------
# Incurvedness (Definition 3.4) — empirical certification
# ----------------------------------------------------------------------
def segment_points_inside(
    s: Tuple[float, float, float],
    s_prime: Tuple[float, float, float],
    num_samples: int = 101,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[float]:
    """Interpolation weights ``q`` where ``q*s + (1-q)*s'`` lies in ``S_rep``.

    Incurvedness of ``S_rep`` (Lemma 3.7) says: if neither endpoint is in
    ``S_rep``, the returned list is empty.  A *negative* tolerance makes the
    membership test strict, which is the right setting for checking
    incurvedness on endpoints that sit exactly on the boundary.
    """
    inside = []
    for index in range(num_samples):
        q = index / (num_samples - 1) if num_samples > 1 else 0.0
        point = tuple(
            q * x + (1.0 - q) * y for x, y in zip(s, s_prime)
        )
        if is_representable_triple(*point, tolerance=tolerance):
            inside.append(q)
    return inside


def violates_incurvedness(
    s: Tuple[float, float, float],
    s_prime: Tuple[float, float, float],
    num_samples: int = 101,
    tolerance: float = DEFAULT_TOLERANCE,
) -> bool:
    """Whether the segment ``s``–``s'`` witnesses a failure of incurvedness.

    True iff both endpoints are outside ``S_rep`` but some sampled interior
    point is inside.  Lemma 3.7 proves this never happens.
    """
    if is_representable_triple(*s, tolerance=tolerance):
        return False
    if is_representable_triple(*s_prime, tolerance=tolerance):
        return False
    # Use a strict membership test for interior points so that boundary
    # grazes do not count as violations.
    interior = segment_points_inside(
        s, s_prime, num_samples=num_samples, tolerance=-tolerance
    )
    return bool(interior)
