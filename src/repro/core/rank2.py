"""The rank-2 deterministic fixer (Theorem 1.1 / Corollary 1.2).

Every variable affects at most two bad events, i.e. lives on an edge of
the dependency graph.  The fixer processes the variables in an arbitrary
(even adversarial) order; for the variable on edge ``{u, v}`` it chooses
the value minimising the *weighted* sum of conditional-probability
increases, where the weights are the increases accumulated so far on that
edge.  Linearity of expectation guarantees a value with weighted sum at
most 2 (the paper's claim in the proof of Theorem 1.1, in its weighted
form from Section 3.1), so after all variables are fixed every event's
probability is below ``p * 2^d < 1`` — and an exhausted probability space
with positive survival probability means no bad event occurs.
"""

from __future__ import annotations

import time
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import NoGoodValueError, PStarViolationError
from repro.obs.recorder import active as _obs_active
from repro.lll.instance import LLLInstance
from repro.lll.verify import check_preconditions
from repro.core.results import FixingResult, StepRecord, make_step_record
from repro.core.selection import (
    Decision,
    Rank1Choice,
    select_rank1,
    select_rank2,
)
from repro.probability import DiscreteVariable, PartialAssignment

#: Slack below which a chosen value is treated as violating the invariant.
CONSTRAINT_TOLERANCE = 1e-9


class Rank2Fixer:
    """Sequential deterministic fixer for instances of rank at most 2.

    Parameters
    ----------
    instance:
        The LLL instance.  Every variable must affect at most two events.
    require_criterion:
        If True (default), reject instances violating ``p < 2^-d`` up
        front.  Disabling the check lets experiments probe behaviour *at*
        the threshold, where the method may legitimately fail with
        :class:`NoGoodValueError`.
    validate_invariant:
        If True, re-verify the bookkeeping invariant (each event's
        conditional probability is below its certified bound) after every
        step.  Costs extra probability computations; used by tests.
    """

    def __init__(
        self,
        instance: LLLInstance,
        require_criterion: bool = True,
        validate_invariant: bool = False,
    ) -> None:
        self._instance = instance
        check_preconditions(
            instance, max_rank=2, require_criterion=require_criterion
        )
        self._validate = validate_invariant
        self._assignment = PartialAssignment()
        # Cumulative increase weights per dependency edge and endpoint.
        # _edge_weights[frozenset({u, v})][u] is the product of the Inc
        # ratios event u has absorbed from variables on edge {u, v}.
        self._edge_weights: Dict[FrozenSet[Hashable], Dict[Hashable, float]] = {}
        # Cumulative increase for events touched by rank-1 variables.
        # Via the instance (and hence the artifact store's parameters
        # tier): same-shape instances share one probability enumeration.
        self._initial_probabilities = instance.event_probabilities()
        self._steps: List[StepRecord] = []

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def assignment(self) -> PartialAssignment:
        """The (partial) assignment built so far."""
        return self._assignment

    @property
    def steps(self) -> Tuple[StepRecord, ...]:
        """Trace of the fixing steps performed so far."""
        return tuple(self._steps)

    def is_fixed(self, variable_name: Hashable) -> bool:
        """Whether the named variable has already been fixed."""
        return self._assignment.is_fixed(variable_name)

    # ------------------------------------------------------------------
    # Fixing
    # ------------------------------------------------------------------
    def local_weights(self, events: Sequence) -> Tuple[float, ...]:
        """The bookkeeping weights a decision on ``events`` reads.

        ``()`` for a rank-1 variable, the pair of cumulative edge weights
        for a rank-2 variable.  Together with the events' conditional
        masses this is the *entire* state a decision depends on, which is
        what makes the batch scheduler's decision memoization sound.
        """
        if len(events) < 2:
            return ()
        event_u, event_v = events
        weights = self._edge_weights.setdefault(
            frozenset((event_u.name, event_v.name)),
            {event_u.name: 1.0, event_v.name: 1.0},
        )
        return (weights[event_u.name], weights[event_v.name])

    def decide(self, variable_name: Hashable) -> Decision:
        """Compute (without committing) the fixing decision for a variable.

        Pure with respect to the bookkeeping: repeated calls return the
        same decision until a :meth:`commit` changes the state.  Raises
        :class:`NoGoodValueError` if no value keeps the weighted increase
        within budget — impossible under ``p < 2^-d`` by Theorem 1.1, so
        on checked instances this would indicate a numerical problem.
        """
        if self._assignment.is_fixed(variable_name):
            raise PStarViolationError(
                f"variable {variable_name!r} is already fixed"
            )
        variable = self._instance.variable(variable_name)
        events = self._instance.events_of_variable(variable_name)
        if len(events) == 1:
            choice = select_rank1(variable, events[0], self._assignment)
        else:
            choice = select_rank2(
                variable, events, self.local_weights(events), self._assignment
            )
        return Decision(
            variable=variable, events=tuple(events), choice=choice
        )

    def commit(self, decision: Decision) -> StepRecord:
        """Apply a decision: update the ledger, assignment and trace."""
        recorder = _obs_active()
        start = time.perf_counter_ns() if recorder is not None else 0
        variable = decision.variable
        events = decision.events
        choice = decision.choice
        if isinstance(choice, Rank1Choice):
            record = StepRecord(
                variable=variable.name,
                value=choice.value,
                events=(events[0].name,),
                increases=(choice.increase,),
                slack=choice.slack,
                num_good_values=choice.num_good_values,
                num_values=variable.num_values,
            )
        else:
            event_u, event_v = events
            weights = self._edge_weights[
                frozenset((event_u.name, event_v.name))
            ]
            weights[event_u.name] = choice.new_weights[0]
            weights[event_v.name] = choice.new_weights[1]
            record = StepRecord(
                variable=variable.name,
                value=choice.value,
                events=(event_u.name, event_v.name),
                increases=choice.increases,
                slack=choice.slack,
                num_good_values=choice.num_good_values,
                num_values=variable.num_values,
            )
        self._assignment.fix(variable, choice.value)
        self._steps.append(record)
        if recorder is not None:
            rank = len(record.events)
            recorder.record_span(
                "fixer.rank2", "commit", time.perf_counter_ns() - start
            )
            recorder.count("fixer.rank2", f"rank{rank}_fixes")
            recorder.observe("fixer.rank2", "step_slack", record.slack)
            recorder.event(
                "fixer.rank2",
                "fix",
                step=len(self._steps) - 1,
                variable=record.variable,
                value=record.value,
                rank=rank,
                slack=record.slack,
                num_good_values=record.num_good_values,
                num_values=record.num_values,
            )
        if self._validate:
            self.check_invariant()
        return record

    def fix_variable(self, variable_name: Hashable) -> StepRecord:
        """Fix one variable, preserving the bookkeeping invariant.

        Equivalent to ``commit(decide(variable_name))``; kept as the
        single-call entry point the serial paths use.
        """
        recorder = _obs_active()
        start = time.perf_counter_ns() if recorder is not None else 0
        record = self.commit(self.decide(variable_name))
        if recorder is not None:
            recorder.record_span(
                "fixer.rank2", "fix", time.perf_counter_ns() - start
            )
        return record

    # ------------------------------------------------------------------
    # Whole-class batch decisions (the vector decide plane)
    # ------------------------------------------------------------------
    def decide_class(self, cells) -> Optional[List[list]]:
        """Batched pure decide for a whole color class.

        Returns one choice list per cell (choices in op order), computed
        on the vector plane (:mod:`repro.core.vector`) and bit-identical
        to looping :meth:`decide`/:meth:`commit` over the class in plan
        order.  ``None`` means the class is not vectorizable (scalar
        decide mode, events without compiled kernels) and the caller
        should keep its per-op loop.  Never mutates the fixer's
        bookkeeping state; the speculative run state it parks is
        confirmed or discarded by :meth:`commit_class`.
        """
        from repro.core import vector

        return vector.decide_class_choices(
            self, "rank2", cells, self._instance, self._edge_weights
        )

    def commit_class(self, cells, class_choices) -> None:
        """Commit a class's worth of decided choices, in plan order.

        With a recorder attached, invariant validation on, or no pending
        run state for this class, defers to the full-fidelity
        :meth:`commit` per op; otherwise applies the same mutations
        through a lean loop over the template's resolved op records and
        the live ledger entries the decide resolved.
        """
        from repro.core import vector

        state = vector.cached_commit(self, cells)
        if self._validate or _obs_active() is not None or state is None:
            self._vector_state = None
            for cell, choices in zip(cells, class_choices):
                for op, choice in zip(cell.ops, choices):
                    variable = self._instance.variable(op.variable)
                    events = self._instance.events_of_variable(op.variable)
                    self.commit(
                        Decision(
                            variable=variable,
                            events=tuple(events),
                            choice=choice,
                        )
                    )
            return
        assignment = self._assignment
        steps = self._steps
        section = state.pending[1]
        refs = state.pending[2]
        for (_owner, ops), cell_refs, choices in zip(
            section.cells, refs, class_choices
        ):
            for op, ref, choice in zip(ops, cell_refs, choices):
                variable = op[vector.TOP_VARIABLE]
                names = op[vector.TOP_NAMES]
                if isinstance(choice, Rank1Choice):
                    record = make_step_record(
                        variable=variable.name,
                        value=choice.value,
                        events=(names[0],),
                        increases=(choice.increase,),
                        slack=choice.slack,
                        num_good_values=choice.num_good_values,
                        num_values=variable.num_values,
                    )
                else:
                    ref[names[0]] = choice.new_weights[0]
                    ref[names[1]] = choice.new_weights[1]
                    record = make_step_record(
                        variable=variable.name,
                        value=choice.value,
                        events=names,
                        increases=choice.increases,
                        slack=choice.slack,
                        num_good_values=choice.num_good_values,
                        num_values=variable.num_values,
                    )
                assignment.fix(variable, choice.value)
                steps.append(record)
        state.pending = None

    def run(self, order: Optional[Iterable[Hashable]] = None) -> FixingResult:
        """Fix every variable (in ``order`` if given) and return the result.

        The order may be any permutation of the variable names; Theorem 1.1
        guarantees success for all of them.
        """
        if order is None:
            order = [variable.name for variable in self._instance.variables]
        for name in order:
            self.fix_variable(name)
        remaining = [
            variable.name
            for variable in self._instance.variables
            if not self._assignment.is_fixed(variable.name)
        ]
        for name in remaining:
            self.fix_variable(name)
        result = FixingResult(
            assignment=self._assignment,
            steps=tuple(self._steps),
            certified_bounds=self.certified_bounds(),
        )
        recorder = _obs_active()
        if recorder is not None:
            recorder.event(
                "fixer.rank2",
                "run_complete",
                steps=result.num_steps,
                max_certified_bound=result.max_certified_bound,
                min_slack=result.min_slack,
            )
        return result

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def certified_bounds(self) -> Dict[Hashable, float]:
        """Per-event bound ``p_v * product of absorbed edge weights``."""
        bounds = {
            name: probability
            for name, probability in self._initial_probabilities.items()
        }
        for edge, weights in self._edge_weights.items():
            for node, weight in weights.items():
                bounds[node] *= weight
        return bounds

    def check_invariant(self) -> None:
        """Assert the Theorem-1.1 bookkeeping invariant.

        For every event: its conditional probability given the current
        partial assignment is at most its certified bound, and every edge's
        weight pair sums to at most 2.

        Raises
        ------
        PStarViolationError
            If either condition fails beyond numerical tolerance.
        """
        for edge, weights in self._edge_weights.items():
            total = sum(weights.values())
            if total > 2.0 + 1e-7:
                raise PStarViolationError(
                    f"edge {set(edge)!r}: weights sum to {total} > 2"
                )
        bounds = self.certified_bounds()
        for event in self._instance.events:
            conditional = event.probability(self._assignment)
            if conditional > bounds[event.name] + 1e-7:
                raise PStarViolationError(
                    f"event {event.name!r}: conditional probability "
                    f"{conditional} exceeds certified bound {bounds[event.name]}"
                )


def solve_rank2(
    instance: LLLInstance,
    order: Optional[Iterable[Hashable]] = None,
    require_criterion: bool = True,
) -> FixingResult:
    """Convenience wrapper: build a :class:`Rank2Fixer` and run it."""
    fixer = Rank2Fixer(instance, require_criterion=require_criterion)
    return fixer.run(order)
