"""Property P* bookkeeping (Definition 3.1 of the paper).

During the rank-3 fixing process, every edge ``e = {u, v}`` of the
dependency graph carries two non-negative values ``phi_e^u`` and
``phi_e^v`` with ``phi_e^u + phi_e^v <= 2``.  Property P* holds when,
additionally, every event's conditional probability (given the variables
fixed so far) is at most its initial probability times the product of the
values on its side of its incident edges.

The paper states the bound with the *global* maximum probability ``p``;
we track the per-event initial probability ``p_v`` instead, which is a
strictly stronger invariant maintained by exactly the same argument and
gives tighter certified bounds (``p_v * 2^deg(v)`` instead of
``p * 2^d``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Mapping, Tuple

from repro.errors import PStarViolationError
from repro.lll.instance import LLLInstance
from repro.obs.recorder import PHI_BUCKETS, active as _obs_active
from repro.probability import PartialAssignment

#: Tolerance for edge-sum and probability-bound checks.
PSTAR_TOLERANCE = 1e-7

EdgeKey = FrozenSet


def checked_edge_write(
    entry: Dict[Hashable, float],
    u: Hashable,
    v: Hashable,
    value_u: float,
    value_v: float,
) -> None:
    """Validate, clamp and write one edge's phi pair through a live entry.

    This is :meth:`PStarState.set_edge` minus the key lookup and
    recorder hooks; the vector decide plane's lean commit path calls it
    directly on edge entries resolved once per class, and ``set_edge``
    delegates here so the two paths cannot drift.

    Raises
    ------
    PStarViolationError
        If either value is outside ``[0, 2]`` or they sum to more than 2
        (beyond tolerance).  Values within tolerance are clamped so
        float dust cannot accumulate across steps.
    """
    for side, value in ((u, value_u), (v, value_v)):
        if value < -PSTAR_TOLERANCE or value > 2.0 + PSTAR_TOLERANCE:
            raise PStarViolationError(
                f"phi value {value} for edge {{{u!r}, {v!r}}} side "
                f"{side!r} is outside [0, 2]"
            )
    if value_u + value_v > 2.0 + PSTAR_TOLERANCE:
        raise PStarViolationError(
            f"edge {{{u!r}, {v!r}}}: values {value_u} + {value_v} > 2"
        )
    value_u = min(max(value_u, 0.0), 2.0)
    value_v = min(max(value_v, 0.0), 2.0)
    if value_u + value_v > 2.0:
        excess = value_u + value_v - 2.0
        if value_u >= value_v:
            value_u -= excess
        else:
            value_v -= excess
    entry[u] = value_u
    entry[v] = value_v


class PStarState:
    """The ``phi`` function of Definition 3.1, with validation helpers."""

    def __init__(self, instance: LLLInstance) -> None:
        self._instance = instance
        self._phi: Dict[EdgeKey, Dict[Hashable, float]] = {}
        for u, v in instance.dependency_graph.edges():
            self._phi[frozenset((u, v))] = {u: 1.0, v: 1.0}
        # Via the instance (and hence the artifact store's parameters
        # tier): same-shape instances share one probability enumeration.
        self._initial_probabilities = instance.event_probabilities()

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def initial_probabilities(self) -> Dict[Hashable, float]:
        """The unconditional probability of each event (a copy)."""
        return dict(self._initial_probabilities)

    @property
    def entries(self) -> Dict[EdgeKey, Dict[Hashable, float]]:
        """The live phi mapping, keyed by edge.

        Exposed for the batch decide plane, which snapshots whole color
        classes of edges at once; mutate through :meth:`set_edge` (or the
        fixers' equivalent validated commit paths), never directly.
        """
        return self._phi

    def edge_key(self, u: Hashable, v: Hashable) -> EdgeKey:
        """The canonical key for the dependency edge ``{u, v}``."""
        key = frozenset((u, v))
        if key not in self._phi:
            raise PStarViolationError(
                f"no dependency edge between {u!r} and {v!r}"
            )
        return key

    def value(self, u: Hashable, v: Hashable, side: Hashable) -> float:
        """``phi_e^side`` for ``e = {u, v}``; ``side`` must be an endpoint."""
        key = self.edge_key(u, v)
        try:
            return self._phi[key][side]
        except KeyError:
            raise PStarViolationError(
                f"{side!r} is not an endpoint of edge {{{u!r}, {v!r}}}"
            ) from None

    def node_product(self, node: Hashable) -> float:
        """``prod over e containing node of phi_e^node``."""
        product = 1.0
        for neighbor in self._instance.dependency_graph.neighbors(node):
            product *= self._phi[frozenset((node, neighbor))][node]
        return product

    def certified_bound(self, node: Hashable) -> float:
        """``p_node * node_product(node)``: the P* probability bound."""
        return self._initial_probabilities[node] * self.node_product(node)

    def certified_bounds(self) -> Dict[Hashable, float]:
        """The P* bound of every event."""
        return {
            event.name: self.certified_bound(event.name)
            for event in self._instance.events
        }

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def set_edge(
        self, u: Hashable, v: Hashable, value_u: float, value_v: float
    ) -> None:
        """Overwrite both values on edge ``{u, v}``.

        Raises
        ------
        PStarViolationError
            If either value is outside ``[0, 2]`` or they sum to more
            than 2 (beyond tolerance).  Values within tolerance are
            clamped so float dust cannot accumulate across steps.
        """
        key = self.edge_key(u, v)
        entry = self._phi[key]
        checked_edge_write(entry, u, v, value_u, value_v)
        recorder = _obs_active()
        if recorder is not None:
            recorder.count("pstar", "edge_updates")
            recorder.observe(
                "pstar",
                "edge_phi_sum",
                entry[u] + entry[v],
                bounds=PHI_BUCKETS,
            )

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check(self, assignment: PartialAssignment) -> None:
        """Assert property P* for the given partial assignment.

        Checks both subproperties of Definition 3.1: every edge's pair
        sums to at most 2, and every event's conditional probability is
        at most its certified bound.

        The per-event conditional probabilities are served by the active
        probability engine (compiled kernels by default), so a full P*
        audit costs one table query per event rather than one predicate
        enumeration — the check stays exact either way.

        Raises
        ------
        PStarViolationError
            If either subproperty fails beyond :data:`PSTAR_TOLERANCE`.
        """
        recorder = _obs_active()
        if recorder is not None:
            recorder.count("pstar", "invariant_checks")
        for key, sides in self._phi.items():
            total = sum(sides.values())
            if total > 2.0 + PSTAR_TOLERANCE:
                raise PStarViolationError(
                    f"edge {set(key)!r}: phi values sum to {total} > 2"
                )
        for event in self._instance.events:
            conditional = event.probability(assignment)
            bound = self.certified_bound(event.name)
            if conditional > bound + PSTAR_TOLERANCE:
                raise PStarViolationError(
                    f"event {event.name!r}: conditional probability "
                    f"{conditional} exceeds P* bound {bound}"
                )

    def snapshot(self) -> Dict[Tuple[Hashable, Hashable], float]:
        """A flat copy ``{(frozen edge, side): phi}`` for inspection/tests."""
        flat = {}
        for key, sides in self._phi.items():
            for side, value in sides.items():
                flat[(key, side)] = value
        return flat
