"""The rank-3 deterministic fixer (Theorem 1.3 / Corollary 1.4).

Variables may affect up to three bad events.  The fixer maintains
property P* (:class:`repro.core.pstar.PStarState`).  To fix a rank-3
variable on the event triangle ``{u, v, w}``:

1. read the current representable triple
   ``(a, b, c) = (phi_e^u phi_e'^u, phi_e^v phi_e''^v, phi_e'^w phi_e''^w)``,
2. for each candidate value ``y`` compute the exact increase triple
   ``(Inc(u,y), Inc(v,y), Inc(w,y))``,
3. keep the values whose scaled triple stays in ``S_rep`` — these are
   exactly the non-(a,b,c)-evil values of Definition 3.8, whose existence
   Lemma 3.2 guarantees via the incurvedness of ``S_rep`` —
4. fix the variable to the value with the largest representability
   margin and write the decomposition of the new triple back onto the
   three edges.

Rank-2 variables are handled by the weighted pair rule (the "weighted
version" discussed in Section 3.1): with current edge values ``(s, t)``
there is a value with ``s*Inc_u + t*Inc_v <= 2``, and the edge is updated
to ``(s*Inc_u, t*Inc_v)``.  Rank-1 variables take any value with
``Inc <= 1``.  This realises the paper's virtual-third-event reduction
without inflating the dependency graph.

The ``Inc`` ratios come from the batch
:meth:`~repro.probability.BadEvent.conditional_increases` API via
:mod:`repro.core.selection` — one query per affected event per step, a
single truth-table pass each under the compiled engine (see
``docs/engine.md``).
"""

from __future__ import annotations

import time
from typing import Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import PStarViolationError
from repro.obs.recorder import MARGIN_BUCKETS, active as _obs_active
from repro.lll.instance import LLLInstance
from repro.lll.verify import check_preconditions
from repro.core.pstar import PStarState, checked_edge_write
from repro.core.results import FixingResult, StepRecord, make_step_record
from repro.core.selection import (
    MEMBERSHIP_TOLERANCE,
    Decision,
    Rank1Choice,
    Rank2Choice,
    select_rank1,
    select_rank2,
    select_rank3,
)
from repro.probability import DiscreteVariable, PartialAssignment


class Rank3Fixer:
    """Sequential deterministic fixer for instances of rank at most 3.

    Parameters
    ----------
    instance:
        The LLL instance.  Every variable must affect at most three events.
    require_criterion:
        If True (default), reject instances violating ``p < 2^-d``.
        Disable to probe behaviour at the threshold, where
        :class:`NoGoodValueError` may legitimately occur.
    validate_invariant:
        If True, assert property P* after every fixing step (slow; used
        by tests).
    """

    def __init__(
        self,
        instance: LLLInstance,
        require_criterion: bool = True,
        validate_invariant: bool = False,
    ) -> None:
        self._instance = instance
        check_preconditions(
            instance, max_rank=3, require_criterion=require_criterion
        )
        self._validate = validate_invariant
        self._assignment = PartialAssignment()
        self._pstar = PStarState(instance)
        self._steps: List[StepRecord] = []

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def assignment(self) -> PartialAssignment:
        """The (partial) assignment built so far."""
        return self._assignment

    @property
    def pstar(self) -> PStarState:
        """The live property-P* bookkeeping state."""
        return self._pstar

    @property
    def steps(self) -> Tuple[StepRecord, ...]:
        """Trace of fixing steps performed so far."""
        return tuple(self._steps)

    def is_fixed(self, variable_name: Hashable) -> bool:
        """Whether the named variable has already been fixed."""
        return self._assignment.is_fixed(variable_name)

    # ------------------------------------------------------------------
    # Fixing
    # ------------------------------------------------------------------
    def local_weights(self, events: Sequence) -> Tuple[float, ...]:
        """The phi-ledger values a decision on ``events`` reads.

        ``()`` for rank 1, the edge pair ``(phi_e^u, phi_e^v)`` for rank
        2, the representable triple ``(a, b, c)`` for rank 3.  A decision
        depends on nothing else, which is what makes batched decision
        memoization sound.
        """
        if len(events) == 1:
            return ()
        if len(events) == 2:
            u, v = events[0].name, events[1].name
            return (self._pstar.value(u, v, u), self._pstar.value(u, v, v))
        u, v, w = (event.name for event in events)
        return (
            self._pstar.value(u, v, u) * self._pstar.value(u, w, u),
            self._pstar.value(u, v, v) * self._pstar.value(v, w, v),
            self._pstar.value(u, w, w) * self._pstar.value(v, w, w),
        )

    def decide(self, variable_name: Hashable) -> Decision:
        """Compute (without committing) the fixing decision for a variable.

        Pure with respect to the phi ledger: repeated calls return the
        same decision until a :meth:`commit` changes the state.  Raises
        :class:`NoGoodValueError` when every value is evil — which
        Lemma 3.2 proves impossible while P* holds.
        """
        if self._assignment.is_fixed(variable_name):
            raise PStarViolationError(
                f"variable {variable_name!r} is already fixed"
            )
        variable = self._instance.variable(variable_name)
        events = self._instance.events_of_variable(variable_name)
        weights = self.local_weights(events)
        if len(events) == 1:
            choice = select_rank1(variable, events[0], self._assignment)
        elif len(events) == 2:
            choice = select_rank2(
                variable, events, weights, self._assignment
            )
        else:
            choice = select_rank3(
                variable, events, weights, self._assignment
            )
        return Decision(
            variable=variable, events=tuple(events), choice=choice
        )

    def commit(self, decision: Decision) -> StepRecord:
        """Apply a decision: update the phi ledger, assignment and trace."""
        recorder = _obs_active()
        start = time.perf_counter_ns() if recorder is not None else 0
        variable = decision.variable
        events = decision.events
        choice = decision.choice
        if isinstance(choice, Rank1Choice):
            record = StepRecord(
                variable=variable.name,
                value=choice.value,
                events=(events[0].name,),
                increases=(choice.increase,),
                slack=choice.slack,
                num_good_values=choice.num_good_values,
                num_values=variable.num_values,
            )
        elif isinstance(choice, Rank2Choice):
            u, v = events[0].name, events[1].name
            self._pstar.set_edge(u, v, *choice.new_weights)
            record = StepRecord(
                variable=variable.name,
                value=choice.value,
                events=(u, v),
                increases=choice.increases,
                slack=choice.slack,
                num_good_values=choice.num_good_values,
                num_values=variable.num_values,
            )
        else:
            u, v, w = (event.name for event in events)
            decomposition = choice.decomposition
            self._pstar.set_edge(u, v, decomposition.a1, decomposition.b1)
            self._pstar.set_edge(u, w, decomposition.a2, decomposition.c2)
            self._pstar.set_edge(v, w, decomposition.b3, decomposition.c3)
            record = StepRecord(
                variable=variable.name,
                value=choice.value,
                events=(u, v, w),
                increases=choice.increases,
                slack=max(choice.margin, 0.0),
                num_good_values=choice.num_good_values,
                num_values=variable.num_values,
            )
        self._assignment.fix(variable, choice.value)
        self._steps.append(record)
        if recorder is not None:
            rank = len(record.events)
            recorder.record_span(
                "fixer.rank3", "commit", time.perf_counter_ns() - start
            )
            recorder.count("fixer.rank3", f"rank{rank}_fixes")
            if rank == 3:
                recorder.observe(
                    "fixer.rank3",
                    "representability_margin",
                    record.slack,
                    bounds=MARGIN_BUCKETS,
                )
            recorder.event(
                "fixer.rank3",
                "fix",
                step=len(self._steps) - 1,
                variable=record.variable,
                value=record.value,
                rank=rank,
                slack=record.slack,
                num_good_values=record.num_good_values,
                num_values=record.num_values,
            )
        if self._validate:
            self._pstar.check(self._assignment)
        return record

    def fix_variable(self, variable_name: Hashable) -> StepRecord:
        """Fix one variable while preserving property P*.

        Equivalent to ``commit(decide(variable_name))``; kept as the
        single-call entry point the serial paths use.
        """
        recorder = _obs_active()
        start = time.perf_counter_ns() if recorder is not None else 0
        record = self.commit(self.decide(variable_name))
        if recorder is not None:
            recorder.record_span(
                "fixer.rank3", "fix", time.perf_counter_ns() - start
            )
        return record

    # ------------------------------------------------------------------
    # Whole-class batch decisions (the vector decide plane)
    # ------------------------------------------------------------------
    def decide_class(self, cells) -> Optional[List[list]]:
        """Batched pure decide for a whole color class.

        Returns one choice list per cell (choices in op order), computed
        on the vector plane (:mod:`repro.core.vector`) and bit-identical
        to looping :meth:`decide`/:meth:`commit` over the class in plan
        order.  ``None`` means the class is not vectorizable (scalar
        decide mode, events without compiled kernels) and the caller
        should keep its per-op loop.  Never mutates the fixer's
        bookkeeping state; the speculative run state it parks is
        confirmed or discarded by :meth:`commit_class`.
        """
        from repro.core import vector

        return vector.decide_class_choices(
            self, "rank3", cells, self._instance, self._pstar.entries
        )

    def commit_class(self, cells, class_choices) -> None:
        """Commit a class's worth of decided choices, in plan order.

        With a recorder attached, invariant validation on, or no pending
        run state for this class, defers to the full-fidelity
        :meth:`commit` per op; otherwise applies the same mutations
        through a lean loop over the template's resolved op records.
        Phi values that are certainly in range (non-negative pairs
        summing to at most 2 — the common case) are written directly;
        anything else goes through
        :func:`repro.core.pstar.checked_edge_write`, so validation,
        clamping and error messages match :meth:`PStarState.set_edge`
        exactly, and the run state's flat ledger is re-synced with the
        clamped values.
        """
        from repro.core import vector

        state = vector.cached_commit(self, cells)
        if self._validate or _obs_active() is not None or state is None:
            self._vector_state = None
            for cell, choices in zip(cells, class_choices):
                for op, choice in zip(cell.ops, choices):
                    variable = self._instance.variable(op.variable)
                    events = self._instance.events_of_variable(op.variable)
                    self.commit(
                        Decision(
                            variable=variable,
                            events=tuple(events),
                            choice=choice,
                        )
                    )
            return
        assignment = self._assignment
        steps = self._steps
        phi = state.phi
        section = state.pending[1]
        refs = state.pending[2]
        for (_owner, ops), cell_refs, choices in zip(
            section.cells, refs, class_choices
        ):
            for op, ref, choice in zip(ops, cell_refs, choices):
                variable = op[vector.TOP_VARIABLE]
                names = op[vector.TOP_NAMES]
                if isinstance(choice, Rank1Choice):
                    record = make_step_record(
                        variable=variable.name,
                        value=choice.value,
                        events=(names[0],),
                        increases=(choice.increase,),
                        slack=choice.slack,
                        num_good_values=choice.num_good_values,
                        num_values=variable.num_values,
                    )
                elif isinstance(choice, Rank2Choice):
                    u, v = names
                    value_u, value_v = choice.new_weights
                    if (
                        value_u >= 0.0
                        and value_v >= 0.0
                        and value_u + value_v <= 2.0
                    ):
                        ref[u] = value_u
                        ref[v] = value_v
                    else:
                        checked_edge_write(ref, u, v, value_u, value_v)
                        slots = op[vector.TOP_APPLY]
                        phi[slots[0]] = ref[u]
                        phi[slots[1]] = ref[v]
                    record = make_step_record(
                        variable=variable.name,
                        value=choice.value,
                        events=names,
                        increases=choice.increases,
                        slack=choice.slack,
                        num_good_values=choice.num_good_values,
                        num_values=variable.num_values,
                    )
                else:
                    u, v, w = names
                    entry_uv, entry_uw, entry_vw = ref
                    decomposition = choice.decomposition
                    a1 = decomposition.a1
                    b1 = decomposition.b1
                    a2 = decomposition.a2
                    c2 = decomposition.c2
                    b3 = decomposition.b3
                    c3 = decomposition.c3
                    if (
                        a1 >= 0.0
                        and b1 >= 0.0
                        and a1 + b1 <= 2.0
                        and a2 >= 0.0
                        and c2 >= 0.0
                        and a2 + c2 <= 2.0
                        and b3 >= 0.0
                        and c3 >= 0.0
                        and b3 + c3 <= 2.0
                    ):
                        entry_uv[u] = a1
                        entry_uv[v] = b1
                        entry_uw[u] = a2
                        entry_uw[w] = c2
                        entry_vw[v] = b3
                        entry_vw[w] = c3
                    else:
                        checked_edge_write(entry_uv, u, v, a1, b1)
                        checked_edge_write(entry_uw, u, w, a2, c2)
                        checked_edge_write(entry_vw, v, w, b3, c3)
                        slots = op[vector.TOP_APPLY]
                        phi[slots[0]] = entry_uv[u]
                        phi[slots[1]] = entry_uv[v]
                        phi[slots[2]] = entry_uw[u]
                        phi[slots[3]] = entry_uw[w]
                        phi[slots[4]] = entry_vw[v]
                        phi[slots[5]] = entry_vw[w]
                    record = make_step_record(
                        variable=variable.name,
                        value=choice.value,
                        events=names,
                        increases=choice.increases,
                        slack=max(choice.margin, 0.0),
                        num_good_values=choice.num_good_values,
                        num_values=variable.num_values,
                    )
                assignment.fix(variable, choice.value)
                steps.append(record)
        state.pending = None

    def run(self, order: Optional[Iterable[Hashable]] = None) -> FixingResult:
        """Fix every variable (in ``order`` if given) and return the result."""
        if order is None:
            order = [variable.name for variable in self._instance.variables]
        for name in order:
            self.fix_variable(name)
        remaining = [
            variable.name
            for variable in self._instance.variables
            if not self._assignment.is_fixed(variable.name)
        ]
        for name in remaining:
            self.fix_variable(name)
        result = FixingResult(
            assignment=self._assignment,
            steps=tuple(self._steps),
            certified_bounds=self._pstar.certified_bounds(),
        )
        recorder = _obs_active()
        if recorder is not None:
            recorder.event(
                "fixer.rank3",
                "run_complete",
                steps=result.num_steps,
                max_certified_bound=result.max_certified_bound,
                min_slack=result.min_slack,
            )
        return result


def solve_rank3(
    instance: LLLInstance,
    order: Optional[Iterable[Hashable]] = None,
    require_criterion: bool = True,
) -> FixingResult:
    """Convenience wrapper: build a :class:`Rank3Fixer` and run it."""
    fixer = Rank3Fixer(instance, require_criterion=require_criterion)
    return fixer.run(order)
