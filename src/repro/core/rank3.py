"""The rank-3 deterministic fixer (Theorem 1.3 / Corollary 1.4).

Variables may affect up to three bad events.  The fixer maintains
property P* (:class:`repro.core.pstar.PStarState`).  To fix a rank-3
variable on the event triangle ``{u, v, w}``:

1. read the current representable triple
   ``(a, b, c) = (phi_e^u phi_e'^u, phi_e^v phi_e''^v, phi_e'^w phi_e''^w)``,
2. for each candidate value ``y`` compute the exact increase triple
   ``(Inc(u,y), Inc(v,y), Inc(w,y))``,
3. keep the values whose scaled triple stays in ``S_rep`` — these are
   exactly the non-(a,b,c)-evil values of Definition 3.8, whose existence
   Lemma 3.2 guarantees via the incurvedness of ``S_rep`` —
4. fix the variable to the value with the largest representability
   margin and write the decomposition of the new triple back onto the
   three edges.

Rank-2 variables are handled by the weighted pair rule (the "weighted
version" discussed in Section 3.1): with current edge values ``(s, t)``
there is a value with ``s*Inc_u + t*Inc_v <= 2``, and the edge is updated
to ``(s*Inc_u, t*Inc_v)``.  Rank-1 variables take any value with
``Inc <= 1``.  This realises the paper's virtual-third-event reduction
without inflating the dependency graph.

The ``Inc`` ratios come from the batch
:meth:`~repro.probability.BadEvent.conditional_increases` API via
:mod:`repro.core.selection` — one query per affected event per step, a
single truth-table pass each under the compiled engine (see
``docs/engine.md``).
"""

from __future__ import annotations

import time
from typing import Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import PStarViolationError
from repro.obs.recorder import MARGIN_BUCKETS, active as _obs_active
from repro.lll.instance import LLLInstance
from repro.lll.verify import check_preconditions
from repro.core.pstar import PStarState
from repro.core.results import FixingResult, StepRecord
from repro.core.selection import (
    MEMBERSHIP_TOLERANCE,
    Decision,
    Rank1Choice,
    Rank2Choice,
    select_rank1,
    select_rank2,
    select_rank3,
)
from repro.probability import DiscreteVariable, PartialAssignment


class Rank3Fixer:
    """Sequential deterministic fixer for instances of rank at most 3.

    Parameters
    ----------
    instance:
        The LLL instance.  Every variable must affect at most three events.
    require_criterion:
        If True (default), reject instances violating ``p < 2^-d``.
        Disable to probe behaviour at the threshold, where
        :class:`NoGoodValueError` may legitimately occur.
    validate_invariant:
        If True, assert property P* after every fixing step (slow; used
        by tests).
    """

    def __init__(
        self,
        instance: LLLInstance,
        require_criterion: bool = True,
        validate_invariant: bool = False,
    ) -> None:
        self._instance = instance
        check_preconditions(
            instance, max_rank=3, require_criterion=require_criterion
        )
        self._validate = validate_invariant
        self._assignment = PartialAssignment()
        self._pstar = PStarState(instance)
        self._steps: List[StepRecord] = []

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def assignment(self) -> PartialAssignment:
        """The (partial) assignment built so far."""
        return self._assignment

    @property
    def pstar(self) -> PStarState:
        """The live property-P* bookkeeping state."""
        return self._pstar

    @property
    def steps(self) -> Tuple[StepRecord, ...]:
        """Trace of fixing steps performed so far."""
        return tuple(self._steps)

    def is_fixed(self, variable_name: Hashable) -> bool:
        """Whether the named variable has already been fixed."""
        return self._assignment.is_fixed(variable_name)

    # ------------------------------------------------------------------
    # Fixing
    # ------------------------------------------------------------------
    def local_weights(self, events: Sequence) -> Tuple[float, ...]:
        """The phi-ledger values a decision on ``events`` reads.

        ``()`` for rank 1, the edge pair ``(phi_e^u, phi_e^v)`` for rank
        2, the representable triple ``(a, b, c)`` for rank 3.  A decision
        depends on nothing else, which is what makes batched decision
        memoization sound.
        """
        if len(events) == 1:
            return ()
        if len(events) == 2:
            u, v = events[0].name, events[1].name
            return (self._pstar.value(u, v, u), self._pstar.value(u, v, v))
        u, v, w = (event.name for event in events)
        return (
            self._pstar.value(u, v, u) * self._pstar.value(u, w, u),
            self._pstar.value(u, v, v) * self._pstar.value(v, w, v),
            self._pstar.value(u, w, w) * self._pstar.value(v, w, w),
        )

    def decide(self, variable_name: Hashable) -> Decision:
        """Compute (without committing) the fixing decision for a variable.

        Pure with respect to the phi ledger: repeated calls return the
        same decision until a :meth:`commit` changes the state.  Raises
        :class:`NoGoodValueError` when every value is evil — which
        Lemma 3.2 proves impossible while P* holds.
        """
        if self._assignment.is_fixed(variable_name):
            raise PStarViolationError(
                f"variable {variable_name!r} is already fixed"
            )
        variable = self._instance.variable(variable_name)
        events = self._instance.events_of_variable(variable_name)
        weights = self.local_weights(events)
        if len(events) == 1:
            choice = select_rank1(variable, events[0], self._assignment)
        elif len(events) == 2:
            choice = select_rank2(
                variable, events, weights, self._assignment
            )
        else:
            choice = select_rank3(
                variable, events, weights, self._assignment
            )
        return Decision(
            variable=variable, events=tuple(events), choice=choice
        )

    def commit(self, decision: Decision) -> StepRecord:
        """Apply a decision: update the phi ledger, assignment and trace."""
        recorder = _obs_active()
        start = time.perf_counter_ns() if recorder is not None else 0
        variable = decision.variable
        events = decision.events
        choice = decision.choice
        if isinstance(choice, Rank1Choice):
            record = StepRecord(
                variable=variable.name,
                value=choice.value,
                events=(events[0].name,),
                increases=(choice.increase,),
                slack=choice.slack,
                num_good_values=choice.num_good_values,
                num_values=variable.num_values,
            )
        elif isinstance(choice, Rank2Choice):
            u, v = events[0].name, events[1].name
            self._pstar.set_edge(u, v, *choice.new_weights)
            record = StepRecord(
                variable=variable.name,
                value=choice.value,
                events=(u, v),
                increases=choice.increases,
                slack=choice.slack,
                num_good_values=choice.num_good_values,
                num_values=variable.num_values,
            )
        else:
            u, v, w = (event.name for event in events)
            decomposition = choice.decomposition
            self._pstar.set_edge(u, v, decomposition.a1, decomposition.b1)
            self._pstar.set_edge(u, w, decomposition.a2, decomposition.c2)
            self._pstar.set_edge(v, w, decomposition.b3, decomposition.c3)
            record = StepRecord(
                variable=variable.name,
                value=choice.value,
                events=(u, v, w),
                increases=choice.increases,
                slack=max(choice.margin, 0.0),
                num_good_values=choice.num_good_values,
                num_values=variable.num_values,
            )
        self._assignment.fix(variable, choice.value)
        self._steps.append(record)
        if recorder is not None:
            rank = len(record.events)
            recorder.record_span(
                "fixer.rank3", "commit", time.perf_counter_ns() - start
            )
            recorder.count("fixer.rank3", f"rank{rank}_fixes")
            if rank == 3:
                recorder.observe(
                    "fixer.rank3",
                    "representability_margin",
                    record.slack,
                    bounds=MARGIN_BUCKETS,
                )
            recorder.event(
                "fixer.rank3",
                "fix",
                step=len(self._steps) - 1,
                variable=record.variable,
                value=record.value,
                rank=rank,
                slack=record.slack,
                num_good_values=record.num_good_values,
                num_values=record.num_values,
            )
        if self._validate:
            self._pstar.check(self._assignment)
        return record

    def fix_variable(self, variable_name: Hashable) -> StepRecord:
        """Fix one variable while preserving property P*.

        Equivalent to ``commit(decide(variable_name))``; kept as the
        single-call entry point the serial paths use.
        """
        recorder = _obs_active()
        start = time.perf_counter_ns() if recorder is not None else 0
        record = self.commit(self.decide(variable_name))
        if recorder is not None:
            recorder.record_span(
                "fixer.rank3", "fix", time.perf_counter_ns() - start
            )
        return record

    def run(self, order: Optional[Iterable[Hashable]] = None) -> FixingResult:
        """Fix every variable (in ``order`` if given) and return the result."""
        if order is None:
            order = [variable.name for variable in self._instance.variables]
        for name in order:
            self.fix_variable(name)
        remaining = [
            variable.name
            for variable in self._instance.variables
            if not self._assignment.is_fixed(variable.name)
        ]
        for name in remaining:
            self.fix_variable(name)
        result = FixingResult(
            assignment=self._assignment,
            steps=tuple(self._steps),
            certified_bounds=self._pstar.certified_bounds(),
        )
        recorder = _obs_active()
        if recorder is not None:
            recorder.event(
                "fixer.rank3",
                "run_complete",
                steps=result.num_steps,
                max_certified_bound=result.max_certified_bound,
                min_slack=result.min_slack,
            )
        return result


def solve_rank3(
    instance: LLLInstance,
    order: Optional[Iterable[Hashable]] = None,
    require_criterion: bool = True,
) -> FixingResult:
    """Convenience wrapper: build a :class:`Rank3Fixer` and run it."""
    fixer = Rank3Fixer(instance, require_criterion=require_criterion)
    return fixer.run(order)
