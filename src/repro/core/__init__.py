"""The paper's primary contribution (S4-S6, S9).

Deterministic LLL fixers below the exponential threshold ``p < 2^-d``:

* :class:`Rank2Fixer` / :func:`solve_rank2` — Theorem 1.1,
* :class:`Rank3Fixer` / :func:`solve_rank3` — Theorem 1.3 via property P*
  (:class:`PStarState`) and the Variable Fixing Lemma,
* :func:`solve` — rank-dispatching sequential driver with static orders
  and adaptive adversaries,
* :mod:`repro.core.distributed` — the LOCAL-model algorithms of
  Corollaries 1.2 and 1.4 (imported lazily to keep the sequential API
  free of simulator dependencies).
"""

from repro.core.distributed import (
    DistributedResult,
    solve_distributed,
    solve_distributed_rank2,
    solve_distributed_rank3,
)
from repro.core.audit import (
    AuditReport,
    audit_trace,
    certify_recovery,
    run_audit,
)
from repro.core.indexing import indexed_csr, indexed_dependency_network
from repro.core.local_protocol import (
    LocalFixingProtocol,
    solve_distributed_local,
)
from repro.core.local_verify import (
    LocalVerificationAlgorithm,
    verify_distributed,
)
from repro.core.naive_rankr import (
    NaiveRankRFixer,
    check_naive_criterion,
    naive_threshold,
    solve_naive,
)
from repro.core.pstar import PStarState, PSTAR_TOLERANCE
from repro.core.selection import (
    Rank1Choice,
    Rank2Choice,
    Rank3Choice,
    RankRChoice,
    select_rank1,
    select_rank2,
    select_rank3,
    select_rankr,
)
from repro.core.rank2 import Rank2Fixer, solve_rank2
from repro.core.rank3 import Rank3Fixer, solve_rank3
from repro.core.results import FixingResult, StepRecord
from repro.core.sequential import (
    construction_order,
    interleaved_order,
    lexicographic_chooser,
    make_random_chooser,
    max_pressure_chooser,
    min_pressure_chooser,
    random_order,
    reversed_order,
    run_with_adversary,
    solve,
)

__all__ = [
    "AuditReport",
    "DistributedResult",
    "audit_trace",
    "certify_recovery",
    "run_audit",
    "FixingResult",
    "LocalFixingProtocol",
    "LocalVerificationAlgorithm",
    "verify_distributed",
    "NaiveRankRFixer",
    "Rank1Choice",
    "Rank2Choice",
    "Rank3Choice",
    "check_naive_criterion",
    "indexed_csr",
    "indexed_dependency_network",
    "naive_threshold",
    "RankRChoice",
    "select_rank1",
    "select_rank2",
    "select_rank3",
    "select_rankr",
    "solve_distributed_local",
    "solve_naive",
    "PSTAR_TOLERANCE",
    "PStarState",
    "Rank2Fixer",
    "Rank3Fixer",
    "StepRecord",
    "construction_order",
    "interleaved_order",
    "lexicographic_chooser",
    "make_random_chooser",
    "max_pressure_chooser",
    "min_pressure_chooser",
    "random_order",
    "reversed_order",
    "run_with_adversary",
    "solve",
    "solve_distributed",
    "solve_distributed_rank2",
    "solve_distributed_rank3",
    "solve_rank2",
    "solve_rank3",
]
