"""Sequential drivers and fixing-order strategies.

Theorems 1.1 and 1.3 hold for *any* order in which the variables are
fixed, including orders chosen by an adaptive adversary that inspects the
fixer's bookkeeping.  This module provides static orders, adaptive
adversaries, and a top-level :func:`solve` that dispatches to the right
fixer by instance rank.
"""

from __future__ import annotations

import random
from typing import Callable, Hashable, Iterable, List, Optional, Sequence, Union

from repro.errors import RankViolationError
from repro.lll.instance import LLLInstance
from repro.obs.recorder import active as _obs_active, span as _obs_span
from repro.core.rank2 import Rank2Fixer
from repro.core.rank3 import Rank3Fixer
from repro.core.results import FixingResult

Fixer = Union[Rank2Fixer, Rank3Fixer]
#: An adaptive adversary: given the live fixer and the unfixed variable
#: names, return the name to fix next.
Chooser = Callable[[Fixer, Sequence[Hashable]], Hashable]


# ----------------------------------------------------------------------
# Static orders
# ----------------------------------------------------------------------
def construction_order(instance: LLLInstance) -> List[Hashable]:
    """Variable names in instance-construction order."""
    return [variable.name for variable in instance.variables]


def reversed_order(instance: LLLInstance) -> List[Hashable]:
    """Construction order, reversed."""
    return list(reversed(construction_order(instance)))


def random_order(instance: LLLInstance, rng: random.Random) -> List[Hashable]:
    """A uniformly random permutation of the variable names."""
    order = construction_order(instance)
    rng.shuffle(order)
    return order


def interleaved_order(instance: LLLInstance, stride: int = 2) -> List[Hashable]:
    """Construction order visited with a stride (a simple 'scattered' order)."""
    order = construction_order(instance)
    result = []
    for offset in range(stride):
        result.extend(order[offset::stride])
    return result


# ----------------------------------------------------------------------
# Adaptive adversaries
# ----------------------------------------------------------------------
def max_pressure_chooser(fixer: Fixer, unfixed: Sequence[Hashable]) -> Hashable:
    """Pick the variable whose events carry the largest certified bounds.

    This adversary always pokes the most-stressed part of the bookkeeping,
    trying to drive some event's certified bound toward 1.
    """
    bounds = _current_bounds(fixer)
    instance = _instance_of(fixer)

    def pressure(name: Hashable) -> float:
        return sum(
            bounds[event.name] for event in instance.events_of_variable(name)
        )

    return max(unfixed, key=lambda name: (pressure(name), repr(name)))


def min_pressure_chooser(fixer: Fixer, unfixed: Sequence[Hashable]) -> Hashable:
    """Pick the variable whose events carry the smallest certified bounds."""
    bounds = _current_bounds(fixer)
    instance = _instance_of(fixer)

    def pressure(name: Hashable) -> float:
        return sum(
            bounds[event.name] for event in instance.events_of_variable(name)
        )

    return min(unfixed, key=lambda name: (pressure(name), repr(name)))


def lexicographic_chooser(fixer: Fixer, unfixed: Sequence[Hashable]) -> Hashable:
    """Pick the lexicographically smallest unfixed variable name."""
    return min(unfixed, key=repr)


def make_random_chooser(rng: random.Random) -> Chooser:
    """An adversary that picks uniformly at random (for control runs)."""

    def chooser(fixer: Fixer, unfixed: Sequence[Hashable]) -> Hashable:
        return unfixed[rng.randrange(len(unfixed))]

    return chooser


def run_with_adversary(fixer: Fixer, chooser: Chooser) -> FixingResult:
    """Drive ``fixer`` to completion with an adaptive adversary.

    The adversary sees the live fixer (including its bookkeeping state)
    before every step — the strongest setting the theorems cover.
    """
    instance = _instance_of(fixer)
    unfixed = [
        variable.name
        for variable in instance.variables
        if not fixer.is_fixed(variable.name)
    ]
    while unfixed:
        name = chooser(fixer, unfixed)
        fixer.fix_variable(name)
        unfixed.remove(name)
    # run() with no order fixes nothing further and assembles the result.
    return fixer.run(order=())


# ----------------------------------------------------------------------
# Top-level dispatch
# ----------------------------------------------------------------------
def solve(
    instance: LLLInstance,
    order: Optional[Iterable[Hashable]] = None,
    chooser: Optional[Chooser] = None,
    require_criterion: bool = True,
    validate_invariant: bool = False,
    scheduler=None,
) -> FixingResult:
    """Solve an LLL instance with the appropriate deterministic fixer.

    Rank-1/2 instances use :class:`Rank2Fixer` (Theorem 1.1); rank-3
    instances use :class:`Rank3Fixer` (Theorem 1.3).  Exactly one of
    ``order`` (a static permutation) and ``chooser`` (an adaptive
    adversary) may be given; with neither, construction order is used.

    ``scheduler`` (a :class:`repro.runtime.Scheduler`) routes the static
    path through the execution plane: the order becomes a serial
    :class:`~repro.runtime.plan.FixPlan` (or, with no explicit order,
    the instance's color-class plan) executed by the given backend.
    Incompatible with ``chooser`` — an adaptive adversary is inherently
    one-at-a-time.

    Raises
    ------
    RankViolationError
        If the instance has rank greater than 3 — the regime the paper's
        Conjecture 1.5 leaves open.
    """
    if order is not None and chooser is not None:
        raise ValueError("pass either a static order or a chooser, not both")
    if scheduler is not None and chooser is not None:
        raise ValueError("a scheduler cannot execute an adaptive chooser")
    rank = instance.rank
    if rank <= 2:
        fixer: Fixer = Rank2Fixer(
            instance,
            require_criterion=require_criterion,
            validate_invariant=validate_invariant,
        )
    elif rank == 3:
        fixer = Rank3Fixer(
            instance,
            require_criterion=require_criterion,
            validate_invariant=validate_invariant,
        )
    else:
        raise RankViolationError(
            f"instance has rank {rank}; the paper's fixers support rank <= 3 "
            f"(Conjecture 1.5 covers larger ranks)"
        )
    recorder = _obs_active()
    if recorder is not None:
        recorder.event(
            "fixer",
            "solve_start",
            rank=rank,
            num_variables=len(instance.variables),
            num_events=len(instance.events),
            adaptive=chooser is not None,
        )
    with _obs_span("fixer", "solve"):
        if chooser is not None:
            result = run_with_adversary(fixer, chooser)
        elif scheduler is not None:
            from repro.runtime.plan import build_serial_plan, plan_for_instance

            if order is not None:
                plan = build_serial_plan(instance, list(order))
            else:
                plan = plan_for_instance(instance)
            scheduler.execute(fixer, plan, instance)
            result = fixer.run(order=())
        else:
            result = fixer.run(order)
    if recorder is not None:
        recorder.event(
            "fixer",
            "solve_end",
            rank=rank,
            steps=result.num_steps,
            max_certified_bound=result.max_certified_bound,
        )
    return result


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _instance_of(fixer: Fixer) -> LLLInstance:
    """The instance a fixer operates on (both fixers store it privately)."""
    return fixer._instance  # noqa: SLF001 - friend access within the package


def _current_bounds(fixer: Fixer):
    """Current certified bounds, regardless of fixer flavour."""
    if isinstance(fixer, Rank3Fixer):
        return fixer.pstar.certified_bounds()
    return fixer.certified_bounds()
