"""Pure value-selection rules shared by the fixers and the LOCAL protocol.

Each function takes the variable to fix, the affected events, the current
bookkeeping state and a partial assignment, and returns the chosen value
together with the realised increases and the updated bookkeeping — with
no side effects.  :class:`repro.core.rank3.Rank3Fixer` applies these to
its global state; :mod:`repro.core.local_protocol` applies them to each
node's purely local view, which is what makes the message-level
implementation faithful: the decision provably depends only on 1-hop
information.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Optional, Sequence, Tuple

from repro.errors import NoGoodValueError
from repro.geometry import (
    TripleDecomposition,
    decompose_triple,
    representability_margin,
)
from repro.probability import BadEvent, DiscreteVariable, PartialAssignment

#: Margin below which a candidate value counts as invariant-violating.
MEMBERSHIP_TOLERANCE = 1e-9


@dataclass(frozen=True)
class Decision:
    """A fully-resolved fixing decision, not yet committed.

    The fixers' ``decide``/``commit`` split (see
    :mod:`repro.runtime.schedulers`): ``decide`` computes one of these
    against the current bookkeeping without mutating anything, and
    ``commit`` applies it.  Scheduler backends may compute decisions out
    of band (memoized, or in a worker process) and commit them in a
    deterministic merge order.
    """

    #: The variable being fixed.
    variable: DiscreteVariable
    #: The affected events, in bookkeeping order.
    events: Tuple[BadEvent, ...]
    #: The selection outcome (:class:`Rank1Choice` / :class:`Rank2Choice`
    #: / :class:`Rank3Choice`, or a fixer-specific record).
    choice: object


@dataclass(frozen=True)
class Rank1Choice:
    """Outcome of selecting a value for a rank-1 variable."""

    value: Hashable
    increase: float
    slack: float
    num_good_values: int


@dataclass(frozen=True)
class Rank2Choice:
    """Outcome of selecting a value for a rank-2 variable."""

    value: Hashable
    increases: Tuple[float, float]
    #: The updated pair of edge weights (w_u * Inc_u, w_v * Inc_v).
    new_weights: Tuple[float, float]
    slack: float
    num_good_values: int


@dataclass(frozen=True)
class RankRChoice:
    """Outcome of selecting a value for an arbitrary-rank variable."""

    value: Hashable
    increases: Tuple[float, ...]
    #: The updated per-event hyperedge weights (w_v * Inc_v for each v).
    new_weights: Tuple[float, ...]
    slack: float
    num_good_values: int


@dataclass(frozen=True)
class Rank3Choice:
    """Outcome of selecting a value for a rank-3 variable."""

    value: Hashable
    increases: Tuple[float, float, float]
    #: The new representable triple realised by the decomposition.
    triple: Tuple[float, float, float]
    decomposition: TripleDecomposition
    margin: float
    num_good_values: int


def select_rank1(
    variable: DiscreteVariable,
    event: BadEvent,
    assignment: PartialAssignment,
) -> Rank1Choice:
    """Pick a value with ``Inc <= 1`` (exists by averaging).

    The ``Inc`` ratios of all candidate values come from one batch
    :meth:`~repro.probability.BadEvent.conditional_increases` query (a
    single table pass under the compiled engine); candidates are still
    scanned in support order, so ties break exactly as before.
    """
    best_value, best_inc, good = None, math.inf, 0
    incs = event.conditional_increases(assignment, variable)
    for value, _prob in variable.support_items():
        inc = incs[value]
        if inc <= 1.0 + MEMBERSHIP_TOLERANCE:
            good += 1
        if inc < best_inc:
            best_inc, best_value = inc, value
    if best_inc > 1.0 + MEMBERSHIP_TOLERANCE:
        raise NoGoodValueError(
            f"rank-1 variable {variable.name!r}: min Inc = {best_inc} > 1"
        )
    return Rank1Choice(
        value=best_value,
        increase=best_inc,
        slack=1.0 - best_inc,
        num_good_values=good,
    )


def select_rank2(
    variable: DiscreteVariable,
    events: Sequence[BadEvent],
    weights: Tuple[float, float],
    assignment: PartialAssignment,
) -> Rank2Choice:
    """The weighted pair rule: minimise ``w_u*Inc_u + w_v*Inc_v`` (<= 2)."""
    event_u, event_v = events
    weight_u, weight_v = weights
    best_value, best_total = None, math.inf
    best_incs: Tuple[float, float] = (math.inf, math.inf)
    good = 0
    incs_u = event_u.conditional_increases(assignment, variable)
    incs_v = event_v.conditional_increases(assignment, variable)
    for value, _prob in variable.support_items():
        inc_u = incs_u[value]
        inc_v = incs_v[value]
        total = weight_u * inc_u + weight_v * inc_v
        if total <= 2.0 + MEMBERSHIP_TOLERANCE:
            good += 1
        if total < best_total:
            best_total, best_value = total, value
            best_incs = (inc_u, inc_v)
    if best_total > 2.0 + MEMBERSHIP_TOLERANCE:
        raise NoGoodValueError(
            f"rank-2 variable {variable.name!r}: minimum weighted increase "
            f"{best_total} exceeds 2"
        )
    return Rank2Choice(
        value=best_value,
        increases=best_incs,
        new_weights=(weight_u * best_incs[0], weight_v * best_incs[1]),
        slack=2.0 - best_total,
        num_good_values=good,
    )


def select_rankr(
    variable: DiscreteVariable,
    events: Sequence[BadEvent],
    weights: Tuple[float, ...],
    assignment: PartialAssignment,
) -> RankRChoice:
    """The naive weighted-budget rule: minimise ``sum_v w_v * Inc_v``.

    The budget is ``sum_v w_v`` (at most the rank by the averaging
    argument); a value within budget exists whenever the naive criterion
    held at the start.
    """
    budget = sum(weights)
    best_value, best_total = None, math.inf
    best_incs: Tuple[float, ...] = ()
    good = 0
    incs_by_event = [
        event.conditional_increases(assignment, variable) for event in events
    ]
    for value, _prob in variable.support_items():
        incs = tuple(by_event[value] for by_event in incs_by_event)
        total = sum(weight * inc for weight, inc in zip(weights, incs))
        if total <= budget + MEMBERSHIP_TOLERANCE:
            good += 1
        if total < best_total:
            best_total, best_value = total, value
            best_incs = incs
    if best_total > budget + MEMBERSHIP_TOLERANCE:
        raise NoGoodValueError(
            f"variable {variable.name!r}: minimum weighted increase "
            f"{best_total} exceeds the budget {budget}"
        )
    return RankRChoice(
        value=best_value,
        increases=best_incs,
        new_weights=tuple(
            weight * inc for weight, inc in zip(weights, best_incs)
        ),
        slack=budget - best_total,
        num_good_values=good,
    )


def select_rank3(
    variable: DiscreteVariable,
    events: Sequence[BadEvent],
    triple: Tuple[float, float, float],
    assignment: PartialAssignment,
) -> Rank3Choice:
    """The Variable Fixing Lemma's selection: maximise the S_rep margin.

    ``triple`` is the current representable triple ``(a, b, c)`` of the
    three affected events on the triangle's edges; the chosen value's
    scaled triple is decomposed into new edge values.
    """
    event_u, event_v, event_w = events
    a, b, c = triple
    best_value = None
    best_margin = -math.inf
    best_triple: Tuple[float, float, float] = (math.inf,) * 3
    best_incs: Tuple[float, float, float] = (math.inf,) * 3
    good = 0
    incs_u = event_u.conditional_increases(assignment, variable)
    incs_v = event_v.conditional_increases(assignment, variable)
    incs_w = event_w.conditional_increases(assignment, variable)
    for value, _prob in variable.support_items():
        inc_u = incs_u[value]
        inc_v = incs_v[value]
        inc_w = incs_w[value]
        candidate = (inc_u * a, inc_v * b, inc_w * c)
        margin = representability_margin(*candidate)
        if margin >= -MEMBERSHIP_TOLERANCE:
            good += 1
        if margin > best_margin:
            best_margin = margin
            best_value = value
            best_triple = candidate
            best_incs = (inc_u, inc_v, inc_w)
    if best_margin < -MEMBERSHIP_TOLERANCE:
        raise NoGoodValueError(
            f"rank-3 variable {variable.name!r}: every value is "
            f"({a:.6g}, {b:.6g}, {c:.6g})-evil "
            f"(best margin {best_margin:.3g})"
        )
    decomposition = decompose_triple(
        *best_triple,
        tolerance=max(MEMBERSHIP_TOLERANCE, -best_margin + 1e-12),
    )
    return Rank3Choice(
        value=best_value,
        increases=best_incs,
        triple=best_triple,
        decomposition=decomposition,
        margin=best_margin,
        num_good_values=good,
    )
