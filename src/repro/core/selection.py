"""Pure value-selection rules shared by the fixers and the LOCAL protocol.

Each function takes the variable to fix, the affected events, the current
bookkeeping state and a partial assignment, and returns the chosen value
together with the realised increases and the updated bookkeeping — with
no side effects.  :class:`repro.core.rank3.Rank3Fixer` applies these to
its global state; :mod:`repro.core.local_protocol` applies them to each
node's purely local view, which is what makes the message-level
implementation faithful: the decision provably depends only on 1-hop
information.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.errors import NoGoodValueError
from repro.geometry import (
    TripleDecomposition,
    decompose_triple,
    representability_margin,
    representability_margin_array,
)
from repro.probability import BadEvent, DiscreteVariable, PartialAssignment

#: Margin below which a candidate value counts as invariant-violating.
MEMBERSHIP_TOLERANCE = 1e-9


@dataclass(frozen=True)
class Decision:
    """A fully-resolved fixing decision, not yet committed.

    The fixers' ``decide``/``commit`` split (see
    :mod:`repro.runtime.schedulers`): ``decide`` computes one of these
    against the current bookkeeping without mutating anything, and
    ``commit`` applies it.  Scheduler backends may compute decisions out
    of band (memoized, or in a worker process) and commit them in a
    deterministic merge order.
    """

    #: The variable being fixed.
    variable: DiscreteVariable
    #: The affected events, in bookkeeping order.
    events: Tuple[BadEvent, ...]
    #: The selection outcome (:class:`Rank1Choice` / :class:`Rank2Choice`
    #: / :class:`Rank3Choice`, or a fixer-specific record).
    choice: object


@dataclass(frozen=True)
class Rank1Choice:
    """Outcome of selecting a value for a rank-1 variable."""

    value: Hashable
    increase: float
    slack: float
    num_good_values: int


@dataclass(frozen=True)
class Rank2Choice:
    """Outcome of selecting a value for a rank-2 variable."""

    value: Hashable
    increases: Tuple[float, float]
    #: The updated pair of edge weights (w_u * Inc_u, w_v * Inc_v).
    new_weights: Tuple[float, float]
    slack: float
    num_good_values: int


@dataclass(frozen=True)
class RankRChoice:
    """Outcome of selecting a value for an arbitrary-rank variable."""

    value: Hashable
    increases: Tuple[float, ...]
    #: The updated per-event hyperedge weights (w_v * Inc_v for each v).
    new_weights: Tuple[float, ...]
    slack: float
    num_good_values: int


@dataclass(frozen=True)
class Rank3Choice:
    """Outcome of selecting a value for a rank-3 variable."""

    value: Hashable
    increases: Tuple[float, float, float]
    #: The new representable triple realised by the decomposition.
    triple: Tuple[float, float, float]
    decomposition: TripleDecomposition
    margin: float
    num_good_values: int


def select_rank1(
    variable: DiscreteVariable,
    event: BadEvent,
    assignment: PartialAssignment,
) -> Rank1Choice:
    """Pick a value with ``Inc <= 1`` (exists by averaging).

    The ``Inc`` ratios of all candidate values come from one batch
    :meth:`~repro.probability.BadEvent.conditional_increases` query (a
    single table pass under the compiled engine); candidates are still
    scanned in support order, so ties break exactly as before.
    """
    best_value, best_inc, good = None, math.inf, 0
    incs = event.conditional_increases(assignment, variable)
    for value, _prob in variable.support_items():
        inc = incs[value]
        if inc <= 1.0 + MEMBERSHIP_TOLERANCE:
            good += 1
        if inc < best_inc:
            best_inc, best_value = inc, value
    if best_inc > 1.0 + MEMBERSHIP_TOLERANCE:
        raise NoGoodValueError(
            f"rank-1 variable {variable.name!r}: min Inc = {best_inc} > 1"
        )
    return Rank1Choice(
        value=best_value,
        increase=best_inc,
        slack=1.0 - best_inc,
        num_good_values=good,
    )


def select_rank2(
    variable: DiscreteVariable,
    events: Sequence[BadEvent],
    weights: Tuple[float, float],
    assignment: PartialAssignment,
) -> Rank2Choice:
    """The weighted pair rule: minimise ``w_u*Inc_u + w_v*Inc_v`` (<= 2)."""
    event_u, event_v = events
    weight_u, weight_v = weights
    best_value, best_total = None, math.inf
    best_incs: Tuple[float, float] = (math.inf, math.inf)
    good = 0
    incs_u = event_u.conditional_increases(assignment, variable)
    incs_v = event_v.conditional_increases(assignment, variable)
    for value, _prob in variable.support_items():
        inc_u = incs_u[value]
        inc_v = incs_v[value]
        total = weight_u * inc_u + weight_v * inc_v
        if total <= 2.0 + MEMBERSHIP_TOLERANCE:
            good += 1
        if total < best_total:
            best_total, best_value = total, value
            best_incs = (inc_u, inc_v)
    if best_total > 2.0 + MEMBERSHIP_TOLERANCE:
        raise NoGoodValueError(
            f"rank-2 variable {variable.name!r}: minimum weighted increase "
            f"{best_total} exceeds 2"
        )
    return Rank2Choice(
        value=best_value,
        increases=best_incs,
        new_weights=(weight_u * best_incs[0], weight_v * best_incs[1]),
        slack=2.0 - best_total,
        num_good_values=good,
    )


def select_rankr(
    variable: DiscreteVariable,
    events: Sequence[BadEvent],
    weights: Tuple[float, ...],
    assignment: PartialAssignment,
) -> RankRChoice:
    """The naive weighted-budget rule: minimise ``sum_v w_v * Inc_v``.

    The budget is ``sum_v w_v`` (at most the rank by the averaging
    argument); a value within budget exists whenever the naive criterion
    held at the start.
    """
    budget = sum(weights)
    best_value, best_total = None, math.inf
    best_incs: Tuple[float, ...] = ()
    good = 0
    incs_by_event = [
        event.conditional_increases(assignment, variable) for event in events
    ]
    for value, _prob in variable.support_items():
        incs = tuple(by_event[value] for by_event in incs_by_event)
        total = sum(weight * inc for weight, inc in zip(weights, incs))
        if total <= budget + MEMBERSHIP_TOLERANCE:
            good += 1
        if total < best_total:
            best_total, best_value = total, value
            best_incs = incs
    if best_total > budget + MEMBERSHIP_TOLERANCE:
        raise NoGoodValueError(
            f"variable {variable.name!r}: minimum weighted increase "
            f"{best_total} exceeds the budget {budget}"
        )
    return RankRChoice(
        value=best_value,
        increases=best_incs,
        new_weights=tuple(
            weight * inc for weight, inc in zip(weights, best_incs)
        ),
        slack=budget - best_total,
        num_good_values=good,
    )


def select_rank3(
    variable: DiscreteVariable,
    events: Sequence[BadEvent],
    triple: Tuple[float, float, float],
    assignment: PartialAssignment,
) -> Rank3Choice:
    """The Variable Fixing Lemma's selection: maximise the S_rep margin.

    ``triple`` is the current representable triple ``(a, b, c)`` of the
    three affected events on the triangle's edges; the chosen value's
    scaled triple is decomposed into new edge values.
    """
    event_u, event_v, event_w = events
    a, b, c = triple
    best_value = None
    best_margin = -math.inf
    best_triple: Tuple[float, float, float] = (math.inf,) * 3
    best_incs: Tuple[float, float, float] = (math.inf,) * 3
    good = 0
    incs_u = event_u.conditional_increases(assignment, variable)
    incs_v = event_v.conditional_increases(assignment, variable)
    incs_w = event_w.conditional_increases(assignment, variable)
    for value, _prob in variable.support_items():
        inc_u = incs_u[value]
        inc_v = incs_v[value]
        inc_w = incs_w[value]
        candidate = (inc_u * a, inc_v * b, inc_w * c)
        margin = representability_margin(*candidate)
        if margin >= -MEMBERSHIP_TOLERANCE:
            good += 1
        if margin > best_margin:
            best_margin = margin
            best_value = value
            best_triple = candidate
            best_incs = (inc_u, inc_v, inc_w)
    if best_margin < -MEMBERSHIP_TOLERANCE:
        raise NoGoodValueError(
            f"rank-3 variable {variable.name!r}: every value is "
            f"({a:.6g}, {b:.6g}, {c:.6g})-evil "
            f"(best margin {best_margin:.3g})"
        )
    decomposition = decompose_triple(
        *best_triple,
        tolerance=max(MEMBERSHIP_TOLERANCE, -best_margin + 1e-12),
    )
    return Rank3Choice(
        value=best_value,
        increases=best_incs,
        triple=best_triple,
        decomposition=decomposition,
        margin=best_margin,
        num_good_values=good,
    )


# ----------------------------------------------------------------------
# Whole-class batch selection (the vector decide plane's fixer layer)
# ----------------------------------------------------------------------
# Each *_class function is the stacked counterpart of the scalar rule
# above it, applied to one wave of ops at once: ``incs_*`` matrices hold
# the Inc ratio of every candidate value of every op (``[N, S]``, padded
# columns masked out by ``mask``), the winner is a masked argmin/argmax
# (numpy's first-occurrence tie-break equals the scalar strict-inequality
# scan over support order), and the returned Choice objects are built
# from the winning lanes with the same scalar float arithmetic the
# per-op rules perform — so the choices are bit-identical.  On the first
# op without a good value the same NoGoodValueError is raised.


def select_rank1_class(
    variables: Sequence[DiscreteVariable],
    support_values: Sequence[Sequence[Hashable]],
    incs,
    mask,
) -> List[Rank1Choice]:
    """Stacked :func:`select_rank1` over one wave of rank-1 ops."""
    import numpy as np

    masked = np.where(mask, incs, math.inf)
    best = masked.argmin(axis=1)
    lanes = np.arange(len(variables))
    best_inc = masked[lanes, best]
    good = np.count_nonzero(
        mask & (incs <= 1.0 + MEMBERSHIP_TOLERANCE), axis=1
    )
    choices: List[Rank1Choice] = []
    for n, variable in enumerate(variables):
        inc = float(best_inc[n])
        if inc > 1.0 + MEMBERSHIP_TOLERANCE:
            raise NoGoodValueError(
                f"rank-1 variable {variable.name!r}: min Inc = {inc} > 1"
            )
        choices.append(
            Rank1Choice(
                value=support_values[n][int(best[n])],
                increase=inc,
                slack=1.0 - inc,
                num_good_values=int(good[n]),
            )
        )
    return choices


def select_rank2_class(
    variables: Sequence[DiscreteVariable],
    support_values: Sequence[Sequence[Hashable]],
    incs_u,
    incs_v,
    weights,
    mask,
) -> List[Rank2Choice]:
    """Stacked :func:`select_rank2` over one wave of rank-2 ops."""
    import numpy as np

    total = weights[:, 0:1] * incs_u + weights[:, 1:2] * incs_v
    masked = np.where(mask, total, math.inf)
    best = masked.argmin(axis=1)
    lanes = np.arange(len(variables))
    best_total = masked[lanes, best]
    good = np.count_nonzero(
        mask & (total <= 2.0 + MEMBERSHIP_TOLERANCE), axis=1
    )
    choices: List[Rank2Choice] = []
    for n, variable in enumerate(variables):
        chosen_total = float(best_total[n])
        if chosen_total > 2.0 + MEMBERSHIP_TOLERANCE:
            raise NoGoodValueError(
                f"rank-2 variable {variable.name!r}: minimum weighted "
                f"increase {chosen_total} exceeds 2"
            )
        j = int(best[n])
        inc_u = float(incs_u[n, j])
        inc_v = float(incs_v[n, j])
        weight_u = float(weights[n, 0])
        weight_v = float(weights[n, 1])
        choices.append(
            Rank2Choice(
                value=support_values[n][j],
                increases=(inc_u, inc_v),
                new_weights=(weight_u * inc_u, weight_v * inc_v),
                slack=2.0 - chosen_total,
                num_good_values=int(good[n]),
            )
        )
    return choices


def select_rankr_class(
    variables: Sequence[DiscreteVariable],
    support_values: Sequence[Sequence[Hashable]],
    incs_stack,
    weights,
    mask,
) -> List[RankRChoice]:
    """Stacked :func:`select_rankr` over one wave of equal-rank ops.

    ``incs_stack`` is a list of ``[N, S]`` matrices, one per affected
    event (every op of the wave must affect the same number of events);
    ``weights`` is ``[N, R]`` in the same event order.
    """
    import numpy as np

    count = len(variables)
    # Left-fold the weighted sums in event order, replicating the scalar
    # rule's ``sum(...)`` (which folds 0 + w_0*inc_0 + w_1*inc_1 + ...;
    # the leading 0 + x is exact for the non-negative terms involved).
    budget = np.zeros(count, dtype=np.float64)
    total = np.zeros((count, incs_stack[0].shape[1]), dtype=np.float64)
    for position, incs in enumerate(incs_stack):
        budget = budget + weights[:, position]
        total = total + weights[:, position : position + 1] * incs
    masked = np.where(mask, total, math.inf)
    best = masked.argmin(axis=1)
    lanes = np.arange(count)
    best_total = masked[lanes, best]
    good = np.count_nonzero(
        mask & (total <= budget[:, None] + MEMBERSHIP_TOLERANCE), axis=1
    )
    choices: List[RankRChoice] = []
    for n, variable in enumerate(variables):
        chosen_total = float(best_total[n])
        op_budget = float(budget[n])
        if chosen_total > op_budget + MEMBERSHIP_TOLERANCE:
            raise NoGoodValueError(
                f"variable {variable.name!r}: minimum weighted increase "
                f"{chosen_total} exceeds the budget {op_budget}"
            )
        j = int(best[n])
        incs = tuple(float(matrix[n, j]) for matrix in incs_stack)
        op_weights = [float(w) for w in weights[n]]
        choices.append(
            RankRChoice(
                value=support_values[n][j],
                increases=incs,
                new_weights=tuple(
                    weight * inc for weight, inc in zip(op_weights, incs)
                ),
                slack=op_budget - chosen_total,
                num_good_values=int(good[n]),
            )
        )
    return choices


def select_rank3_class(
    variables: Sequence[DiscreteVariable],
    support_values: Sequence[Sequence[Hashable]],
    incs_u,
    incs_v,
    incs_w,
    triples,
    mask,
) -> List[Rank3Choice]:
    """Stacked :func:`select_rank3` over one wave of rank-3 ops.

    ``triples`` is ``[N, 3]``: the current representable triple of each
    op's event triangle.  The masked argmax over the stacked margins
    replicates the scalar strict-``>`` first-win scan, and the winning
    decomposition is computed by the scalar :func:`decompose_triple`
    (one call per op, not per candidate).
    """
    import numpy as np

    cand_u = incs_u * triples[:, 0:1]
    cand_v = incs_v * triples[:, 1:2]
    cand_w = incs_w * triples[:, 2:3]
    margins = representability_margin_array(cand_u, cand_v, cand_w)
    masked = np.where(mask, margins, -math.inf)
    best = masked.argmax(axis=1)
    lanes = np.arange(len(variables))
    best_margin = masked[lanes, best]
    good = np.count_nonzero(
        mask & (margins >= -MEMBERSHIP_TOLERANCE), axis=1
    )
    choices: List[Rank3Choice] = []
    for n, variable in enumerate(variables):
        margin = float(best_margin[n])
        if margin < -MEMBERSHIP_TOLERANCE:
            a, b, c = (float(x) for x in triples[n])
            raise NoGoodValueError(
                f"rank-3 variable {variable.name!r}: every value is "
                f"({a:.6g}, {b:.6g}, {c:.6g})-evil "
                f"(best margin {margin:.3g})"
            )
        j = int(best[n])
        triple = (
            float(cand_u[n, j]), float(cand_v[n, j]), float(cand_w[n, j])
        )
        decomposition = decompose_triple(
            *triple,
            tolerance=max(MEMBERSHIP_TOLERANCE, -margin + 1e-12),
        )
        choices.append(
            Rank3Choice(
                value=support_values[n][j],
                increases=(
                    float(incs_u[n, j]),
                    float(incs_v[n, j]),
                    float(incs_w[n, j]),
                ),
                triple=triple,
                decomposition=decomposition,
                margin=margin,
                num_good_values=int(good[n]),
            )
        )
    return choices
