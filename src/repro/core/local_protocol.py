"""A message-level LOCAL implementation of the distributed fixing phase.

:mod:`repro.core.distributed` schedules the sequential fixers along a
coloring and *accounts* rounds; this module goes one level deeper and
runs the fixing phase as an actual message-passing protocol on the
simulator — every node holds only its own state, and every piece of
information it uses provably arrived in a message.

**Protocol.**  Nodes are the events of the instance (2-hop colored with
palette ``P``); each variable is *owned* by its smallest affected event.
The schedule takes two rounds per color class ``c``:

* **state round (2c+1):** every node broadcasts everything it knows —
  the fixed values of variables in its 1-hop view and its versioned
  ``phi`` ledger entries; receivers merge (higher version wins).
* **commit round (2c+2):** nodes of color ``c`` fix all their owned,
  still-unfixed variables *locally* (the selection rules of
  :mod:`repro.core.selection` read only the merged 1-hop state), bump
  the versions of the ``phi`` entries they rewrite, and broadcast the
  updates; receivers merge.

Why two rounds per class suffice: a value fixed by owner ``o`` in class
``c`` reaches ``o``'s neighbors in the same commit round and, through
their next state broadcast, every node at distance two by the start of
class ``c + 1``'s commit — and the 2-hop coloring guarantees that no
node closer than that decides before then.

This mirrors the proof of Corollary 1.4: the fixing decision of
Theorem 1.3 depends only on the 1-hop neighborhood, so iterating the
color classes of a 2-hop coloring yields a legal sequential order.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.coloring import compute_two_hop_coloring, require_two_hop_coloring
from repro.core.distributed import DistributedResult
from repro.core.indexing import indexed_dependency_network
from repro.core.results import FixingResult, StepRecord
from repro.core.selection import select_rank1, select_rank2, select_rank3
from repro.lll.instance import LLLInstance
from repro.local_model.algorithm import LocalAlgorithm, NodeState
from repro.local_model.simulator import Simulator
from repro.probability import PartialAssignment

#: phi ledger key: (sorted edge index pair, side index).
PhiKey = Tuple[Tuple[int, int], int]
#: phi ledger entry: (version, value).
PhiEntry = Tuple[int, float]


def _edge_key(i: int, j: int) -> Tuple[int, int]:
    return (i, j) if i < j else (j, i)


class LocalFixingProtocol(LocalAlgorithm):
    """The two-rounds-per-class fixing protocol (rank <= 3).

    Node input (a dict):

    * ``"color"`` / ``"palette"`` — the node's 2-hop color and the
      global palette size;
    * ``"owned"`` — list of ``(variable, event_indices)`` this node
      coordinates (it is the minimum index in each tuple);
    * ``"events_by_index"`` — the :class:`BadEvent` objects of the node
      itself and its neighbors (1-hop knowledge, exchanged in one
      pre-round that the wrapper accounts for);
    * ``"incident_edges"`` — dependency edges (index pairs) at the node.
    """

    def __init__(self, palette: int) -> None:
        if palette < 1:
            raise SimulationError("palette must be at least 1")
        self._palette = palette
        #: StepRecords from every commit, in global execution order
        #: (collected for reporting; not visible to the nodes).
        self.records: List[StepRecord] = []

    @property
    def rounds_needed(self) -> int:
        """Two rounds per color class."""
        return 2 * self._palette

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def initialize(self, node: NodeState) -> None:
        node.memory["fixed"] = {}
        phi: Dict[PhiKey, PhiEntry] = {}
        for edge in node.input["incident_edges"]:
            for side in edge:
                phi[(edge, side)] = (0, 1.0)
        node.memory["phi"] = phi

    def send(self, node: NodeState, round_number: int) -> Dict[Hashable, Any]:
        if round_number % 2 == 1:
            # State round: broadcast the full local view.
            payload = {
                "kind": "state",
                "fixed": dict(node.memory["fixed"]),
                "phi": dict(node.memory["phi"]),
            }
            return {neighbor: payload for neighbor in node.neighbors}
        # Commit round for color class (round_number // 2) - 1.
        color = round_number // 2 - 1
        if node.input["color"] != color:
            return {}
        updates = self._commit(node)
        if not updates["fixed"] and not updates["phi"]:
            return {}
        payload = {"kind": "commit", **updates}
        return {neighbor: payload for neighbor in node.neighbors}

    def receive(self, node: NodeState, messages, round_number: int) -> None:
        for payload in messages.values():
            if payload is None:
                continue
            self._merge_fixed(node, payload["fixed"])
            self._merge_phi(node, payload["phi"])
        if round_number == self.rounds_needed:
            node.halt_with(
                {
                    "fixed": dict(node.memory["fixed"]),
                    "phi": dict(node.memory["phi"]),
                }
            )

    # ------------------------------------------------------------------
    # Local fixing
    # ------------------------------------------------------------------
    def _commit(self, node: NodeState) -> Dict[str, Dict]:
        """Fix all owned unfixed variables using only local state.

        The selection rules answer each decision with one batch ``Inc``
        query per affected event (see :mod:`repro.core.selection`), so a
        commit round costs one table pass per (variable, event) pair
        under the compiled engine.  The local view is materialised as a
        :class:`PartialAssignment` once per commit and extended in place
        after each owned variable is fixed, instead of being rebuilt from
        the memory dict per variable.
        """
        new_fixed: Dict[Hashable, Hashable] = {}
        new_phi: Dict[PhiKey, PhiEntry] = {}
        events_by_index = node.input["events_by_index"]
        assignment = PartialAssignment(node.memory["fixed"])
        for variable, indices in node.input["owned"]:
            if variable.name in node.memory["fixed"]:
                continue
            events = [events_by_index[index] for index in indices]
            if len(indices) == 1:
                choice = select_rank1(variable, events[0], assignment)
                record = StepRecord(
                    variable=variable.name,
                    value=choice.value,
                    events=tuple(event.name for event in events),
                    increases=(choice.increase,),
                    slack=choice.slack,
                    num_good_values=choice.num_good_values,
                    num_values=variable.num_values,
                )
            elif len(indices) == 2:
                i, j = indices
                edge = _edge_key(i, j)
                weights = (
                    self._phi_value(node, edge, i),
                    self._phi_value(node, edge, j),
                )
                choice = select_rank2(variable, events, weights, assignment)
                self._stage_phi(node, new_phi, edge, i, choice.new_weights[0])
                self._stage_phi(node, new_phi, edge, j, choice.new_weights[1])
                record = StepRecord(
                    variable=variable.name,
                    value=choice.value,
                    events=tuple(event.name for event in events),
                    increases=choice.increases,
                    slack=choice.slack,
                    num_good_values=choice.num_good_values,
                    num_values=variable.num_values,
                )
            else:
                i, j, k = indices
                edge_ij = _edge_key(i, j)
                edge_ik = _edge_key(i, k)
                edge_jk = _edge_key(j, k)
                triple = (
                    self._phi_value(node, edge_ij, i)
                    * self._phi_value(node, edge_ik, i),
                    self._phi_value(node, edge_ij, j)
                    * self._phi_value(node, edge_jk, j),
                    self._phi_value(node, edge_ik, k)
                    * self._phi_value(node, edge_jk, k),
                )
                choice = select_rank3(variable, events, triple, assignment)
                decomposition = choice.decomposition
                self._stage_phi(node, new_phi, edge_ij, i, decomposition.a1)
                self._stage_phi(node, new_phi, edge_ij, j, decomposition.b1)
                self._stage_phi(node, new_phi, edge_ik, i, decomposition.a2)
                self._stage_phi(node, new_phi, edge_ik, k, decomposition.c2)
                self._stage_phi(node, new_phi, edge_jk, j, decomposition.b3)
                self._stage_phi(node, new_phi, edge_jk, k, decomposition.c3)
                record = StepRecord(
                    variable=variable.name,
                    value=choice.value,
                    events=tuple(event.name for event in events),
                    increases=choice.increases,
                    slack=max(choice.margin, 0.0),
                    num_good_values=choice.num_good_values,
                    num_values=variable.num_values,
                )
            node.memory["fixed"][variable.name] = choice.value
            new_fixed[variable.name] = choice.value
            assignment.fix(variable, choice.value)
            self.records.append(record)
        return {"fixed": new_fixed, "phi": new_phi}

    def _phi_value(self, node: NodeState, edge, side: int) -> float:
        entry = node.memory["phi"].get((edge, side))
        if entry is None:
            # First contact with an edge between two neighbors whose state
            # has not mentioned it yet: it still carries its initial value.
            return 1.0
        return entry[1]

    def _stage_phi(
        self,
        node: NodeState,
        staged: Dict[PhiKey, PhiEntry],
        edge,
        side: int,
        value: float,
    ) -> None:
        """Write a phi update locally and stage it for broadcast."""
        key = (edge, side)
        old = node.memory["phi"].get(key, (0, 1.0))
        entry = (old[0] + 1, value)
        node.memory["phi"][key] = entry
        staged[key] = entry

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    @staticmethod
    def _merge_fixed(node: NodeState, incoming: Dict) -> None:
        fixed = node.memory["fixed"]
        for name, value in incoming.items():
            existing = fixed.get(name, _MISSING)
            if existing is not _MISSING and existing != value:
                raise SimulationError(
                    f"node {node.identifier!r}: conflicting values for "
                    f"variable {name!r} ({existing!r} vs {value!r})"
                )
            fixed[name] = value

    @staticmethod
    def _merge_phi(node: NodeState, incoming: Dict) -> None:
        phi = node.memory["phi"]
        for key, (version, value) in incoming.items():
            current = phi.get(key)
            if current is None or current[0] < version:
                phi[key] = (version, value)
            elif current[0] == version and abs(current[1] - value) > 1e-9:
                raise SimulationError(
                    f"node {node.identifier!r}: conflicting phi entries "
                    f"for {key!r} at version {version}"
                )


class _Missing:
    __slots__ = ()


_MISSING = _Missing()


def solve_distributed_local(
    instance: LLLInstance,
    require_criterion=True,
    fault_plan=None,
) -> DistributedResult:
    """Run the full message-level distributed algorithm (rank <= 3).

    Computes a 2-hop coloring (simulated, rounds accounted), runs
    :class:`LocalFixingProtocol`, merges the per-node outputs into a
    global assignment, and cross-checks consistency.  One extra round is
    charged for the initial 1-hop exchange of event descriptions.

    ``fault_plan`` (a :class:`repro.faults.FaultPlan`) injects message
    drops/duplications into the protocol simulation; the simulator's
    reliable-delivery layer recovers them, so the merged result is
    identical to the fault-free run.
    """
    from repro.lll.verify import check_preconditions

    check_preconditions(
        instance, max_rank=3, require_criterion=require_criterion
    )
    network, to_index, from_index = indexed_dependency_network(instance)

    if network.graph.number_of_edges() > 0:
        coloring = compute_two_hop_coloring(network)
        require_two_hop_coloring(network.graph, coloring.colors)
        colors = coloring.colors
        palette = coloring.palette
        coloring_rounds = coloring.host_rounds
    else:
        colors = {index: 0 for index in from_index}
        palette = 1
        coloring_rounds = 0

    # Assemble per-node inputs (the 1-hop knowledge a real execution
    # would gather in one pre-round, charged below).  Ownership comes
    # from the execution plane: the fix plan's cells for this coloring
    # say which node commits which variables in which class, so the
    # protocol and the scheduler backends execute the same schedule.
    from repro.runtime.plan import plan_from_two_hop_coloring

    plan = plan_from_two_hop_coloring(
        instance, from_index, colors, palette, coloring_rounds
    )
    events_by_index = {
        to_index[event.name]: event for event in instance.events
    }
    owned: Dict[int, List] = {index: [] for index in from_index}
    for color_class in plan.classes:
        for cell in color_class.cells:
            owned[to_index[cell.owner]] = [
                (
                    instance.variable(op.variable),
                    tuple(sorted(to_index[name] for name in op.events)),
                )
                for op in cell.ops
            ]

    inputs = {}
    for index in from_index:
        neighbor_indices = set(network.neighbors(index))
        neighbor_indices.add(index)
        inputs[index] = {
            "color": colors[index],
            "palette": palette,
            "owned": owned[index],
            "events_by_index": {
                i: events_by_index[i] for i in neighbor_indices
            },
            "incident_edges": [
                _edge_key(index, neighbor)
                for neighbor in network.neighbors(index)
            ],
        }

    protocol = LocalFixingProtocol(palette)
    # The bandwidth profile (round_payload_chars) is part of this
    # entry point's reported result, so payload sizing is opted in.
    simulator = Simulator(
        network,
        protocol,
        inputs=inputs,
        track_payload=True,
        fault_plan=fault_plan,
    )
    result = simulator.run(max_rounds=protocol.rounds_needed + 1)

    # Merge outputs and cross-check agreement between nodes.
    merged: Dict[Hashable, Hashable] = {}
    final_phi: Dict[PhiKey, PhiEntry] = {}
    for output in result.outputs.values():
        for name, value in output["fixed"].items():
            if name in merged and merged[name] != value:
                raise SimulationError(
                    f"nodes disagree on variable {name!r}"
                )
            merged[name] = value
        for key, entry in output["phi"].items():
            current = final_phi.get(key)
            if current is None or current[0] < entry[0]:
                final_phi[key] = entry

    assignment = PartialAssignment()
    for variable in instance.variables:
        if variable.name not in merged:
            raise SimulationError(
                f"protocol finished without fixing {variable.name!r}"
            )
        assignment.fix(variable, merged[variable.name])

    certified = {}
    for event in instance.events:
        index = to_index[event.name]
        bound = event.probability()
        for neighbor in network.neighbors(index):
            edge = _edge_key(index, neighbor)
            entry = final_phi.get((edge, index), (0, 1.0))
            bound *= entry[1]
        certified[event.name] = bound

    fixing = FixingResult(
        assignment=assignment,
        steps=tuple(protocol.records),
        certified_bounds=certified,
    )
    return DistributedResult(
        fixing=fixing,
        coloring_rounds=coloring_rounds + 1,  # +1: the 1-hop pre-exchange
        schedule_rounds=result.rounds,
        palette=palette,
        round_messages=result.round_messages,
        round_payload_chars=result.round_payload_chars,
    )
