"""Distributed LLL algorithms (Corollary 1.2 and Corollary 1.4).

Both algorithms have the same two-phase shape:

1. **Symmetry breaking.**  Corollary 1.2 edge-colors the dependency graph
   with ``2d - 1`` colors; Corollary 1.4 computes a 2-hop vertex coloring
   with ``d^2 + 1`` colors.  Both run as honest LOCAL simulations
   (:mod:`repro.coloring`) whose round counts are ``O(poly d + log* n)``.

2. **Scheduled fixing.**  The color classes are processed one per
   communication round.  In an edge class, the variables of each edge of
   that color are fixed by its endpoints; in a 2-hop class, every node of
   that color fixes all its still-unfixed variables.  Because same-color
   edges share no endpoint (resp. same-color nodes are at distance at
   least 3), no two simultaneous fixings touch a common event, so the
   parallel execution is equivalent to *some* sequential order — and
   Theorems 1.1/1.3 hold for every order.

The fixing decisions themselves are purely local (they read the 1-hop
bookkeeping and the fixed values in the events' scopes), so the simulator
executes them through the sequential fixers in schedule order and asserts
the disjointness that makes this faithful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence, Set, Tuple

from repro.errors import SimulationError
from repro.core.indexing import indexed_dependency_network
from repro.core.rank2 import Rank2Fixer
from repro.core.rank3 import Rank3Fixer
from repro.core.results import FixingResult
from repro.lll.instance import LLLInstance

#: Backward-compatible alias; the helper is public now (see
#: :mod:`repro.core.indexing`).
_indexed_dependency_network = indexed_dependency_network


@dataclass
class DistributedResult:
    """Outcome and round accounting of a distributed LLL run."""

    #: Result of the underlying fixing process (assignment + trace).
    fixing: FixingResult
    #: LOCAL rounds spent computing the coloring (host-graph rounds).
    coloring_rounds: int
    #: LOCAL rounds spent iterating the color classes.
    schedule_rounds: int
    #: Size of the coloring palette (= number of schedule rounds budgeted).
    palette: int
    #: Messages delivered per simulator round (message-level protocol
    #: runs only; empty for scheduler-level simulations, which exchange
    #: no real messages).
    round_messages: Tuple[int, ...] = ()
    #: Payload ``repr`` length delivered per simulator round (same
    #: provenance as :attr:`round_messages`).
    round_payload_chars: Tuple[int, ...] = ()

    @property
    def total_rounds(self) -> int:
        """Total LOCAL rounds of the algorithm."""
        return self.coloring_rounds + self.schedule_rounds

    @property
    def assignment(self):
        """The computed variable assignment."""
        return self.fixing.assignment


def _assert_round_disjoint(
    instance: LLLInstance, round_variables: Sequence[Hashable]
) -> None:
    """Check that simultaneously-fixed variables share no event."""
    touched: Set[Hashable] = set()
    for name in round_variables:
        events = {event.name for event in instance.events_of_variable(name)}
        overlap = touched & events
        if overlap:
            raise SimulationError(
                f"schedule conflict: variable {name!r} touches events "
                f"{sorted(map(repr, overlap))} already touched this round"
            )
        touched.update(events)


def _execute_plan(fixer, plan, instance, scheduler) -> DistributedResult:
    """Run a plan through a scheduler and close out the fixing result."""
    from repro.runtime.schedulers import SerialScheduler

    if scheduler is None:
        scheduler = SerialScheduler()
    scheduler.execute(fixer, plan, instance)
    result = fixer.run(order=())
    return DistributedResult(
        fixing=result,
        coloring_rounds=plan.coloring_rounds,
        schedule_rounds=plan.num_classes,
        palette=plan.palette,
    )


def solve_distributed_rank2(
    instance: LLLInstance,
    require_criterion: bool = True,
    validate_invariant: bool = False,
    scheduler=None,
) -> DistributedResult:
    """Corollary 1.2: the ``O(d + log* n)``-schedule distributed algorithm.

    Edge-colors the dependency graph, builds the color-class
    :class:`~repro.runtime.plan.FixPlan` (rank-1 variables go in one
    initial class, since variables of distinct events cannot conflict)
    and executes it through ``scheduler`` (default:
    :class:`~repro.runtime.schedulers.SerialScheduler`).
    """
    from repro.runtime.plan import build_plan_rank2

    fixer = Rank2Fixer(
        instance,
        require_criterion=require_criterion,
        validate_invariant=validate_invariant,
    )
    plan = build_plan_rank2(instance)
    return _execute_plan(fixer, plan, instance, scheduler)


def solve_distributed_rank3(
    instance: LLLInstance,
    require_criterion: bool = True,
    validate_invariant: bool = False,
    scheduler=None,
) -> DistributedResult:
    """Corollary 1.4: the ``O(d^2 + log* n)``-schedule distributed algorithm.

    Computes a 2-hop coloring of the dependency graph with ``d^2 + 1``
    colors, builds the color-class plan (each active node's cell fixes
    all its still-unclaimed variables) and executes it through
    ``scheduler`` (default serial).
    """
    from repro.runtime.plan import build_plan_rank3

    fixer = Rank3Fixer(
        instance,
        require_criterion=require_criterion,
        validate_invariant=validate_invariant,
    )
    plan = build_plan_rank3(instance)
    return _execute_plan(fixer, plan, instance, scheduler)


def solve_distributed(
    instance: LLLInstance,
    require_criterion: bool = True,
    validate_invariant: bool = False,
    scheduler=None,
) -> DistributedResult:
    """Dispatch to the rank-2 or rank-3 distributed algorithm by rank."""
    if instance.rank <= 2:
        return solve_distributed_rank2(
            instance,
            require_criterion=require_criterion,
            validate_invariant=validate_invariant,
            scheduler=scheduler,
        )
    return solve_distributed_rank3(
        instance,
        require_criterion=require_criterion,
        validate_invariant=validate_invariant,
        scheduler=scheduler,
    )
