"""Distributed LLL algorithms (Corollary 1.2 and Corollary 1.4).

Both algorithms have the same two-phase shape:

1. **Symmetry breaking.**  Corollary 1.2 edge-colors the dependency graph
   with ``2d - 1`` colors; Corollary 1.4 computes a 2-hop vertex coloring
   with ``d^2 + 1`` colors.  Both run as honest LOCAL simulations
   (:mod:`repro.coloring`) whose round counts are ``O(poly d + log* n)``.

2. **Scheduled fixing.**  The color classes are processed one per
   communication round.  In an edge class, the variables of each edge of
   that color are fixed by its endpoints; in a 2-hop class, every node of
   that color fixes all its still-unfixed variables.  Because same-color
   edges share no endpoint (resp. same-color nodes are at distance at
   least 3), no two simultaneous fixings touch a common event, so the
   parallel execution is equivalent to *some* sequential order — and
   Theorems 1.1/1.3 hold for every order.

The fixing decisions themselves are purely local (they read the 1-hop
bookkeeping and the fixed values in the events' scopes), so the simulator
executes them through the sequential fixers in schedule order and asserts
the disjointness that makes this faithful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.errors import SimulationError
from repro.coloring import (
    compute_edge_coloring,
    compute_two_hop_coloring,
    require_proper_edge_coloring,
    require_two_hop_coloring,
)
from repro.core.rank2 import Rank2Fixer
from repro.core.rank3 import Rank3Fixer
from repro.core.results import FixingResult
from repro.lll.instance import LLLInstance
from repro.local_model.network import Network


@dataclass
class DistributedResult:
    """Outcome and round accounting of a distributed LLL run."""

    #: Result of the underlying fixing process (assignment + trace).
    fixing: FixingResult
    #: LOCAL rounds spent computing the coloring (host-graph rounds).
    coloring_rounds: int
    #: LOCAL rounds spent iterating the color classes.
    schedule_rounds: int
    #: Size of the coloring palette (= number of schedule rounds budgeted).
    palette: int

    @property
    def total_rounds(self) -> int:
        """Total LOCAL rounds of the algorithm."""
        return self.coloring_rounds + self.schedule_rounds

    @property
    def assignment(self):
        """The computed variable assignment."""
        return self.fixing.assignment


def _indexed_dependency_network(
    instance: LLLInstance,
) -> Tuple[Network, Dict[Hashable, int], Dict[int, Hashable]]:
    """The dependency graph as a network with integer identifiers.

    Event names may be arbitrary hashables; LOCAL identifiers must be
    integers, so events are indexed in sorted-repr order.
    """
    graph = instance.dependency_graph
    ordered = sorted(graph.nodes(), key=repr)
    to_index = {name: i for i, name in enumerate(ordered)}
    from_index = {i: name for name, i in to_index.items()}
    relabeled = nx.relabel_nodes(graph, to_index, copy=True)
    return Network(relabeled), to_index, from_index


def _assert_round_disjoint(
    instance: LLLInstance, round_variables: Sequence[Hashable]
) -> None:
    """Check that simultaneously-fixed variables share no event."""
    touched: Set[Hashable] = set()
    for name in round_variables:
        events = {event.name for event in instance.events_of_variable(name)}
        overlap = touched & events
        if overlap:
            raise SimulationError(
                f"schedule conflict: variable {name!r} touches events "
                f"{sorted(map(repr, overlap))} already touched this round"
            )
        touched.update(events)


def solve_distributed_rank2(
    instance: LLLInstance,
    require_criterion: bool = True,
    validate_invariant: bool = False,
) -> DistributedResult:
    """Corollary 1.2: the ``O(d + log* n)``-schedule distributed algorithm.

    Edge-colors the dependency graph, then fixes one edge color class per
    round (rank-1 variables go in one initial round, since variables of
    distinct events cannot conflict).
    """
    fixer = Rank2Fixer(
        instance,
        require_criterion=require_criterion,
        validate_invariant=validate_invariant,
    )
    network, to_index, _from_index = _indexed_dependency_network(instance)

    # Group variables: singles by host event, pairs by dependency edge.
    singles: List[Hashable] = []
    by_edge: Dict[Tuple[int, int], List[Hashable]] = {}
    for variable in instance.variables:
        events = instance.events_of_variable(variable.name)
        if len(events) == 1:
            singles.append(variable.name)
        else:
            u = to_index[events[0].name]
            v = to_index[events[1].name]
            key = (min(u, v), max(u, v))
            by_edge.setdefault(key, []).append(variable.name)

    if network.graph.number_of_edges() > 0:
        coloring = compute_edge_coloring(network)
        require_proper_edge_coloring(network.graph, coloring.colors)
        palette = coloring.palette
        coloring_rounds = coloring.host_rounds
    else:
        palette = 0
        coloring_rounds = 0
        coloring = None

    schedule_rounds = 0
    if singles:
        # One round: every event's host node fixes its private variables.
        schedule_rounds += 1
        for name in sorted(singles, key=repr):
            fixer.fix_variable(name)
    for color in range(palette):
        schedule_rounds += 1
        round_variables: List[Hashable] = []
        for edge_key, names in sorted(by_edge.items()):
            if coloring.colors.get(edge_key) == color:
                round_variables.extend(sorted(names, key=repr))
        # Variables of the same edge are fixed sequentially by the edge's
        # endpoints within the round; disjointness must hold across edges.
        distinct_edges: List[Hashable] = []
        for edge_key, names in sorted(by_edge.items()):
            if coloring.colors.get(edge_key) == color and names:
                distinct_edges.append(names[0])
        _assert_round_disjoint(instance, distinct_edges)
        for name in round_variables:
            fixer.fix_variable(name)

    result = fixer.run(order=())
    return DistributedResult(
        fixing=result,
        coloring_rounds=coloring_rounds,
        schedule_rounds=schedule_rounds,
        palette=palette,
    )


def solve_distributed_rank3(
    instance: LLLInstance,
    require_criterion: bool = True,
    validate_invariant: bool = False,
) -> DistributedResult:
    """Corollary 1.4: the ``O(d^2 + log* n)``-schedule distributed algorithm.

    Computes a 2-hop coloring of the dependency graph with ``d^2 + 1``
    colors, then iterates the color classes; each active node fixes all
    its still-unfixed variables in its class's round.
    """
    fixer = Rank3Fixer(
        instance,
        require_criterion=require_criterion,
        validate_invariant=validate_invariant,
    )
    network, to_index, from_index = _indexed_dependency_network(instance)

    if network.graph.number_of_edges() > 0:
        coloring = compute_two_hop_coloring(network)
        require_two_hop_coloring(network.graph, coloring.colors)
        palette = coloring.palette
        coloring_rounds = coloring.host_rounds
        colors = coloring.colors
    else:
        palette = 1
        coloring_rounds = 0
        colors = {index: 0 for index in from_index}

    # Variables owned by each event node, in deterministic order.
    variables_of_node: Dict[Hashable, List[Hashable]] = {
        event.name: [] for event in instance.events
    }
    for variable in instance.variables:
        for event in instance.events_of_variable(variable.name):
            variables_of_node[event.name].append(variable.name)

    schedule_rounds = 0
    for color in range(palette):
        schedule_rounds += 1
        active_nodes = sorted(
            (index for index, c in colors.items() if c == color)
        )
        batches: List[List[Hashable]] = []
        for index in active_nodes:
            event_name = from_index[index]
            node_batch = [
                name
                for name in sorted(variables_of_node[event_name], key=repr)
                if not fixer.is_fixed(name)
                and all(name not in batch for batch in batches)
            ]
            if node_batch:
                batches.append(node_batch)
        # Two active nodes are at distance >= 3, so their batches touch
        # disjoint event sets; verify rather than trust the coloring.
        touched: Set[Hashable] = set()
        for batch in batches:
            batch_events: Set[Hashable] = set()
            for name in batch:
                batch_events.update(
                    event.name for event in instance.events_of_variable(name)
                )
            overlap = touched & batch_events
            if overlap:
                raise SimulationError(
                    f"schedule conflict in color class {color}: events "
                    f"{sorted(map(repr, overlap))} touched by two nodes"
                )
            touched.update(batch_events)
        for batch in batches:
            for name in batch:
                fixer.fix_variable(name)

    result = fixer.run(order=())
    return DistributedResult(
        fixing=result,
        coloring_rounds=coloring_rounds,
        schedule_rounds=schedule_rounds,
        palette=palette,
    )


def solve_distributed(
    instance: LLLInstance,
    require_criterion: bool = True,
    validate_invariant: bool = False,
) -> DistributedResult:
    """Dispatch to the rank-2 or rank-3 distributed algorithm by rank."""
    if instance.rank <= 2:
        return solve_distributed_rank2(
            instance,
            require_criterion=require_criterion,
            validate_invariant=validate_invariant,
        )
    return solve_distributed_rank3(
        instance,
        require_criterion=require_criterion,
        validate_invariant=validate_invariant,
    )
