"""Independent auditing of fixing traces.

A :class:`repro.core.results.FixingResult` records which variable was
fixed to which value, in which order.  :func:`audit_trace` replays that
trace against a *fresh* copy of the bookkeeping — recomputing every
``Inc`` ratio from the exact probability engine and re-deriving the
P*/budget updates for the recorded values — and certifies that

1. every recorded choice was admissible at its point in the trace
   (the weighted budget, or membership of the scaled triple in
   ``S_rep``), and
2. the trace ends with every variable fixed and every certified bound
   below 1.

This is the reproduction's equivalent of proof-checking a run: the
auditor shares no state with the fixer that produced the trace, so a
bookkeeping bug in either one surfaces as a discrepancy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Hashable, Iterable, List, Mapping, Optional, Tuple

from repro.errors import (
    NotRepresentableError,
    PStarViolationError,
    UnknownVariableError,
)
from repro.geometry import decompose_triple, representability_margin
from repro.lll.instance import LLLInstance
from repro.obs.events import RUNTIME_FAULT_EVENTS
from repro.obs.recorder import active as _obs_active
from repro.core.pstar import PStarState
from repro.core.results import FixingResult
from repro.probability import PartialAssignment

#: Tolerance for re-derived admissibility checks.
AUDIT_TOLERANCE = 1e-7


@dataclass(frozen=True)
class AuditReport:
    """Outcome of replaying a fixing trace."""

    #: Whether every step was admissible and the final state certifies.
    ok: bool
    #: Number of steps replayed.
    steps: int
    #: Human-readable descriptions of any discrepancies found.
    problems: Tuple[str, ...]

    def __bool__(self) -> bool:
        return self.ok


def audit_trace(instance: LLLInstance, result: FixingResult) -> AuditReport:
    """Replay a fixing trace and re-certify every step.

    Supports instances of rank at most 3 (the paper's regime).  The
    audit is read-only with respect to its inputs.
    """
    recorder = _obs_active()
    start = time.perf_counter_ns() if recorder is not None else 0
    problems: List[str] = []
    assignment = PartialAssignment()
    pstar = PStarState(instance)
    seen: set = set()

    for index, step in enumerate(result.steps):
        label = f"step {index} ({step.variable!r})"
        if step.variable in seen:
            problems.append(f"{label}: variable fixed twice")
            continue
        seen.add(step.variable)
        try:
            variable = instance.variable(step.variable)
        except UnknownVariableError:
            # Only the lookup failure means "unknown variable"; any other
            # exception is a bug in the instance and must propagate, not
            # be laundered into a trace discrepancy.
            problems.append(f"{label}: unknown variable")
            continue
        if step.value not in variable:
            problems.append(f"{label}: value {step.value!r} out of support")
            continue
        events = instance.events_of_variable(step.variable)
        increases = [
            event.conditional_increase(assignment, variable, step.value)
            for event in events
        ]
        # Cross-check the recorded increases.
        if len(increases) == len(step.increases):
            for recorded, rederived in zip(step.increases, increases):
                if abs(recorded - rederived) > AUDIT_TOLERANCE:
                    problems.append(
                        f"{label}: recorded Inc {recorded} differs from "
                        f"re-derived {rederived}"
                    )
        else:
            problems.append(
                f"{label}: records {len(step.increases)} increases for "
                f"{len(events)} events"
            )

        if len(events) == 1:
            if increases[0] > 1.0 + AUDIT_TOLERANCE:
                problems.append(
                    f"{label}: rank-1 increase {increases[0]} exceeds 1"
                )
        elif len(events) == 2:
            u, v = events[0].name, events[1].name
            weight_u = pstar.value(u, v, u)
            weight_v = pstar.value(u, v, v)
            total = weight_u * increases[0] + weight_v * increases[1]
            if total > 2.0 + AUDIT_TOLERANCE:
                problems.append(
                    f"{label}: weighted pair increase {total} exceeds 2"
                )
            else:
                pstar.set_edge(
                    u, v, weight_u * increases[0], weight_v * increases[1]
                )
        else:
            u, v, w = (event.name for event in events)
            a = pstar.value(u, v, u) * pstar.value(u, w, u)
            b = pstar.value(u, v, v) * pstar.value(v, w, v)
            c = pstar.value(u, w, w) * pstar.value(v, w, w)
            candidate = (increases[0] * a, increases[1] * b, increases[2] * c)
            margin = representability_margin(*candidate)
            if margin < -AUDIT_TOLERANCE:
                problems.append(
                    f"{label}: scaled triple {candidate} is outside S_rep "
                    f"(margin {margin:.3g})"
                )
            else:
                try:
                    decomposition = decompose_triple(
                        *candidate,
                        tolerance=max(AUDIT_TOLERANCE, -margin + 1e-12),
                    )
                except NotRepresentableError:
                    problems.append(
                        f"{label}: triple {candidate} failed to decompose"
                    )
                    continue
                try:
                    pstar.set_edge(
                        u, v, decomposition.a1, decomposition.b1
                    )
                    pstar.set_edge(
                        u, w, decomposition.a2, decomposition.c2
                    )
                    pstar.set_edge(
                        v, w, decomposition.b3, decomposition.c3
                    )
                except PStarViolationError as error:
                    problems.append(f"{label}: {error}")
                    continue
        assignment.fix(variable, step.value)

    # Final-state checks.
    unfixed = [
        variable.name
        for variable in instance.variables
        if not assignment.is_fixed(variable.name)
    ]
    if unfixed:
        problems.append(f"trace leaves {len(unfixed)} variables unfixed")
    else:
        for variable in instance.variables:
            recorded = result.assignment.get(variable.name)
            replayed = assignment.value_of(variable.name)
            if recorded != replayed:
                problems.append(
                    f"final assignment mismatch on {variable.name!r}: "
                    f"{recorded!r} vs {replayed!r}"
                )
                break
        occurring = instance.occurring_events(assignment)
        if occurring:
            problems.append(
                f"{len(occurring)} bad events occur under the replayed "
                f"assignment"
            )
    if recorder is not None:
        recorder.record_span(
            "audit", "replay", time.perf_counter_ns() - start
        )
        for problem in problems:
            recorder.count("audit", "discrepancies")
            recorder.event("audit", "discrepancy", detail=problem)
        recorder.event(
            "audit",
            "report",
            ok=not problems,
            steps=len(result.steps),
            problems=len(problems),
        )
    return AuditReport(
        ok=not problems, steps=len(result.steps), problems=tuple(problems)
    )


def _event_fields(event: Any) -> Tuple[str, str, Mapping[str, Any]]:
    """Normalize an obs event (ObsEvent or serialized dict) to a triple."""
    if isinstance(event, Mapping):
        return (
            str(event.get("component", "")),
            str(event.get("event", "")),
            event.get("payload") or {},
        )
    return (event.component, event.event, event.payload or {})


def certify_recovery(events: Iterable[Any]) -> List[str]:
    """Check that every recorded fault reached a terminal recovery.

    ``events`` is an observability stream (``ObsEvent`` objects or their
    serialized dict form, e.g. a read-back JSONL trace).  The
    fault-tolerant paths emit ``runtime/fault``, ``runtime/retry`` and
    ``runtime/fallback`` events that share a ``scope`` payload key per
    fault; a fault is *recovered* when it is self-healing (payload
    ``recovered: true`` — a deduplicated message), or a later ``retry``
    for its scope reports ``outcome: "recovered"`` (redelivery or a
    successful resubmission), or a ``fallback`` for its scope records
    the in-parent escape hatch.  Returns human-readable problems for
    every fault left dangling — an empty list certifies the transcript.
    """
    faulted: dict = {}
    for event in events:
        component, kind, payload = _event_fields(event)
        if component != "runtime" or kind not in RUNTIME_FAULT_EVENTS:
            continue
        scope = payload.get("scope")
        if scope is None:
            continue
        if kind == "fault":
            if payload.get("recovered") is True:
                faulted[scope] = None
            elif scope not in faulted:
                faulted[scope] = (
                    f"fault at {scope} "
                    f"({payload.get('kind', 'unknown')}) has no recorded "
                    f"recovery"
                )
        elif kind == "retry":
            if payload.get("outcome") == "recovered":
                faulted[scope] = None
        elif kind == "fallback":
            faulted[scope] = None
    return [problem for problem in faulted.values() if problem is not None]


def run_audit(
    instance: LLLInstance,
    result: Any,
    fault_events: Optional[Iterable[Any]] = None,
) -> AuditReport:
    """Audit a run end to end: trace replay plus recovery certification.

    ``result`` may be a :class:`~repro.core.results.FixingResult` or any
    object carrying one as ``.fixing`` (e.g. a
    :class:`~repro.core.distributed.DistributedResult`).  When
    ``fault_events`` is given — the observability stream of the run —
    the report additionally certifies, via :func:`certify_recovery`,
    that every injected or encountered fault was recovered or escaped
    through the typed fallback, so a post-recovery transcript passes
    only if both the mathematics *and* the systems layer held up.
    """
    fixing = getattr(result, "fixing", result)
    report = audit_trace(instance, fixing)
    if fault_events is None:
        return report
    problems = list(report.problems) + certify_recovery(fault_events)
    return AuditReport(
        ok=not problems, steps=report.steps, problems=tuple(problems)
    )
