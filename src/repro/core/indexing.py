"""Shared instance-to-network indexing used by every distributed layer.

The LOCAL machinery identifies nodes by integers, while LLL instances
name events with arbitrary hashables.  Every distributed entry point —
the scheduled solvers of :mod:`repro.core.distributed`, the
message-level protocol of :mod:`repro.core.local_protocol`, the
verification protocol of :mod:`repro.core.local_verify`, and the plan
builders of :mod:`repro.runtime` — needs the same translation, so it
lives here as a public, importable module instead of a private helper
buried in one of its consumers.

Both indexings are cached per instance: :class:`~repro.lll.instance.LLLInstance`
is immutable after construction, so the sorted order, the relabeled
network, and the CSR arrays can never go stale.  Re-deriving them used
to cost a full sort + graph rebuild on *every* call — and the solvers
call this once per entry point.
"""

from __future__ import annotations

import weakref
from typing import Dict, Hashable, Tuple

import networkx as nx
import numpy as np

from repro.artifacts.fingerprint import instance_key
from repro.artifacts.store import STORE as _ARTIFACTS, artifacts_enabled
from repro.lll.instance import LLLInstance
from repro.local_model.network import Network

#: Per-instance caches; weak keys so indexings die with their instance.
_NETWORK_CACHE: "weakref.WeakKeyDictionary[LLLInstance, Tuple[Network, Dict[Hashable, int], Dict[int, Hashable]]]" = (
    weakref.WeakKeyDictionary()
)
_CSR_CACHE: "weakref.WeakKeyDictionary[LLLInstance, tuple]" = (
    weakref.WeakKeyDictionary()
)


def _index_maps(
    instance: LLLInstance,
) -> Tuple[Dict[Hashable, int], Dict[int, Hashable]]:
    """Event-name indexing in sorted-repr order (both directions).

    Matches the node order of ``instance.dependency_graph`` — nodes are
    inserted in event order, so sorting the event names directly gives
    the same total order without touching the graph.
    """
    ordered = sorted((event.name for event in instance.events), key=repr)
    to_index = {name: i for i, name in enumerate(ordered)}
    from_index = {i: name for name, i in to_index.items()}
    return to_index, from_index


def indexed_dependency_network(
    instance: LLLInstance,
) -> Tuple[Network, Dict[Hashable, int], Dict[int, Hashable]]:
    """The dependency graph as a network with integer identifiers.

    Event names may be arbitrary hashables; LOCAL identifiers must be
    integers, so events are indexed in sorted-repr order.  Returns the
    relabeled network plus both directions of the mapping
    (``name -> index`` and ``index -> name``).

    The result is cached per instance — treat the returned network and
    mappings as read-only.
    """
    cached = _NETWORK_CACHE.get(instance)
    if cached is not None:
        return cached
    # L2: the shared artifact store, keyed on instance shape.  Event
    # names and scopes are part of the fingerprint, so an equal-shape
    # instance gets back content-identical mappings and an identical
    # relabeled network (read-only by contract).
    key = instance_key(instance, "network") if artifacts_enabled() else None
    result = _ARTIFACTS.get("indexings", key)
    if result is None:
        graph = instance.dependency_graph
        to_index, from_index = _index_maps(instance)
        relabeled = nx.relabel_nodes(graph, to_index, copy=True)
        result = (Network(relabeled), to_index, from_index)
        _ARTIFACTS.put("indexings", key, result)
    _NETWORK_CACHE[instance] = result
    return result


def indexed_csr(instance: LLLInstance):
    """The dependency graph as a :class:`repro.graph.CSRGraph`.

    Same indexing (sorted-repr event order) and same edge set as
    :func:`indexed_dependency_network`, built directly from the
    instance's variable incidences — no networkx graph, no relabeling
    pass.  Returns ``(csr, to_index, from_index)``, cached per instance;
    treat all three as read-only.
    """
    cached = _CSR_CACHE.get(instance)
    if cached is not None:
        return cached
    key = instance_key(instance, "csr") if artifacts_enabled() else None
    result = _ARTIFACTS.get("indexings", key)
    if result is not None:
        _CSR_CACHE[instance] = result
        return result
    from repro.graph import CSRGraph

    to_index, from_index = _index_maps(instance)
    endpoints_u = []
    endpoints_v = []
    for variable in instance.variables:
        events = instance.events_of_variable(variable.name)
        indices = [to_index[event.name] for event in events]
        for i, first in enumerate(indices):
            for second in indices[i + 1 :]:
                if first != second:
                    endpoints_u.append(first)
                    endpoints_v.append(second)
    csr = CSRGraph.from_edges(
        instance.num_events,
        np.array(endpoints_u, dtype=np.int64),
        np.array(endpoints_v, dtype=np.int64),
    )
    result = (csr, to_index, from_index)
    _ARTIFACTS.put("indexings", key, result)
    _CSR_CACHE[instance] = result
    return result
