"""Shared instance-to-network indexing used by every distributed layer.

The LOCAL machinery identifies nodes by integers, while LLL instances
name events with arbitrary hashables.  Every distributed entry point —
the scheduled solvers of :mod:`repro.core.distributed`, the
message-level protocol of :mod:`repro.core.local_protocol`, the
verification protocol of :mod:`repro.core.local_verify`, and the plan
builders of :mod:`repro.runtime` — needs the same translation, so it
lives here as a public, importable module instead of a private helper
buried in one of its consumers.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

import networkx as nx

from repro.lll.instance import LLLInstance
from repro.local_model.network import Network


def indexed_dependency_network(
    instance: LLLInstance,
) -> Tuple[Network, Dict[Hashable, int], Dict[int, Hashable]]:
    """The dependency graph as a network with integer identifiers.

    Event names may be arbitrary hashables; LOCAL identifiers must be
    integers, so events are indexed in sorted-repr order.  Returns the
    relabeled network plus both direction of the mapping
    (``name -> index`` and ``index -> name``).
    """
    graph = instance.dependency_graph
    ordered = sorted(graph.nodes(), key=repr)
    to_index = {name: i for i, name in enumerate(ordered)}
    from_index = {i: name for name, i in to_index.items()}
    relabeled = nx.relabel_nodes(graph, to_index, copy=True)
    return Network(relabeled), to_index, from_index
