"""Distributed verification: local checkability of LLL solutions.

A solved LLL instance is *locally checkable*: each event's occurrence
depends only on variables in its own scope, which live within one hop in
the dependency graph.  :class:`LocalVerificationAlgorithm` runs the
check as a one-round LOCAL protocol — every node evaluates its event on
the values it and its neighbors hold — and
:func:`verify_distributed` wraps it end to end.

Beyond symmetry with the solving protocols, this demonstrates a model
fact the paper leans on implicitly: the LLL's *solution* is verifiable
in O(1) rounds even though *finding* it is where all the complexity
lives.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Tuple

from repro.errors import SimulationError
from repro.core.indexing import indexed_dependency_network
from repro.lll.instance import LLLInstance
from repro.local_model.algorithm import LocalAlgorithm, NodeState
from repro.local_model.simulator import Simulator
from repro.probability import PartialAssignment


class LocalVerificationAlgorithm(LocalAlgorithm):
    """One-round protocol: each node decides whether its bad event occurs.

    Node input: ``{"event": BadEvent, "values": {var name: value}}`` where
    ``values`` covers the variables the node shares an event with (its
    own knowledge after solving).  Round 1 exchanges values so that each
    node holds its full scope; the node then outputs ``True`` iff its
    event is avoided.
    """

    def initialize(self, node: NodeState) -> None:
        node.memory["values"] = dict(node.input["values"])

    def send(self, node: NodeState, round_number: int) -> Dict[Hashable, Any]:
        payload = dict(node.memory["values"])
        return {neighbor: payload for neighbor in node.neighbors}

    def receive(self, node: NodeState, messages, round_number: int) -> None:
        for payload in messages.values():
            if payload:
                for name, value in payload.items():
                    existing = node.memory["values"].get(name, _MISSING)
                    if existing is not _MISSING and existing != value:
                        raise SimulationError(
                            f"node {node.identifier!r}: neighbors disagree "
                            f"on {name!r}"
                        )
                    node.memory["values"][name] = value
        event = node.input["event"]
        assignment = PartialAssignment(node.memory["values"])
        node.halt_with(not event.occurs(assignment))


class _Missing:
    __slots__ = ()


_MISSING = _Missing()


def verify_distributed(
    instance: LLLInstance, assignment: PartialAssignment
) -> Tuple[bool, int, Dict[Hashable, bool]]:
    """Run the one-round distributed verification.

    Each node starts knowing only the values of its *own* scope (what it
    would hold after a distributed solve) and learns its neighbors'
    values in a single round.  Returns ``(all_ok, rounds, verdicts)``.
    """
    network, to_index, from_index = indexed_dependency_network(instance)
    inputs = {}
    for event in instance.events:
        values = {
            name: assignment.value_of(name) for name in event.scope_names
        }
        inputs[to_index[event.name]] = {"event": event, "values": values}
    simulator = Simulator(network, LocalVerificationAlgorithm(), inputs=inputs)
    result = simulator.run(max_rounds=2)
    verdicts = {
        from_index[index]: bool(ok) for index, ok in result.outputs.items()
    }
    return all(verdicts.values()), result.rounds, verdicts
