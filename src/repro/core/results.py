"""Result records produced by the fixing algorithms.

Every fixer returns a :class:`FixingResult`: the computed assignment, a
per-step trace (:class:`StepRecord`) and summary statistics.  The trace is
what the Lemma-3.2 ablation benchmarks consume — it records, for every
variable fixing, which value was chosen and how much slack the chosen
value left in the geometric constraint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Tuple

from repro.probability import PartialAssignment


@dataclass(frozen=True)
class StepRecord:
    """One variable-fixing step of a deterministic fixer."""

    #: Name of the fixed variable.
    variable: Hashable
    #: The value it was fixed to.
    value: Hashable
    #: Names of the events the variable affects, in bookkeeping order.
    events: Tuple[Hashable, ...]
    #: The ``Inc`` ratio of each affected event for the chosen value.
    increases: Tuple[float, ...]
    #: Slack left in the step's constraint (>= 0; larger is safer).
    #: For rank 2 this is ``2 - (s*Inc_u + t*Inc_v)``; for rank 3 it is the
    #: margin of the new triple inside ``S_rep``.
    slack: float
    #: Number of candidate values that would have preserved the invariant.
    num_good_values: int
    #: Total number of candidate values of the variable.
    num_values: int


def make_step_record(
    variable: Hashable,
    value: Hashable,
    events: Tuple[Hashable, ...],
    increases: Tuple[float, ...],
    slack: float,
    num_good_values: int,
    num_values: int,
) -> StepRecord:
    """Allocation-light :class:`StepRecord` constructor for hot loops.

    The frozen dataclass ``__init__`` routes every field through
    ``object.__setattr__``, which dominates the batch commit path's
    per-op cost; populating ``__dict__`` directly produces an
    indistinguishable instance (equality, hashing and immutability all
    read the same storage) at a fraction of the price.
    """
    record = StepRecord.__new__(StepRecord)
    record.__dict__.update(
        variable=variable,
        value=value,
        events=events,
        increases=increases,
        slack=slack,
        num_good_values=num_good_values,
        num_values=num_values,
    )
    return record


@dataclass
class FixingResult:
    """Outcome of running a deterministic fixer to completion."""

    #: The complete assignment produced.
    assignment: PartialAssignment
    #: Per-variable trace, in fixing order.
    steps: Tuple[StepRecord, ...]
    #: Final per-event probability bound certified by the bookkeeping
    #: (``p_v * product of edge values``); all entries are < 1.
    certified_bounds: Dict[Hashable, float]

    @property
    def num_steps(self) -> int:
        """Number of variables fixed."""
        return len(self.steps)

    @property
    def min_slack(self) -> float:
        """The tightest constraint slack over all steps (``inf`` if no steps)."""
        if not self.steps:
            return float("inf")
        return min(step.slack for step in self.steps)

    @property
    def max_certified_bound(self) -> float:
        """The largest certified final event-probability bound."""
        if not self.certified_bounds:
            return 0.0
        return max(self.certified_bounds.values())

    @property
    def good_value_fraction(self) -> float:
        """Mean fraction of candidate values that were invariant-preserving."""
        if not self.steps:
            return 1.0
        fractions = [
            step.num_good_values / step.num_values
            for step in self.steps
            if step.num_values > 0
        ]
        if not fractions:
            return 1.0
        return sum(fractions) / len(fractions)
