"""The vector decide plane: whole-class batched fixing decisions.

The scalar hot path decides one op at a time: per affected event one
``conditional_increases`` query (a Python pass through the event layer),
then a Python scan over the support values.  This module batches the
*entire color class* and executes it as a sequence of **waves**, where
wave ``j`` decides the ``j``-th op of every cell at once.  Cells of a
validated class have disjoint event read sets, so the ops of one wave
are independent by construction; ops within a cell stay sequentially
dependent and are separated by waves, exactly mirroring the per-cell
replay loop of :func:`repro.runtime.workers.execute_cell`.

Two lowerings share the wave-executor idea:

* **Parent side** (the fixers' ``decide_class``): the instance is
  lowered once into a :class:`_Template` cached on the instance —
  kernels deduplicated by fingerprint and stacked
  (:class:`repro.probability.engine.KernelStack`), one pins-matrix row
  per event, one flat weight-ledger slot per bookkeeping entry, and
  per-class wave sections with all index arrays precomputed.  A solve
  then only carries a small :class:`_RunState` (the pins matrix and the
  ledger array, specialised from live fixer state) through the
  template, so repeated solves pay specialisation, not lowering.
* **Worker side** (:func:`execute_class_cells`): process workers lower
  the :class:`~repro.runtime.workers.CellPayload` chunk they received
  into a one-shot :class:`ClassProgram` — no template, since payloads
  already carry kernels, pins and ledger slices.

Bit-identity contract: the engine layer reproduces the scalar kernels'
mass arithmetic (see :meth:`KernelStack.query`), the selection layer's
masked argmin/argmax reproduces the scalar tie-breaking
(:mod:`repro.core.selection`), weight products use the same operand
order as the fixers' ``local_weights``, and every derived quantity of a
winning lane (new weights, slack, decompositions) is computed with the
same scalar float operations the per-op rules perform.  Within a wave,
lanes with identical selection inputs (support labels, Inc rows,
bookkeeping weights) are deduplicated before selection — sound for the
same reason the batch scheduler's decision memoization is sound: a
decision reads nothing else.

The scalar path stays intact as the differential oracle:
``REPRO_DECIDE=scalar`` switches every scheduler back to per-op
``decide``/``commit``, and the Hypothesis suite in
``tests/test_decide_vector.py`` holds the two planes to exact equality.

Fallback discipline: lowering and execution never alter fixer state
beyond the idempotent first-touch defaults ``local_weights`` itself
installs, so on any internal error ``decide_class`` simply reports the
class as not vectorizable and the scheduler re-runs it through the
untouched scalar per-op loop — which reproduces the exact error the
scalar path would raise (same exception, same op attribution in plan
order) or succeeds outright.  Speculative run state is confirmed by
``commit_class`` and rebuilt from ground truth (the assignment and the
live ledgers) whenever the fixer advanced through any other path; the
engine's ``vector_fallbacks`` counter tracks abandoned attempts.
"""

from __future__ import annotations

import os
from typing import Dict, Hashable, List, Optional, Tuple

from repro.artifacts.fingerprint import instance_key, stack_key
from repro.artifacts.store import (
    LRUCache,
    STORE as _ARTIFACTS,
    artifacts_enabled,
)
from repro.errors import ConfigurationError
from repro.probability.engine import (
    DEFAULT_STACK_LIMIT,
    KernelStack,
    STATS,
    _numpy,
)
from repro.core.selection import (
    select_rank1_class,
    select_rank2_class,
    select_rank3_class,
    select_rankr_class,
)

#: Environment variable selecting the decide plane ("vector" or "scalar").
DECIDE_ENV = "REPRO_DECIDE"

_VALID_MODES = ("vector", "scalar")

# Lazily validated, like REPRO_ENGINE: raising at import time would
# crash ``import repro`` before CLI error handling exists.
_MODE: Optional[str] = None


def _mode_from_env() -> str:
    mode = os.environ.get(DECIDE_ENV, "vector").strip().lower()
    if mode not in _VALID_MODES:
        raise ConfigurationError(
            f"{DECIDE_ENV}={mode!r} is not a valid decide mode; "
            f"expected one of {_VALID_MODES}"
        )
    return mode


def decide_mode() -> str:
    """The active decide plane: ``"vector"`` or ``"scalar"``."""
    global _MODE
    if _MODE is None:
        _MODE = _mode_from_env()
    return _MODE


def vector_enabled() -> bool:
    """Whether whole-class batched decisions should be attempted."""
    return decide_mode() == "vector"


def set_decide_mode(mode: str) -> str:
    """Select the decide plane process-wide; returns the previous mode."""
    global _MODE
    if mode not in _VALID_MODES:
        raise ConfigurationError(
            f"invalid decide mode {mode!r}; expected one of {_VALID_MODES}"
        )
    previous = decide_mode()
    _MODE = mode
    return previous


class using_decide:
    """Context manager: run the body under a specific decide mode.

    The differential-oracle pattern of the vector/scalar parity tests::

        with using_decide("scalar"):
            reference = solve(instance)
        with using_decide("vector"):
            candidate = solve(instance)
    """

    def __init__(self, mode: str) -> None:
        self._mode = mode
        self._previous: Optional[str] = None

    def __enter__(self) -> str:
        self._previous = set_decide_mode(self._mode)
        return self._mode

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._previous is not None:
            set_decide_mode(self._previous)


_MISSING = object()

#: Cache of per-variable support structure, keyed by the (values,
#: probabilities) tuples that define it.
_SUPPORT_CACHE: Dict[tuple, Tuple[tuple, tuple]] = {}


def _support_info(variable) -> Tuple[tuple, tuple]:
    """``(support value labels, support value indices)``, cached by shape."""
    key = (variable.values, variable.probabilities)
    cached = _SUPPORT_CACHE.get(key)
    if cached is None:
        values = []
        indices = []
        for index, probability in enumerate(variable.probabilities):
            if probability > 0.0:
                values.append(variable.values[index])
                indices.append(index)
        cached = (tuple(values), tuple(indices))
        _SUPPORT_CACHE[key] = cached
    return cached


class _NotVectorizable(Exception):
    """Internal: the class cannot take the vector path."""


# ----------------------------------------------------------------------
# Parent side: the instance-level template
# ----------------------------------------------------------------------
# Template op records are plain tuples; the indices below name the
# fields.  ``TOP_GATHER``/``TOP_APPLY`` are ledger-slot layouts: where
# the op's decision weights are read and where its committed weights
# are written back.  For the rank-3 rule the gather is the ``[3, 2]``
# matrix of phi-slot pairs whose products form the representable
# triple, in the exact operand order ``local_weights`` multiplies them.
TOP_VARIABLE = 0  # the DiscreteVariable object
TOP_NAMES = 1  # tuple of affected event names, in bookkeeping order
TOP_RANK = 2  # number of affected events
TOP_VALUES = 3  # tuple of support value labels, in support order
TOP_SUPPORT = 4  # tuple of support value indices (into the value list)
TOP_VALUES_ID = 5  # interned id of the support label tuple
TOP_KEYS = 6  # ledger keys (frozensets) the op reads, or None
TOP_GATHER = 7  # ledger slots read for decision weights, or None
TOP_APPLY = 8  # ledger slots written on commit, or None


class _TGroup:
    """One wave's lanes sharing a selection rule (and rank)."""

    __slots__ = (
        "rule",
        "rank",
        "lanes",  # int64 [L] lane indices
        "lane_list",  # same, as a Python list (fast iteration)
        "values_id",  # float64 [L, 1] interned support-label ids
        "variables",  # per-lane DiscreteVariable (error contexts)
        "values",  # per-lane support label tuples
        "mask",  # bool [L, S] valid support positions
        "gather",  # int64 [L, rank] / [L, 3, 2] phi slots, or None
        "apply",  # int64 [L, m] phi slots, or None
    )


class _TWave:
    """One wave's static structure: queries, groups, pin-scatter sites."""

    __slots__ = (
        "count",
        "cell_of",  # per lane: owning cell index
        "max_rank",
        "max_support",
        "q_kernel",  # [Q] stack slot per engine query
        "q_event",  # [Q] pins-matrix row per query
        "q_target",  # [Q] scope position being conditioned on
        "q_op",  # [Q] lane of the querying op
        "q_slot",  # [Q] event position within the op
        "q_names",  # per-query event name (engine error contexts)
        "q_support",  # [Q, S] support value indices of the querying op
        "groups",
        "site_lane",  # [T] lane per pin-scatter site
        "site_event",  # [T] pins-matrix row per site
        "site_pos",  # [T] pins-matrix column per site
        "site_maps",  # [T, S] pin index per support position
        "site_arange",
    )


#: Per-section cap on memoized decision batches (see :class:`_Section`).
MEMO_LIMIT = 128


class _Section:
    """One color class lowered against a template.

    ``read_rows``/``slot_list`` enumerate every pins-matrix row and
    every phi-ledger slot the section's decisions read or write — the
    *complete* mutable input of the batch (everything else is static
    lowering).  ``memo`` caches finished decision batches keyed by the
    exact bytes of that input: the wave-level dedup argument lifted to
    whole classes — a decision batch is a pure function of those
    arrays, so identical pre-state yields the identical (shared) choice
    objects and post-state, bit for bit.
    """

    __slots__ = ("cells", "waves", "num_ops", "read_rows", "slot_list", "memo")


class _Template:
    """The instance-wide static lowering, shared across fixers and runs.

    Events register lazily (with the first class that reads them).
    Every op's pin-scatter sites are exactly its own affected events,
    and an event's scope containing a variable is the same thing as the
    event being affected by it — so any event is registered no later
    than the first op whose fix it must observe, and later classes'
    freshly registered events (whose scopes are disjoint from all
    previously fixed variables) correctly start fully unpinned.
    """

    __slots__ = (
        "instance",
        "kind",
        "index_of",  # event name -> event index
        "names",
        "scopes",
        "slots",  # per event: stack slot of its kernel
        "kernel_of",  # per event: the kernel object
        "kernels",  # unique kernels, by fingerprint
        "fingerprint_slots",
        "stack",
        "stack_size",
        "values_ids",  # support label tuple -> small int
        "ledger_slots",  # ledger key -> {event name: phi slot}
        "ledger_size",
        "sections",  # id(cells) -> (cells, _Section)
        "max_values",
    )

    def __init__(self, instance, kind: str) -> None:
        self.instance = instance
        self.kind = kind
        self.index_of: Dict[Hashable, int] = {}
        self.names: List[Hashable] = []
        self.scopes: List[tuple] = []
        self.slots: List[int] = []
        self.kernel_of: List[object] = []
        self.kernels: List[object] = []
        self.fingerprint_slots: Dict[int, int] = {}
        self.stack: Optional[KernelStack] = None
        self.stack_size = 0
        self.values_ids: Dict[tuple, int] = {}
        self.ledger_slots: Dict[frozenset, Dict[Hashable, int]] = {}
        self.ledger_size = 0
        self.sections: Dict[int, tuple] = {}
        self.max_values = 1

    # -- events and kernels -------------------------------------------
    def ensure_event(self, event) -> int:
        index = self.index_of.get(event.name)
        if index is not None:
            return index
        kernel = event.compiled_kernel()
        if kernel is None:
            raise _NotVectorizable(
                f"event {event.name!r} has no compiled kernel"
            )
        fingerprint = kernel.fingerprint()
        slot = self.fingerprint_slots.get(fingerprint)
        if slot is None:
            slot = len(self.kernels)
            self.fingerprint_slots[fingerprint] = slot
            self.kernels.append(kernel)
        index = len(self.names)
        self.index_of[event.name] = index
        self.names.append(event.name)
        self.scopes.append(tuple(event.scope_names))
        self.slots.append(slot)
        self.kernel_of.append(kernel)
        return index

    def ensure_stack(self) -> KernelStack:
        if self.stack is None or self.stack_size != len(self.kernels):
            stack = _shared_stack(self.kernels)
            if stack.cells > DEFAULT_STACK_LIMIT:
                raise _NotVectorizable(
                    f"kernel stack of {stack.cells} cells exceeds the "
                    f"batch limit"
                )
            self.stack = stack
            self.stack_size = len(self.kernels)
        return self.stack

    # -- ledger slots --------------------------------------------------
    def _slots_for(
        self, key: frozenset, names: tuple
    ) -> Dict[Hashable, int]:
        slot_map = self.ledger_slots.get(key)
        if slot_map is None:
            base = self.ledger_size
            slot_map = {
                name: base + offset for offset, name in enumerate(names)
            }
            self.ledger_size = base + len(names)
            self.ledger_slots[key] = slot_map
        return slot_map

    def _ledger_layout(self, names: tuple, rank: int):
        """``(keys, gather slots, apply slots)`` for one op."""
        if self.kind == "naive":
            key = frozenset(names)
            slot_map = self._slots_for(key, names)
            slots = tuple(slot_map[name] for name in names)
            return (key,), slots, slots
        if rank == 1:
            return None, None, None
        if rank == 2:
            key = frozenset(names)
            slot_map = self._slots_for(key, names)
            slots = (slot_map[names[0]], slot_map[names[1]])
            return (key,), slots, slots
        u, v, w = names
        key_uv = frozenset((u, v))
        key_uw = frozenset((u, w))
        key_vw = frozenset((v, w))
        map_uv = self._slots_for(key_uv, (u, v))
        map_uw = self._slots_for(key_uw, (u, w))
        map_vw = self._slots_for(key_vw, (v, w))
        gather = (
            (map_uv[u], map_uw[u]),
            (map_uv[v], map_vw[v]),
            (map_uw[w], map_vw[w]),
        )
        apply_slots = (
            map_uv[u],
            map_uv[v],
            map_uw[u],
            map_uw[w],
            map_vw[v],
            map_vw[w],
        )
        return (key_uv, key_uw, key_vw), gather, apply_slots

    # -- class sections ------------------------------------------------
    def section_for(self, cells) -> _Section:
        entry = self.sections.get(id(cells))
        if entry is not None and entry[0] is cells:
            return entry[1]
        section = self._lower(cells)
        self.sections[id(cells)] = (cells, section)
        return section

    def _lower(self, cells) -> _Section:
        instance = self.instance
        section = _Section()
        section.cells = []
        section.waves = []
        section.memo = LRUCache(MEMO_LIMIT)
        read_set: set = set()
        slot_set: set = set()
        raw: List[tuple] = []
        num_ops = 0
        for cell_index, cell in enumerate(cells):
            op_records = []
            for op_index, op in enumerate(cell.ops):
                variable = instance.variable(op.variable)
                events = instance.events_of_variable(op.variable)
                names = tuple(event.name for event in events)
                rank = len(names)
                indices = [self.ensure_event(event) for event in events]
                values, support = _support_info(variable)
                if variable.num_values > self.max_values:
                    self.max_values = variable.num_values
                values_id = self.values_ids.setdefault(
                    values, len(self.values_ids)
                )
                sites = []
                pin_maps = []
                for event_index in indices:
                    position = self.scopes[event_index].index(
                        variable.name
                    )
                    value_map = self.kernel_of[event_index].support_map(
                        position, values
                    )
                    if value_map is None:
                        raise _NotVectorizable(
                            f"support of {variable.name!r} not indexable "
                            f"in event {self.names[event_index]!r}"
                        )
                    sites.append((event_index, position))
                    pin_maps.append(value_map)
                keys, gather, apply_slots = self._ledger_layout(
                    names, rank
                )
                read_set.update(indices)
                if apply_slots is not None:
                    slot_set.update(apply_slots)
                if gather is not None:
                    for entry in gather:
                        if isinstance(entry, tuple):
                            slot_set.update(entry)
                        else:
                            slot_set.add(entry)
                record = (
                    variable,
                    names,
                    rank,
                    values,
                    support,
                    values_id,
                    keys,
                    gather,
                    apply_slots,
                )
                op_records.append(record)
                raw.append((cell_index, op_index, record, sites, pin_maps))
                num_ops += 1
            section.cells.append((cell.owner, op_records))
        section.num_ops = num_ops
        np = _numpy()
        section.read_rows = np.asarray(sorted(read_set), dtype=np.int64)
        section.slot_list = np.asarray(sorted(slot_set), dtype=np.int64)
        self._assemble(section, raw)
        self.ensure_stack()
        return section

    def _assemble(self, section: _Section, raw: List[tuple]) -> None:
        np = _numpy()
        num_waves = max((entry[1] for entry in raw), default=-1) + 1
        buckets: List[List[tuple]] = [[] for _ in range(num_waves)]
        for entry in raw:
            buckets[entry[1]].append(entry)
        naive = self.kind == "naive"
        for bucket in buckets:
            wave = _TWave()
            count = len(bucket)
            wave.count = count
            wave.cell_of = [entry[0] for entry in bucket]
            max_rank = 1
            max_support = 1
            for _c, _w, record, _s, _m in bucket:
                if record[TOP_RANK] > max_rank:
                    max_rank = record[TOP_RANK]
                size = len(record[TOP_SUPPORT])
                if size > max_support:
                    max_support = size
            wave.max_rank = max_rank
            wave.max_support = max_support
            support_matrix = np.zeros(
                (count, max_support), dtype=np.int64
            )
            mask_matrix = np.zeros((count, max_support), dtype=bool)
            q_kernel: List[int] = []
            q_event: List[int] = []
            q_target: List[int] = []
            q_op: List[int] = []
            q_slot: List[int] = []
            q_names: List[Hashable] = []
            site_lane: List[int] = []
            site_event: List[int] = []
            site_pos: List[int] = []
            site_maps: List[tuple] = []
            grouped: Dict[Tuple[str, int], List[int]] = {}
            for lane, (_c, _w, record, sites, pin_maps) in enumerate(
                bucket
            ):
                support = record[TOP_SUPPORT]
                size = len(support)
                support_matrix[lane, :size] = support
                mask_matrix[lane, :size] = True
                for slot_index, (event_index, position) in enumerate(
                    sites
                ):
                    q_kernel.append(self.slots[event_index])
                    q_event.append(event_index)
                    q_target.append(position)
                    q_op.append(lane)
                    q_slot.append(slot_index)
                    q_names.append(self.names[event_index])
                for (event_index, position), value_map in zip(
                    sites, pin_maps
                ):
                    site_lane.append(lane)
                    site_event.append(event_index)
                    site_pos.append(position)
                    site_maps.append(
                        value_map
                        + (0,) * (max_support - len(value_map))
                    )
                rank = record[TOP_RANK]
                rule = "rankr" if naive else f"rank{rank}"
                grouped.setdefault((rule, rank), []).append(lane)
            q_op_array = np.asarray(q_op, dtype=np.int64)
            wave.q_kernel = np.asarray(q_kernel, dtype=np.int64)
            wave.q_event = np.asarray(q_event, dtype=np.int64)
            wave.q_target = np.asarray(q_target, dtype=np.int64)
            wave.q_op = q_op_array
            wave.q_slot = np.asarray(q_slot, dtype=np.int64)
            wave.q_names = q_names
            wave.q_support = support_matrix[q_op_array]
            wave.site_lane = np.asarray(site_lane, dtype=np.int64)
            wave.site_event = np.asarray(site_event, dtype=np.int64)
            wave.site_pos = np.asarray(site_pos, dtype=np.int64)
            wave.site_maps = np.asarray(
                site_maps, dtype=np.int64
            ).reshape(len(site_maps), max_support)
            wave.site_arange = np.arange(len(site_maps))
            wave.groups = []
            for (rule, rank), lane_list in grouped.items():
                group = _TGroup()
                group.rule = rule
                group.rank = rank
                group.lane_list = lane_list
                group.lanes = np.asarray(lane_list, dtype=np.int64)
                records = [bucket[lane][2] for lane in lane_list]
                group.values_id = np.asarray(
                    [record[TOP_VALUES_ID] for record in records],
                    dtype=np.float64,
                ).reshape(len(lane_list), 1)
                group.variables = [
                    record[TOP_VARIABLE] for record in records
                ]
                group.values = [
                    record[TOP_VALUES] for record in records
                ]
                group.mask = mask_matrix[group.lanes]
                if records[0][TOP_GATHER] is None:
                    group.gather = None
                    group.apply = None
                else:
                    group.gather = np.asarray(
                        [record[TOP_GATHER] for record in records],
                        dtype=np.int64,
                    )
                    group.apply = np.asarray(
                        [record[TOP_APPLY] for record in records],
                        dtype=np.int64,
                    )
                wave.groups.append(group)
            section.waves.append(wave)


def _shared_stack(kernels) -> KernelStack:
    """A :class:`KernelStack` for ``kernels``, shared through the store.

    Keyed on the kernels' interned content fingerprints, so templates
    (and worker-side class programs, which rebuild their kernel lists
    from unpickled payloads every chunk) with content-identical kernel
    sets share one stacked truth table.  A stack is immutable after
    construction and its queries delegate multi-row buckets to the same
    ``math.fsum`` order regardless of which kernel objects it was built
    from — bit-identity is preserved by construction.
    """
    key = stack_key(kernels) if artifacts_enabled() else None
    stack = _ARTIFACTS.get("stacks", key)
    if stack is None:
        stack = KernelStack(kernels)
        _ARTIFACTS.put("stacks", key, stack)
    return stack


def _template_for(instance, kind: str) -> _Template:
    templates = getattr(instance, "_vector_templates", None)
    if templates is None:
        templates = {}
        instance._vector_templates = templates
    template = templates.get(kind)
    if template is None:
        # Cross-instance reuse: a template lowered for any earlier
        # instance of the same structural fingerprint is valid verbatim
        # — equal fingerprints mean equal event names, scopes, supports
        # and truth tables, so every name, kernel and variable object
        # the template holds is interchangeable with this instance's.
        key = (
            instance_key(instance, "template", kind)
            if artifacts_enabled()
            else None
        )
        template = _ARTIFACTS.get("templates", key)
        if template is None:
            template = _Template(instance, kind)
            _ARTIFACTS.put("templates", key, template)
        else:
            # Rebind so sections lowered from here on resolve events
            # and variables against the live instance (content-equal
            # to the one the template was first lowered against).
            template.instance = instance
        templates[kind] = template
    return template


# ----------------------------------------------------------------------
# Parent side: per-fixer run state
# ----------------------------------------------------------------------
class _RunState:
    """The mutable arrays one fixer's solve carries through a template.

    ``pending`` holds the class most recently decided but not yet
    committed; decisions mutate the pins matrix and the ledger array
    speculatively, so an unconfirmed pending class (or any fixer
    progress outside the vector path, detected via the step count)
    invalidates the state and forces a rebuild from ground truth.
    """

    __slots__ = (
        "template",
        "pins",
        "phi",
        "steps_seen",
        "pending",
        "refs_cache",
    )

    def __init__(self, template: _Template) -> None:
        self.template = template
        self.pins = None
        self.phi = None
        self.steps_seen = 0
        self.pending: Optional[tuple] = None
        # Per-section live ledger entries (_resolve_refs output); the
        # entry dicts are created once per fixer and mutated in place,
        # so the resolution is stable for this fixer's lifetime.
        self.refs_cache: Dict[int, List[list]] = {}

    def ensure_capacity(self, np) -> None:
        template = self.template
        width = max(template.stack.width, 1)
        num_events = len(template.names)
        pins = self.pins
        if pins is None:
            self.pins = np.full(
                (num_events, width), -1, dtype=np.int64
            )
        else:
            rows, cols = pins.shape
            if cols < width:
                pins = np.concatenate(
                    [
                        pins,
                        np.full(
                            (rows, width - cols), -1, dtype=np.int64
                        ),
                    ],
                    axis=1,
                )
            if rows < num_events:
                pins = np.concatenate(
                    [
                        pins,
                        np.full(
                            (num_events - rows, pins.shape[1]),
                            -1,
                            dtype=np.int64,
                        ),
                    ],
                    axis=0,
                )
            self.pins = pins
        phi = self.phi
        size = template.ledger_size
        if phi is None:
            self.phi = np.ones(max(size, 1), dtype=np.float64)
        elif phi.shape[0] < size:
            self.phi = np.concatenate(
                [phi, np.ones(size - phi.shape[0], dtype=np.float64)]
            )


def _build_state(fixer, template: _Template, edges) -> _RunState:
    """Specialise fresh run state from live fixer state (ground truth)."""
    np = _numpy()
    template.ensure_stack()
    state = _RunState(template)
    state.steps_seen = len(fixer._steps)
    state.ensure_capacity(np)
    values_map = fixer.assignment._values
    if values_map:
        pins = state.pins
        kernel_of = template.kernel_of
        scopes = template.scopes
        for index in range(len(template.names)):
            kernel = kernel_of[index]
            for position, name in enumerate(scopes[index]):
                value = values_map.get(name, _MISSING)
                if value is not _MISSING:
                    pin = kernel.value_index(position, value)
                    if pin is None:
                        raise _NotVectorizable(
                            f"value of {name!r} outside the support of "
                            f"event {template.names[index]!r}"
                        )
                    pins[index, position] = pin
    if state.steps_seen or values_map:
        phi = state.phi
        for key, slot_map in template.ledger_slots.items():
            live = edges.get(key)
            if live is not None:
                for name, slot in slot_map.items():
                    phi[slot] = live[name]
    return state


def _resolve_refs(section: _Section, edges, kind: str) -> List[list]:
    """Live ledger entries per op, for the lean commit path.

    For the rank-2 and naive fixers a first touch installs the same
    all-ones default their ``local_weights`` would; for the rank-3
    fixer every edge must already exist in the phi mapping (a miss
    means no dependency edge — the scalar path raises the proper
    error).
    """
    refs: List[list] = []
    for _owner, ops in section.cells:
        cell_refs = []
        for op in ops:
            keys = op[TOP_KEYS]
            if keys is None:
                cell_refs.append(None)
            elif kind == "rank3":
                if len(keys) == 1:
                    cell_refs.append(edges[keys[0]])
                else:
                    cell_refs.append(
                        (edges[keys[0]], edges[keys[1]], edges[keys[2]])
                    )
            else:
                key = keys[0]
                live = edges.get(key)
                if live is None:
                    live = {name: 1.0 for name in op[TOP_NAMES]}
                    edges[key] = live
                cell_refs.append(live)
        refs.append(cell_refs)
    return refs


def _run_section(state: _RunState, section: _Section) -> List[list]:
    np = _numpy()
    template = state.template
    stack = template.ensure_stack()
    state.ensure_capacity(np)
    pins = state.pins
    phi = state.phi
    # Class-decision memoization: the signature is the byte-exact
    # mutable input of the whole batch (every pins row and phi slot the
    # section reads or writes), so a hit replays the identical choice
    # objects and post-state — the per-wave dedup argument, one level
    # up.  Shared across fixers via the template: the batch is a pure
    # function of the signature.
    read_rows = section.read_rows
    slot_list = section.slot_list
    signature = pins[read_rows].tobytes() + phi[slot_list].tobytes()
    memo = section.memo
    hit = memo.get(signature)
    if hit is not None:
        choices, post_pins, post_phi = hit
        pins[read_rows] = post_pins
        phi[slot_list] = post_phi
        STATS.vector_memo_hits += 1
        return choices
    max_values = template.max_values
    results: List[list] = [[] for _ in section.cells]
    for wave in section.waves:
        _run_twave(np, stack, pins, phi, wave, results, max_values)
    # LRU insert: the memo evicts its least recently used batch at
    # capacity instead of silently refusing new entries, so a workload
    # cycling through more than MEMO_LIMIT distinct signatures keeps a
    # live working set instead of freezing the first 128 forever.
    memo.put(
        signature,
        (
            results,
            pins[read_rows].copy(),
            phi[slot_list].copy(),
        ),
    )
    return results


def _run_twave(np, stack, pins, phi, wave, results, max_values) -> None:
    count = wave.count
    if count == 0:
        return
    max_support = wave.max_support
    incs = np.ones(
        (count, wave.max_rank, max_support), dtype=np.float64
    )
    if wave.q_kernel.shape[0]:
        afters, before = stack.query(
            wave.q_kernel,
            pins[wave.q_event],
            wave.q_target,
            max_values,
            wave.q_names,
        )
        gathered = np.take_along_axis(afters, wave.q_support, axis=1)
        positive = before > 0.0
        denominator = np.where(positive, before, 1.0)
        ratios = np.where(
            positive[:, None], gathered / denominator[:, None], 0.0
        )
        incs[wave.q_op, wave.q_slot] = ratios

    choices: List[object] = [None] * count
    positions = np.zeros(count, dtype=np.int64)
    for group in wave.groups:
        lanes = group.lanes
        rank = group.rank
        rule = group.rule
        lane_count = lanes.shape[0]
        sub = incs[lanes, :rank]
        if group.gather is None:
            weights = None
            key_matrix = np.concatenate(
                [group.values_id, sub.reshape(lane_count, -1)], axis=1
            )
        else:
            gathered_w = phi[group.gather]
            if rule == "rank3":
                weights = gathered_w[:, :, 0] * gathered_w[:, :, 1]
            else:
                weights = gathered_w
            key_matrix = np.concatenate(
                [
                    group.values_id,
                    weights,
                    sub.reshape(lane_count, -1),
                ],
                axis=1,
            )
        # Deduplicate lanes with identical selection inputs; the
        # representative's choice is shared (a decision reads nothing
        # but support labels, Inc rows and bookkeeping weights).
        seen: Dict[bytes, int] = {}
        reps: List[int] = []
        assign = np.empty(lane_count, dtype=np.int64)
        for row in range(lane_count):
            key = key_matrix[row].tobytes()
            index = seen.get(key, -1)
            if index < 0:
                index = len(reps)
                seen[key] = index
                reps.append(row)
            assign[row] = index
        rep_rows = np.asarray(reps, dtype=np.int64)
        variables = [group.variables[row] for row in reps]
        values = [group.values[row] for row in reps]
        mask = group.mask[rep_rows]
        rep_sub = sub[rep_rows]
        if rule == "rank1":
            rep_choices = select_rank1_class(
                variables, values, rep_sub[:, 0], mask
            )
        elif rule == "rank2":
            rep_choices = select_rank2_class(
                variables,
                values,
                rep_sub[:, 0],
                rep_sub[:, 1],
                weights[rep_rows],
                mask,
            )
        elif rule == "rank3":
            rep_choices = select_rank3_class(
                variables,
                values,
                rep_sub[:, 0],
                rep_sub[:, 1],
                rep_sub[:, 2],
                weights[rep_rows],
                mask,
            )
        else:
            rep_choices = select_rankr_class(
                variables,
                values,
                [
                    rep_sub[:, position]
                    for position in range(rank)
                ],
                weights[rep_rows],
                mask,
            )
        rep_positions = np.asarray(
            [
                values[index].index(choice.value)
                for index, choice in enumerate(rep_choices)
            ],
            dtype=np.int64,
        )
        positions[lanes] = rep_positions[assign]
        lane_list = group.lane_list
        for offset in range(lane_count):
            choices[lane_list[offset]] = rep_choices[assign[offset]]
        if group.apply is not None:
            if rule == "rank3":
                rep_values = np.asarray(
                    [
                        (
                            choice.decomposition.a1,
                            choice.decomposition.b1,
                            choice.decomposition.a2,
                            choice.decomposition.c2,
                            choice.decomposition.b3,
                            choice.decomposition.c3,
                        )
                        if choice.decomposition is not None
                        else choice.new_weights
                        for choice in rep_choices
                    ],
                    dtype=np.float64,
                )
            else:
                rep_values = np.asarray(
                    [choice.new_weights for choice in rep_choices],
                    dtype=np.float64,
                )
            phi[group.apply] = rep_values[assign]

    cell_of = wave.cell_of
    for lane in range(count):
        results[cell_of[lane]].append(choices[lane])
    if wave.site_event.shape[0]:
        pins[wave.site_event, wave.site_pos] = wave.site_maps[
            wave.site_arange, positions[wave.site_lane]
        ]


# ----------------------------------------------------------------------
# Parent-side entry points
# ----------------------------------------------------------------------
def decide_class_choices(
    fixer, kind: str, cells, instance, edges
) -> Optional[List[list]]:
    """Batched pure decide for a whole color class.

    Returns the per-cell choice lists (and parks the run state as
    pending for :func:`cached_commit` / the lean commit path), or
    ``None`` when the class should take the scalar per-op path instead
    — scalar decide mode, missing kernels, or any internal error (the
    scalar loop then reproduces the exact scalar-path outcome,
    including error attribution).
    """
    if not vector_enabled():
        return None
    try:
        template = _template_for(instance, kind)
        section = template.section_for(cells)
        state = getattr(fixer, "_vector_state", None)
        if (
            state is None
            or state.template is not template
            or state.pending is not None
            or state.steps_seen != len(fixer._steps)
        ):
            state = _build_state(fixer, template, edges)
        refs = state.refs_cache.get(id(section))
        if refs is None:
            refs = _resolve_refs(section, edges, kind)
            state.refs_cache[id(section)] = refs
        choices = _run_section(state, section)
    except Exception:
        STATS.vector_fallbacks += 1
        fixer._vector_state = None
        return None
    state.pending = (cells, section, refs)
    state.steps_seen = len(fixer._steps) + section.num_ops
    fixer._vector_state = state
    return choices


def cached_commit(fixer, cells) -> Optional[_RunState]:
    """The pending run state for ``cells``, if the fixer just decided it.

    Identity-checked so a commit can only reuse the lowering of the
    class it is committing; the caller must clear ``pending`` (or drop
    the state entirely) once the fixer has been mutated.
    """
    state = getattr(fixer, "_vector_state", None)
    if (
        state is not None
        and state.pending is not None
        and state.pending[0] is cells
    ):
        return state
    return None


# ----------------------------------------------------------------------
# Worker side: one-shot class programs from payloads
# ----------------------------------------------------------------------
# Worker op records are plain tuples; the indices below name the fields.
OP_VARIABLE = 0  # the DiscreteVariable object
OP_NAMES = 1  # tuple of affected event names, in bookkeeping order
OP_RANK = 2  # number of affected events
OP_VALUES = 3  # tuple of support value labels, in support order
OP_WEIGHTS = 4  # working-ledger refs (dict, dict triple, or None)
OP_PIN_MAPS = 5  # per pin site: tuple mapping support position -> pin index
OP_SUPPORT = 6  # tuple of support value indices (into the value list)


class _Wave:
    """One worker wave's structure: queries, lanes, pin-scatter targets."""

    __slots__ = (
        "lanes",  # [(cell index, op record)], in plan (cell) order
        "max_rank",
        "q_kernel",
        "q_event",
        "q_target",
        "q_op",
        "q_slot",
        "q_names",
        "support_matrix",
        "support_mask",
        "groups",  # [(rule, rank, [lane])]
        "scatter_event",
        "scatter_pos",
    )


class ClassProgram:
    """A payload chunk lowered to stacked arrays plus wave structure."""

    __slots__ = (
        "kind",
        "kernels",
        "names",
        "scopes",
        "pins",
        "slots",
        "cells",  # [(owner, [op record], [event index])]
        "ledger",
        "waves",
        "max_values",
    )

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.kernels: List[object] = []
        self.names: List[Hashable] = []
        self.scopes: List[Tuple[Hashable, ...]] = []
        self.pins: List[List[int]] = []
        self.slots: List[int] = []
        self.cells: List[tuple] = []
        self.ledger: Dict[frozenset, Dict[Hashable, float]] = {}
        self.waves: List[_Wave] = []
        self.max_values = 1


def _assemble_waves(program: ClassProgram, raw_ops: List[tuple]) -> None:
    """Build the per-wave flat structure from raw per-op info.

    ``raw_ops`` entries are ``(cell_index, op_index, op_record, targets,
    sites)``: ``targets`` pairs each affected event index with the
    variable's scope position there, ``sites`` lists the cell events to
    re-pin after the op as ``(event_index, position)`` pairs aligned
    with the op record's ``OP_PIN_MAPS``.
    """
    np = _numpy()
    num_waves = max((entry[1] for entry in raw_ops), default=-1) + 1
    buckets: List[List[tuple]] = [[] for _ in range(num_waves)]
    for entry in raw_ops:
        buckets[entry[1]].append(entry)
    slots = program.slots
    names = program.names
    naive = program.kind == "naive"
    for bucket in buckets:
        wave = _Wave()
        wave.lanes = [(entry[0], entry[2]) for entry in bucket]
        q_kernel: List[int] = []
        q_event: List[int] = []
        q_target: List[int] = []
        q_op: List[int] = []
        q_slot: List[int] = []
        q_names: List[Hashable] = []
        groups: Dict[Tuple[str, int], List[int]] = {}
        scatter_event: List[int] = []
        scatter_pos: List[int] = []
        max_rank = 1
        max_support = 1
        for lane, (_cell, _w, op, targets, sites) in enumerate(bucket):
            rank = op[OP_RANK]
            if rank > max_rank:
                max_rank = rank
            size = len(op[OP_VALUES])
            if size > max_support:
                max_support = size
            for slot, (event_index, target) in enumerate(targets):
                if target < 0:
                    continue
                q_kernel.append(slots[event_index])
                q_event.append(event_index)
                q_target.append(target)
                q_op.append(lane)
                q_slot.append(slot)
                q_names.append(names[event_index])
            rule = "rankr" if naive else f"rank{rank}"
            groups.setdefault((rule, rank), []).append(lane)
            for site in sites:
                scatter_event.append(site[0])
                scatter_pos.append(site[1])
        count = len(bucket)
        support_matrix = np.zeros((count, max_support), dtype=np.int64)
        support_mask = np.zeros((count, max_support), dtype=bool)
        for lane, (_cell, _w, op, _t, _s) in enumerate(bucket):
            indices = op[OP_SUPPORT]
            size = len(indices)
            support_matrix[lane, :size] = indices
            support_mask[lane, :size] = True
        wave.max_rank = max_rank
        wave.q_kernel = np.asarray(q_kernel, dtype=np.int64)
        wave.q_event = np.asarray(q_event, dtype=np.int64)
        wave.q_target = np.asarray(q_target, dtype=np.int64)
        wave.q_op = np.asarray(q_op, dtype=np.int64)
        wave.q_slot = np.asarray(q_slot, dtype=np.int64)
        wave.q_names = q_names
        wave.support_matrix = support_matrix
        wave.support_mask = support_mask
        wave.groups = [
            (rule, rank, lanes)
            for (rule, rank), lanes in groups.items()
        ]
        wave.scatter_event = np.asarray(scatter_event, dtype=np.int64)
        wave.scatter_pos = np.asarray(scatter_pos, dtype=np.int64)
        program.waves.append(wave)


def _register_event(
    program, slot_of, name, kernel, scope_names, pins
) -> int:
    """Add one event to the program, sharing stacked kernels by print."""
    fingerprint = kernel.fingerprint()
    slot = slot_of.get(fingerprint)
    if slot is None:
        slot = len(program.kernels)
        slot_of[fingerprint] = slot
        program.kernels.append(kernel)
    index = len(program.names)
    program.names.append(name)
    program.scopes.append(tuple(scope_names))
    program.pins.append(pins)
    program.slots.append(slot)
    return index


def _finish_cell(
    program,
    raw_ops,
    cell_index,
    owner,
    cell_ops,
    cell_events,
    event_kernels,
):
    """Resolve one cell's per-op records, targets and pin sites.

    ``cell_ops`` carries ``(variable, names, event_indices)`` per op;
    ``event_kernels`` maps the cell's event indices to their kernels.
    The working ledger must already hold every entry a rank-3 op reads
    (payload ledger slices ship them); naive and rank-2 first touches
    install the all-ones default ``local_weights`` would.
    """
    kind = program.kind
    ledger = program.ledger
    # One scan over the cell's event scopes: which events (and where)
    # contain each variable — execute_cell pins *every* view of the
    # cell after each op, so pin sites cover the whole cell.
    by_name: Dict[Hashable, List[tuple]] = {}
    for event_index in cell_events:
        kernel = event_kernels[event_index]
        for position, scope_name in enumerate(
            program.scopes[event_index]
        ):
            by_name.setdefault(scope_name, []).append(
                (event_index, position, kernel)
            )
    op_records = []
    for op_index, (variable, names, indices) in enumerate(cell_ops):
        values, support = _support_info(variable)
        if variable.num_values > program.max_values:
            program.max_values = variable.num_values
        sites_raw = by_name.get(variable.name, ())
        position_of = {site[0]: site[1] for site in sites_raw}
        targets = [
            (event_index, position_of.get(event_index, -1))
            for event_index in indices
        ]
        pin_maps = []
        sites = []
        for event_index, position, kernel in sites_raw:
            value_map = kernel.support_map(position, values)
            if value_map is None:
                raise _NotVectorizable(
                    f"support of {variable.name!r} not indexable in "
                    f"event {program.names[event_index]!r}"
                )
            pin_maps.append(value_map)
            sites.append((event_index, position))
        rank = len(names)
        if kind == "naive":
            key = frozenset(names)
            weights_ref = ledger.get(key)
            if weights_ref is None:
                weights_ref = {name: 1.0 for name in names}
                ledger[key] = weights_ref
        elif rank == 1:
            weights_ref = None
        elif rank == 2:
            key = frozenset(names)
            weights_ref = ledger.get(key)
            if weights_ref is None:
                if kind == "rank3":
                    # Rank-3 ledger slices ship every edge; a miss
                    # means a malformed payload — scalar replay will
                    # raise the proper error.
                    raise KeyError(key)
                weights_ref = {names[0]: 1.0, names[1]: 1.0}
                ledger[key] = weights_ref
        else:
            u, v, w = names
            weights_ref = (
                ledger[frozenset((u, v))],
                ledger[frozenset((u, w))],
                ledger[frozenset((v, w))],
            )
        record = (
            variable,
            names,
            rank,
            values,
            weights_ref,
            tuple(pin_maps),
            support,
        )
        op_records.append(record)
        raw_ops.append((cell_index, op_index, record, targets, sites))
    program.cells.append((owner, op_records, cell_events))


def program_from_payloads(payloads) -> ClassProgram:
    """Lower worker-side :class:`~repro.runtime.workers.CellPayload`\\ s.

    The payloads already carry kernels, pins and ledger slices, so no
    template is involved; the program is one-shot for this chunk.
    """
    kind = payloads[0].kind if payloads else "naive"
    program = ClassProgram(kind)
    slot_of: Dict[int, int] = {}
    event_kernels: Dict[int, object] = {}
    raw_ops: List[tuple] = []
    for cell_index, payload in enumerate(payloads):
        index_of: Dict[Hashable, int] = {}
        cell_events: List[int] = []
        for event in payload.events:
            index = _register_event(
                program,
                slot_of,
                event.name,
                event.kernel,
                event.scope_names,
                list(event.pins),
            )
            index_of[event.name] = index
            event_kernels[index] = event.kernel
            cell_events.append(index)
        for key, entries in payload.ledger:
            program.ledger[key] = dict(entries)
        cell_ops = []
        for op in payload.ops:
            names = op.event_names
            indices = tuple(index_of[name] for name in names)
            cell_ops.append((op.variable, names, indices))
        _finish_cell(
            program,
            raw_ops,
            cell_index,
            payload.owner,
            cell_ops,
            cell_events,
            event_kernels,
        )
    _assemble_waves(program, raw_ops)
    return program


def refresh_program(program: ClassProgram, payloads) -> None:
    """Refresh a cached chunk program's dynamic state in place.

    The shared-memory workers cache the :class:`ClassProgram` lowered
    for a chunk shape (generation, class, roster range) and replay it on
    later solves of the same instance; only the pins and the ledger
    values change between executes.  Raises
    :class:`_NotVectorizable` on any structural mismatch — callers fall
    back to a fresh lowering or the scalar loop, so a stale cache can
    never change results.
    """
    pins = program.pins
    total = len(pins)
    index = 0
    for payload in payloads:
        for event in payload.events:
            if index >= total or program.names[index] != event.name:
                raise _NotVectorizable(
                    "cached program does not match the chunk's events"
                )
            pins[index] = list(event.pins)
            index += 1
    if index != total:
        raise _NotVectorizable(
            "cached program does not match the chunk's events"
        )
    # Ledger dicts are mutated in place by _apply_ledger during a run,
    # so every shipped entry is rewritten from the payload values and
    # every first-touch default (keys the payloads do not ship) is
    # reset to the all-ones state local_weights would install.
    shipped: set = set()
    for payload in payloads:
        for key, entries in payload.ledger:
            ref = program.ledger.get(key)
            if ref is None:
                raise _NotVectorizable(
                    "cached program does not match the chunk's ledger"
                )
            for name, weight in entries:
                ref[name] = weight
            shipped.add(key)
    for key, ref in program.ledger.items():
        if key not in shipped:
            for name in ref:
                ref[name] = 1.0


def _read_weights(kind: str, rule: str, op) -> tuple:
    """The bookkeeping weights an op's decision reads, as Python floats."""
    if rule == "rank1":
        return ()
    names = op[OP_NAMES]
    refs = op[OP_WEIGHTS]
    if kind == "naive":
        return tuple(refs[name] for name in names)
    if rule == "rank2":
        return (refs[names[0]], refs[names[1]])
    uv, uw, vw = refs
    u, v, w = names
    return (uv[u] * uw[u], uv[v] * vw[v], uw[w] * vw[w])


def _apply_ledger(kind: str, op, choice) -> None:
    """Absorb a committed choice into the working ledger (wave-local)."""
    if kind == "naive":
        refs = op[OP_WEIGHTS]
        for name, weight in zip(op[OP_NAMES], choice.new_weights):
            refs[name] = weight
        return
    rank = op[OP_RANK]
    if rank == 1:
        return
    names = op[OP_NAMES]
    if rank == 2:
        refs = op[OP_WEIGHTS]
        refs[names[0]], refs[names[1]] = choice.new_weights
        return
    uv, uw, vw = op[OP_WEIGHTS]
    u, v, w = names
    decomposition = choice.decomposition
    uv[u] = decomposition.a1
    uv[v] = decomposition.b1
    uw[u] = decomposition.a2
    uw[w] = decomposition.c2
    vw[v] = decomposition.b3
    vw[w] = decomposition.c3


def run_program(program: ClassProgram) -> List[List[object]]:
    """Execute a lowered payload chunk wave by wave.

    Mutates only program-local state (the pins matrix and the working
    ledger copies).  Raises on any condition the vectorized arithmetic
    cannot reproduce — callers fall back to the scalar per-op loop.
    """
    np = _numpy()
    stack = _shared_stack(program.kernels)
    if stack.cells > DEFAULT_STACK_LIMIT:
        raise _NotVectorizable(
            f"kernel stack of {stack.cells} cells exceeds the batch "
            f"limit"
        )
    width = max(stack.width, 1)
    filler = [-1] * width
    pins = np.array(
        [
            (event_pins + filler[len(event_pins):])
            if event_pins
            else filler
            for event_pins in program.pins
        ],
        dtype=np.int64,
    ).reshape(len(program.pins), width)
    results: List[List[object]] = [[] for _ in program.cells]
    kind = program.kind
    max_values = program.max_values
    for wave in program.waves:
        _run_wave(np, stack, pins, wave, results, kind, max_values)
    return results


def _run_wave(np, stack, pins, wave, results, kind, max_values) -> None:
    """Decide one wave (the next op of every still-active cell)."""
    lanes = wave.lanes
    count = len(lanes)
    if count == 0:
        return
    max_rank = wave.max_rank
    max_support = wave.support_matrix.shape[1]
    incs = np.ones((count, max_rank, max_support), dtype=np.float64)
    if wave.q_kernel.shape[0]:
        afters, before = stack.query(
            wave.q_kernel,
            pins[wave.q_event],
            wave.q_target,
            max_values,
            wave.q_names,
        )
        gathered = np.take_along_axis(
            afters, wave.support_matrix[wave.q_op], axis=1
        )
        positive = before > 0.0
        denominator = np.where(positive, before, 1.0)
        ratios = np.where(
            positive[:, None], gathered / denominator[:, None], 0.0
        )
        incs[wave.q_op, wave.q_slot] = ratios

    choices: List[object] = [None] * count
    positions: List[int] = [0] * count
    for rule, rank, group_lanes in wave.groups:
        unique: Dict[tuple, int] = {}
        rep_lanes: List[int] = []
        rep_weights: List[tuple] = []
        assign: List[int] = []
        for lane in group_lanes:
            op = lanes[lane][1]
            weights = _read_weights(kind, rule, op)
            key = (
                op[OP_VALUES],
                weights,
                incs[lane, :rank].tobytes(),
            )
            index = unique.get(key, -1)
            if index < 0:
                index = len(rep_lanes)
                unique[key] = index
                rep_lanes.append(lane)
                rep_weights.append(weights)
            assign.append(index)
        rep_array = np.asarray(rep_lanes, dtype=np.int64)
        variables = [lanes[lane][1][OP_VARIABLE] for lane in rep_lanes]
        values = [lanes[lane][1][OP_VALUES] for lane in rep_lanes]
        mask = wave.support_mask[rep_array]
        sub = incs[rep_array]
        if rule == "rank1":
            rep_choices = select_rank1_class(
                variables, values, sub[:, 0], mask
            )
        elif rule == "rank2":
            weight_matrix = np.asarray(
                rep_weights, dtype=np.float64
            ).reshape(len(rep_lanes), 2)
            rep_choices = select_rank2_class(
                variables,
                values,
                sub[:, 0],
                sub[:, 1],
                weight_matrix,
                mask,
            )
        elif rule == "rank3":
            weight_matrix = np.asarray(
                rep_weights, dtype=np.float64
            ).reshape(len(rep_lanes), 3)
            rep_choices = select_rank3_class(
                variables,
                values,
                sub[:, 0],
                sub[:, 1],
                sub[:, 2],
                weight_matrix,
                mask,
            )
        else:
            weight_matrix = np.asarray(
                rep_weights, dtype=np.float64
            ).reshape(len(rep_lanes), rank)
            rep_choices = select_rankr_class(
                variables,
                values,
                [sub[:, position] for position in range(rank)],
                weight_matrix,
                mask,
            )
        rep_positions = [
            values[index].index(choice.value)
            for index, choice in enumerate(rep_choices)
        ]
        for offset, lane in enumerate(group_lanes):
            index = assign[offset]
            choices[lane] = rep_choices[index]
            positions[lane] = rep_positions[index]

    # Apply the wave in lane (plan) order: ledger updates, choice
    # collection, and one batched pin scatter for the next wave.
    scatter_values: List[int] = []
    for lane in range(count):
        cell_index, op = lanes[lane]
        choice = choices[lane]
        _apply_ledger(kind, op, choice)
        position = positions[lane]
        for value_map in op[OP_PIN_MAPS]:
            scatter_values.append(value_map[position])
        results[cell_index].append(choice)
    if scatter_values:
        pins[wave.scatter_event, wave.scatter_pos] = np.asarray(
            scatter_values, dtype=np.int64
        )


def execute_class_cells(payloads) -> List[List[object]]:
    """Worker-side batch execution of one chunk's cells.

    Takes the vector path when possible; otherwise (or on any internal
    error) replays the cells through the scalar
    :func:`~repro.runtime.workers.execute_cell` loop in plan order,
    which raises exactly the errors the scalar path would.
    """
    try:
        program = program_from_payloads(payloads)
        return run_program(program)
    except Exception:
        STATS.vector_fallbacks += 1
        from repro.runtime.workers import execute_cell

        return [execute_cell(payload) for payload in payloads]
