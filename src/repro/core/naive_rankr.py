"""The naive rank-r fixer the paper's introduction sketches (and rejects).

Section 1 of the paper observes that the rank-2 argument generalises
"in a straightforward way" to variables affecting up to ``r`` events —
at the cost of a far stronger criterion: each fixing may multiply the
affected probabilities by up to ``r`` (instead of 2), and an event may
depend on up to ``C(d, r-1)`` variables, so the straightforward
generalisation needs ``p < r^-C(d, r-1)``.  The whole point of the
paper's main theorem is that for ``r = 3`` this cost is *not* necessary:
``p < 2^-d`` suffices.

This module implements that straightforward generalisation anyway, for
three reasons:

* it is the only deterministic fixer in this library that works for
  **arbitrary rank** — the regime of the paper's Conjecture 1.5;
* it makes the gap measurable: the ablation benchmarks can show
  instances that the naive fixer must reject but the P*-based rank-3
  fixer solves;
* its bookkeeping is the natural ``r``-ary analogue of Theorem 1.1 and
  doubles as a reference implementation for the weighted-averaging step.

The bookkeeping: for each variable hyperedge ``h`` (the set of events a
variable affects) we maintain one weight ``w_h^v >= 0`` per affected
event ``v`` with ``sum_v w_h^v <= |h|``; all weights start at 1.  When
fixing a variable on ``h``, linearity of expectation yields a value
whose weighted increase sum is at most ``sum_v w_h^v <= r``, and the
weights absorb the realised increases.  At the end, event ``v``'s
probability is bounded by ``p_v * prod_h w_h^v <= p_v * r^{H_v}`` where
``H_v`` is the number of distinct variable hyperedges at ``v`` — so the
per-event criterion ``p_v < r^-H_v`` (implied by the paper's global
``p < r^-C(d, r-1)``) guarantees success.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import CriterionViolationError, NoGoodValueError, PStarViolationError
from repro.lll.instance import LLLInstance
from repro.core.results import FixingResult, StepRecord, make_step_record
from repro.core.selection import Decision, select_rankr
from repro.probability import DiscreteVariable, PartialAssignment

#: Slack below which a chosen value counts as violating the budget.
CONSTRAINT_TOLERANCE = 1e-9


def naive_threshold(rank: int, hyperedges_at_event: int) -> float:
    """The per-event probability bound the naive argument needs.

    ``p_v < rank^-H_v`` where ``H_v`` counts the distinct variable
    hyperedges at the event.  The paper states the global worst case
    ``H_v <= C(d, r-1)``.
    """
    return float(max(rank, 2)) ** (-hyperedges_at_event)


def check_naive_criterion(instance: LLLInstance) -> None:
    """Raise unless every event satisfies its naive per-event bound.

    Raises
    ------
    CriterionViolationError
        Naming the first event whose probability reaches
        ``r^-{#hyperedges at the event}``.
    """
    rank = max(instance.rank, 2)
    hypergraph = instance.variable_hypergraph
    for event in instance.events:
        # Hyperedges (event sets) of the variables at this event; several
        # variables sharing the same event set share one weight vector.
        hyperedges = {
            frozenset(edge.nodes)
            for edge in hypergraph.incident_edges(event.name)
        }
        bound = naive_threshold(rank, len(hyperedges))
        probability = event.probability()
        if probability >= bound:
            raise CriterionViolationError(
                f"event {event.name!r} violates the naive rank-{rank} "
                f"criterion: p={probability:.6g} >= {rank}^-{len(hyperedges)}"
                f" = {bound:.6g}"
            )


class NaiveRankRFixer:
    """Deterministic fixer for arbitrary rank under the naive criterion.

    Parameters
    ----------
    instance:
        Any LLL instance (no rank restriction).
    require_criterion:
        If True (default), reject instances violating the per-event naive
        criterion ``p_v < r^-H_v`` up front.
    """

    def __init__(
        self, instance: LLLInstance, require_criterion: bool = True
    ) -> None:
        self._instance = instance
        self._rank = max(instance.rank, 1)
        if require_criterion:
            check_naive_criterion(instance)
        self._assignment = PartialAssignment()
        # One weight vector per hyperedge (= per distinct affected-event
        # set); variables with the same event set share it, exactly like
        # multiple rank-2 variables sharing a dependency edge.
        self._weights: Dict[FrozenSet, Dict[Hashable, float]] = {}
        # Via the instance (and hence the artifact store's parameters
        # tier): same-shape instances share one probability enumeration.
        self._initial_probabilities = instance.event_probabilities()
        self._steps: List[StepRecord] = []

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def assignment(self) -> PartialAssignment:
        """The (partial) assignment built so far."""
        return self._assignment

    @property
    def steps(self) -> Tuple[StepRecord, ...]:
        """Trace of the fixing steps performed so far."""
        return tuple(self._steps)

    def is_fixed(self, variable_name: Hashable) -> bool:
        """Whether the named variable has already been fixed."""
        return self._assignment.is_fixed(variable_name)

    # ------------------------------------------------------------------
    # Fixing
    # ------------------------------------------------------------------
    def local_weights(self, events: Sequence) -> Tuple[float, ...]:
        """The hyperedge weight vector a decision on ``events`` reads."""
        key = frozenset(event.name for event in events)
        weights = self._weights.setdefault(
            key, {event.name: 1.0 for event in events}
        )
        return tuple(weights[event.name] for event in events)

    def decide(self, variable_name: Hashable) -> Decision:
        """Compute (without committing) the weighted-average decision."""
        if self._assignment.is_fixed(variable_name):
            raise PStarViolationError(
                f"variable {variable_name!r} is already fixed"
            )
        variable = self._instance.variable(variable_name)
        events = self._instance.events_of_variable(variable_name)
        choice = select_rankr(
            variable, events, self.local_weights(events), self._assignment
        )
        return Decision(
            variable=variable, events=tuple(events), choice=choice
        )

    def commit(self, decision: Decision) -> StepRecord:
        """Apply a decision: update the weights, assignment and trace."""
        variable = decision.variable
        events = decision.events
        choice = decision.choice
        weights = self._weights[
            frozenset(event.name for event in events)
        ]
        for event, new_weight in zip(events, choice.new_weights):
            weights[event.name] = new_weight
        self._assignment.fix(variable, choice.value)
        record = StepRecord(
            variable=variable.name,
            value=choice.value,
            events=tuple(event.name for event in events),
            increases=choice.increases,
            slack=choice.slack,
            num_good_values=choice.num_good_values,
            num_values=variable.num_values,
        )
        self._steps.append(record)
        return record

    def fix_variable(self, variable_name: Hashable) -> StepRecord:
        """Fix one variable by weighted-average value selection."""
        return self.commit(self.decide(variable_name))

    # ------------------------------------------------------------------
    # Whole-class batch decisions (the vector decide plane)
    # ------------------------------------------------------------------
    def decide_class(self, cells) -> Optional[List[list]]:
        """Batched pure decide for a whole color class.

        Returns one choice list per cell (choices in op order), computed
        on the vector plane (:mod:`repro.core.vector`) and bit-identical
        to looping :meth:`decide`/:meth:`commit` over the class in plan
        order.  ``None`` means the class is not vectorizable (scalar
        decide mode, events without compiled kernels) and the caller
        should keep its per-op loop.  Never mutates the fixer's
        bookkeeping state; the speculative run state it parks is
        confirmed or discarded by :meth:`commit_class`.
        """
        from repro.core import vector

        return vector.decide_class_choices(
            self, "naive", cells, self._instance, self._weights
        )

    def commit_class(self, cells, class_choices) -> None:
        """Commit a class's worth of decided choices, in plan order.

        With no pending run state for this class, defers to the
        full-fidelity :meth:`commit` per op; otherwise applies the same
        mutations through a lean loop over the template's resolved op
        records and the live weight vectors the decide resolved.
        """
        from repro.core import vector

        state = vector.cached_commit(self, cells)
        if state is None:
            self._vector_state = None
            for cell, choices in zip(cells, class_choices):
                for op, choice in zip(cell.ops, choices):
                    variable = self._instance.variable(op.variable)
                    events = self._instance.events_of_variable(op.variable)
                    self.commit(
                        Decision(
                            variable=variable,
                            events=tuple(events),
                            choice=choice,
                        )
                    )
            return
        assignment = self._assignment
        steps = self._steps
        section = state.pending[1]
        refs = state.pending[2]
        for (_owner, ops), cell_refs, choices in zip(
            section.cells, refs, class_choices
        ):
            for op, ref, choice in zip(ops, cell_refs, choices):
                variable = op[vector.TOP_VARIABLE]
                names = op[vector.TOP_NAMES]
                for name, weight in zip(names, choice.new_weights):
                    ref[name] = weight
                assignment.fix(variable, choice.value)
                steps.append(
                    make_step_record(
                        variable=variable.name,
                        value=choice.value,
                        events=names,
                        increases=choice.increases,
                        slack=choice.slack,
                        num_good_values=choice.num_good_values,
                        num_values=variable.num_values,
                    )
                )
        state.pending = None

    def run(self, order: Optional[Iterable[Hashable]] = None) -> FixingResult:
        """Fix every variable (in ``order`` if given) and return the result."""
        if order is None:
            order = [variable.name for variable in self._instance.variables]
        for name in order:
            self.fix_variable(name)
        remaining = [
            variable.name
            for variable in self._instance.variables
            if not self._assignment.is_fixed(variable.name)
        ]
        for name in remaining:
            self.fix_variable(name)
        return FixingResult(
            assignment=self._assignment,
            steps=tuple(self._steps),
            certified_bounds=self.certified_bounds(),
        )

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def certified_bounds(self) -> Dict[Hashable, float]:
        """Per-event bound ``p_v * product of absorbed hyperedge weights``."""
        bounds = dict(self._initial_probabilities)
        for weights in self._weights.values():
            for node, weight in weights.items():
                bounds[node] *= weight
        return bounds

    def check_invariant(self) -> None:
        """Assert the weighted-budget bookkeeping invariant.

        Every hyperedge's weights sum to at most its cardinality (the
        budget the averaging argument preserves), and every event's
        conditional probability is at most its certified bound.
        """
        for key, weights in self._weights.items():
            if sum(weights.values()) > len(key) + 1e-7:
                raise PStarViolationError(
                    f"hyperedge {set(key)!r}: weights sum to "
                    f"{sum(weights.values())} > {len(key)}"
                )
        bounds = self.certified_bounds()
        for event in self._instance.events:
            conditional = event.probability(self._assignment)
            if conditional > bounds[event.name] + 1e-7:
                raise PStarViolationError(
                    f"event {event.name!r}: conditional probability "
                    f"{conditional} exceeds certified bound "
                    f"{bounds[event.name]}"
                )


def solve_naive(
    instance: LLLInstance,
    order: Optional[Iterable[Hashable]] = None,
    require_criterion: bool = True,
) -> FixingResult:
    """Convenience wrapper: build a :class:`NaiveRankRFixer` and run it."""
    fixer = NaiveRankRFixer(instance, require_criterion=require_criterion)
    return fixer.run(order)
