"""The execution plane: color-class fix plans and pluggable schedulers.

The distributed algorithms of the paper (Corollaries 1.2 and 1.4) reduce
fixing to a *schedule*: a sequence of color classes, each a set of
independent cells whose fixings touch pairwise-disjoint event sets.
This package makes that schedule an explicit, inspectable object
(:class:`FixPlan`) and executes it through interchangeable backends:

* :class:`SerialScheduler` — one op at a time in plan order; the
  differential oracle every other backend must match bit-for-bit;
* :class:`BatchScheduler` — same order, but decisions are memoized on
  the (kernel fingerprint, pins, weights) local situation, collapsing
  structurally identical fixings across a class to one engine pass;
* :class:`ProcessScheduler` — cells of a class are dispatched to worker
  processes and their decisions committed in deterministic plan order.

The equivalence of all three is exactly the paper's independence
argument: within a class, a variable appears only in the scopes of its
own cell's events, so cross-cell decisions commute.
"""

from repro.runtime.plan import (
    ColorClass,
    FixCell,
    FixOp,
    FixPlan,
    build_plan_rank2,
    build_plan_rank3,
    build_resampling_round,
    build_serial_plan,
    plan_for_instance,
    plan_from_two_hop_coloring,
)
from repro.runtime.schedulers import (
    BatchScheduler,
    ProcessScheduler,
    Scheduler,
    SerialScheduler,
    make_scheduler,
)
from repro.runtime.shm import (
    IPC_MODES,
    ipc_mode,
    live_segment_names,
    set_ipc_mode,
    shm_enabled,
    using_ipc,
)

__all__ = [
    "ColorClass",
    "FixCell",
    "FixOp",
    "FixPlan",
    "build_plan_rank2",
    "build_plan_rank3",
    "build_resampling_round",
    "build_serial_plan",
    "plan_for_instance",
    "plan_from_two_hop_coloring",
    "BatchScheduler",
    "ProcessScheduler",
    "Scheduler",
    "SerialScheduler",
    "make_scheduler",
    "IPC_MODES",
    "ipc_mode",
    "live_segment_names",
    "set_ipc_mode",
    "shm_enabled",
    "using_ipc",
]
