"""Picklable cell payloads and the process-pool worker entry point.

:class:`~repro.runtime.schedulers.ProcessScheduler` cannot ship the
fixers to workers: a :class:`~repro.probability.BadEvent` closes over an
arbitrary predicate.  What *is* picklable is everything a decision
actually reads — the compiled :class:`~repro.probability.engine.EventKernel`
(plain tuples), the :class:`~repro.probability.DiscreteVariable`\\ s and
the cell's slice of the bookkeeping ledger.  So the parent serialises
each cell into a :class:`CellPayload`, the worker replays the cell's
decisions through the *same* pure selection rules
(:mod:`repro.core.selection`) against kernel-backed event views, and the
parent commits the returned choices in deterministic plan order.

Bit-identity argument: the view's ``conditional_increases`` reproduces
the kernel path of :meth:`BadEvent.conditional_increases` operation for
operation (one ``probability`` pin query plus one ``conditional_masses``
bucket pass, same division order), and the worker-side ledger updates
are the same arithmetic the fixers' ``commit`` performs — so every
worker decision equals the decision the parent would have made at the
same point of the serial order.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Tuple

from repro.errors import SchedulerProtocolError, SimulationError
from repro.faults.plan import WorkerFault
from repro.obs.profile import profiled
from repro.obs.shard import ShardRecorder, TraceContext
from repro.core.selection import (
    select_rank1,
    select_rank2,
    select_rank3,
    select_rankr,
)
from repro.probability import DiscreteVariable, PartialAssignment
from repro.probability.engine import EventKernel


class KernelEventView:
    """A stand-in for a :class:`BadEvent` inside a worker process.

    Holds the event's compiled kernel plus the pins of its scope at
    dispatch time; as the cell fixes its own variables the view's pins
    are updated, exactly mirroring how the parent's assignment would
    evolve.  Implements the two members the selection rules use:
    ``name`` and :meth:`conditional_increases`.
    """

    __slots__ = ("name", "kernel", "scope_names", "pins")

    def __init__(
        self,
        name: Hashable,
        kernel: EventKernel,
        scope_names: Tuple[Hashable, ...],
        pins: List[int],
    ) -> None:
        self.name = name
        self.kernel = kernel
        self.scope_names = scope_names
        self.pins = list(pins)

    def pin(self, variable: DiscreteVariable, value: Hashable) -> None:
        """Record that ``variable`` was fixed to ``value`` (if in scope)."""
        try:
            position = self.scope_names.index(variable.name)
        except ValueError:
            return
        index = self.kernel.value_index(position, value)
        if index is None:
            raise SimulationError(
                f"worker event {self.name!r}: fixed value {value!r} is "
                f"outside the support of {variable.name!r}"
            )
        self.pins[position] = index

    def conditional_increases(
        self,
        assignment: PartialAssignment,
        variable: DiscreteVariable,
    ) -> Dict[Hashable, float]:
        """The kernel leg of ``BadEvent.conditional_increases``, verbatim."""
        if variable.name not in self.scope_names:
            return {value: 1.0 for value, _prob in variable.support_items()}
        context = f"event {self.name!r}"
        before = self.kernel.probability(self.pins, context)
        if before == 0.0:
            return {value: 0.0 for value, _prob in variable.support_items()}
        target = self.scope_names.index(variable.name)
        afters = self.kernel.conditional_masses(self.pins, target, context)
        return {
            value: afters[self.kernel.value_index(target, value)] / before
            for value, _prob in variable.support_items()
        }


@dataclass(frozen=True)
class EventPayload:
    """Everything a worker needs to reconstruct one event's view."""

    name: Hashable
    kernel: EventKernel
    scope_names: Tuple[Hashable, ...]
    #: Pinned value indices at dispatch time (``-1`` = free).
    pins: Tuple[int, ...]


@dataclass(frozen=True)
class OpPayload:
    """One fixing: the variable object plus its event names in order."""

    variable: DiscreteVariable
    event_names: Tuple[Hashable, ...]


@dataclass(frozen=True)
class CellPayload:
    """A cell serialised for out-of-process execution.

    ``ledger`` carries the cell's slice of the parent bookkeeping:
    ``{frozenset of event names: {event name: weight}}`` — edge weight
    pairs for the rank-2 fixer, per-edge phi values for the rank-3
    fixer's P* state, hyperedge weight vectors for the naive fixer.
    """

    owner: Hashable
    #: Selection discipline: ``"rank2"``, ``"rank3"`` or ``"naive"``.
    kind: str
    ops: Tuple[OpPayload, ...]
    events: Tuple[EventPayload, ...]
    ledger: Tuple[Tuple[FrozenSet[Hashable], Tuple[Tuple[Hashable, float], ...]], ...]

    @property
    def read_events(self) -> FrozenSet[Hashable]:
        """The cell's 1-hop read set (for worker-side disjointness checks)."""
        return frozenset(payload.name for payload in self.events)


def _edge_key(u: Hashable, v: Hashable) -> FrozenSet[Hashable]:
    return frozenset((u, v))


def execute_cell(payload: CellPayload) -> List[object]:
    """Replay one cell's decisions; returns the choices in op order."""
    views = {
        event.name: KernelEventView(
            event.name, event.kernel, event.scope_names, list(event.pins)
        )
        for event in payload.events
    }
    ledger: Dict[FrozenSet[Hashable], Dict[Hashable, float]] = {
        key: dict(entries) for key, entries in payload.ledger
    }
    assignment = PartialAssignment()
    choices: List[object] = []
    for op in payload.ops:
        events = [views[name] for name in op.event_names]
        names = op.event_names
        if payload.kind == "naive":
            key = frozenset(names)
            weights = tuple(ledger[key][name] for name in names)
            choice = select_rankr(op.variable, events, weights, assignment)
            if len(choice.new_weights) != len(names):
                raise SchedulerProtocolError(
                    f"cell {payload.owner!r}: selection returned "
                    f"{len(choice.new_weights)} weights for {len(names)} "
                    f"events — refusing to commit a partial ledger update"
                )
            for name, new_weight in zip(names, choice.new_weights):
                ledger[key][name] = new_weight
        elif len(events) == 1:
            choice = select_rank1(op.variable, events[0], assignment)
        elif len(events) == 2:
            u, v = names
            edge = _edge_key(u, v)
            weights = (ledger[edge][u], ledger[edge][v])
            choice = select_rank2(op.variable, events, weights, assignment)
            ledger[edge][u], ledger[edge][v] = choice.new_weights
        else:
            u, v, w = names
            uv, uw, vw = _edge_key(u, v), _edge_key(u, w), _edge_key(v, w)
            triple = (
                ledger[uv][u] * ledger[uw][u],
                ledger[uv][v] * ledger[vw][v],
                ledger[uw][w] * ledger[vw][w],
            )
            choice = select_rank3(op.variable, events, triple, assignment)
            decomposition = choice.decomposition
            ledger[uv][u], ledger[uv][v] = decomposition.a1, decomposition.b1
            ledger[uw][u], ledger[uw][w] = decomposition.a2, decomposition.c2
            ledger[vw][v], ledger[vw][w] = decomposition.b3, decomposition.c3
        assignment.fix(op.variable, choice.value)
        for view in views.values():
            view.pin(op.variable, choice.value)
        choices.append(choice)
    return choices


@dataclass
class ChunkReply:
    """A traced chunk's return value: results plus the telemetry shard.

    ``execute_chunk`` keeps returning a plain list of per-cell choice
    lists when no :class:`~repro.obs.shard.TraceContext` is shipped, so
    untraced callers (and the in-parent fallback path) see the original
    protocol; with tracing on, the shard records piggyback on the reply
    and the parent merges them into its trace after validation.
    """

    results: List[List[object]]
    records: List[Dict[str, object]]


def _apply_worker_fault(
    fault: Optional[WorkerFault],
    results: List[List[object]],
    shard: Optional[ShardRecorder] = None,
) -> List[List[object]]:
    """Execute a post-compute injected fault inside the worker.

    ``hang`` and ``slow`` sleep — the former past any sane deadline, the
    latter briefly; ``garble`` truncates the last cell's reply, which
    the parent must reject as a protocol violation instead of committing
    a partial cell.  (``crash`` is handled pre-compute in
    :func:`execute_chunk`: the process dies before producing results,
    and the parent sees a ``BrokenProcessPool``.)  With a shard recorder
    installed the injection is announced *before* it executes, so a
    worker terminated mid-hang still leaves the ``fault_injected`` event
    in its shard file.
    """
    if fault is None:
        return results
    if shard is not None:
        shard.event("worker", "fault_injected", **fault.as_payload())
    if fault.kind in ("hang", "slow"):
        time.sleep(fault.seconds)
        return results
    if fault.kind == "garble":
        garbled = [list(choices) for choices in results]
        if garbled and garbled[-1]:
            garbled[-1].pop()
        elif garbled:
            garbled.pop()
        return garbled
    raise SimulationError(f"unknown injected worker fault {fault.kind!r}")


def execute_class_chunk(
    payloads: Sequence[CellPayload],
) -> List[List[object]]:
    """Run one chunk as a single class-level batch program.

    The chunk's cells lower into one
    :class:`~repro.core.vector.ClassProgram` (kernels deduplicated by
    fingerprint, decisions computed in stacked engine passes) and the
    per-cell choice lists come back in plan order, bit-identical to the
    per-cell :func:`execute_cell` loop.  Any condition the vector plane
    cannot reproduce falls back to that loop internally, so callers see
    the scalar path's exact results and error attribution either way.
    """
    from repro.core import vector

    return vector.execute_class_cells(list(payloads))


def execute_chunk(
    payloads: Sequence[CellPayload],
    fault: Optional[WorkerFault] = None,
    trace: Optional[TraceContext] = None,
    decide: Optional[str] = None,
    artifacts: Optional[str] = None,
):
    """Worker entry point: validate disjointness, then run each cell.

    The read-set check is the schedule-bug tripwire: cells sharing an
    event in one class means the plan (or the coloring underneath it)
    is broken, and silently replaying them against stale pins would
    corrupt the phi ledger — raising is the only safe response.

    ``fault`` is the deterministic fault-injection hook: when the
    dispatching scheduler's :class:`~repro.faults.FaultPlan` selects this
    chunk, the injected failure executes *here*, in the worker, so the
    parent-side recovery path is exercised against real process death,
    real elapsed deadlines and real malformed replies.

    ``trace`` opts the worker into the cross-process trace: a
    :class:`~repro.obs.shard.ShardRecorder` times validation and every
    cell's decide loop, announces injected faults, and the buffered
    records return piggybacked on a :class:`ChunkReply` (with the shard
    file as the crash-survivable fallback).  Returns a plain list of
    per-cell choice lists when ``trace`` is ``None``.

    ``decide`` pins the worker's decide plane to the parent's: the
    parent ships its active mode (``"vector"``/``"scalar"``) so a
    parent-side :func:`~repro.core.vector.set_decide_mode` — e.g. a
    test pinning the scalar oracle — governs the workers too, not just
    the inherited ``REPRO_ARTIFACTS``/``REPRO_DECIDE`` environment.

    ``artifacts`` likewise pins the worker's artifact plane to the
    parent's.  With the plane on, the worker's process-global store
    warms across chunks: unpickled kernels re-intern by content, so a
    chunk's stacked truth table (keyed on interned fingerprints) is
    built once per worker process and reused by every later same-shape
    chunk.
    """
    if decide is not None:
        from repro.core.vector import set_decide_mode

        set_decide_mode(decide)
    if artifacts is not None:
        from repro.artifacts.store import set_artifacts_mode

        set_artifacts_mode(artifacts)
    shard = ShardRecorder(trace) if trace is not None else None
    if shard is not None:
        shard.event(
            "worker",
            "worker_start",
            pid=os.getpid(),
            cells=len(payloads),
            attempt=trace.attempt,
        )
    if shard is not None:
        with shard.span("worker", "validate", cells=len(payloads)):
            _validate_chunk_disjoint(payloads)
    else:
        _validate_chunk_disjoint(payloads)
    if fault is not None and fault.kind == "crash":
        if shard is not None:
            # The eager line-buffered shard file is the only telemetry
            # that survives the os._exit below.
            shard.event("worker", "fault_injected", **fault.as_payload())
        os._exit(13)
    from repro.core.vector import vector_enabled

    results: List[List[object]] = []
    with profiled(shard, "worker", trace.profile if trace else None,
                  name="chunk"):
        if vector_enabled() and payloads:
            num_ops = sum(len(payload.ops) for payload in payloads)
            if shard is not None:
                with shard.span(
                    "worker", "decide_class",
                    cells=len(payloads), ops=num_ops,
                ):
                    results = execute_class_chunk(payloads)
                shard.count("worker", "cells", len(payloads))
                shard.count("worker", "ops", num_ops)
            else:
                results = execute_class_chunk(payloads)
        else:
            for payload in payloads:
                if shard is not None:
                    with shard.span(
                        "worker", "decide",
                        cell=repr(payload.owner), ops=len(payload.ops),
                    ):
                        results.append(execute_cell(payload))
                    shard.count("worker", "cells")
                    shard.count("worker", "ops", len(payload.ops))
                else:
                    results.append(execute_cell(payload))
    results = _apply_worker_fault(fault, results, shard)
    if shard is None:
        return results
    return ChunkReply(results=results, records=shard.drain())


def _validate_chunk_disjoint(payloads: Sequence[CellPayload]) -> None:
    """Raise if two cells of one chunk read the same event."""
    touched: set = set()
    for payload in payloads:
        reads = payload.read_events
        overlap = touched & reads
        if overlap:
            raise SimulationError(
                f"worker chunk: events {sorted(map(repr, overlap))} are "
                f"read by two cells of one class"
            )
        touched.update(reads)
