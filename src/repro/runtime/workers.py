"""Picklable cell payloads and the process-pool worker entry point.

:class:`~repro.runtime.schedulers.ProcessScheduler` cannot ship the
fixers to workers: a :class:`~repro.probability.BadEvent` closes over an
arbitrary predicate.  What *is* picklable is everything a decision
actually reads — the compiled :class:`~repro.probability.engine.EventKernel`
(plain tuples), the :class:`~repro.probability.DiscreteVariable`\\ s and
the cell's slice of the bookkeeping ledger.  So the parent serialises
each cell into a :class:`CellPayload`, the worker replays the cell's
decisions through the *same* pure selection rules
(:mod:`repro.core.selection`) against kernel-backed event views, and the
parent commits the returned choices in deterministic plan order.

Bit-identity argument: the view's ``conditional_increases`` reproduces
the kernel path of :meth:`BadEvent.conditional_increases` operation for
operation (one ``probability`` pin query plus one ``conditional_masses``
bucket pass, same division order), and the worker-side ledger updates
are the same arithmetic the fixers' ``commit`` performs — so every
worker decision equals the decision the parent would have made at the
same point of the serial order.
"""

from __future__ import annotations

import atexit
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Tuple

from repro.errors import SchedulerProtocolError, SimulationError
from repro.faults.plan import WorkerFault
from repro.obs.profile import profiled
from repro.obs.shard import ShardRecorder, TraceContext
from repro.runtime.shm import (
    H_GENERATION,
    AttachedSegment,
    ChunkDescriptor,
    encode_choice,
)
from repro.core.selection import (
    select_rank1,
    select_rank2,
    select_rank3,
    select_rankr,
)
from repro.probability import DiscreteVariable, PartialAssignment
from repro.probability.engine import EventKernel


class KernelEventView:
    """A stand-in for a :class:`BadEvent` inside a worker process.

    Holds the event's compiled kernel plus the pins of its scope at
    dispatch time; as the cell fixes its own variables the view's pins
    are updated, exactly mirroring how the parent's assignment would
    evolve.  Implements the two members the selection rules use:
    ``name`` and :meth:`conditional_increases`.
    """

    __slots__ = ("name", "kernel", "scope_names", "pins")

    def __init__(
        self,
        name: Hashable,
        kernel: EventKernel,
        scope_names: Tuple[Hashable, ...],
        pins: List[int],
    ) -> None:
        self.name = name
        self.kernel = kernel
        self.scope_names = scope_names
        self.pins = list(pins)

    def pin(self, variable: DiscreteVariable, value: Hashable) -> None:
        """Record that ``variable`` was fixed to ``value`` (if in scope)."""
        try:
            position = self.scope_names.index(variable.name)
        except ValueError:
            return
        index = self.kernel.value_index(position, value)
        if index is None:
            raise SimulationError(
                f"worker event {self.name!r}: fixed value {value!r} is "
                f"outside the support of {variable.name!r}"
            )
        self.pins[position] = index

    def conditional_increases(
        self,
        assignment: PartialAssignment,
        variable: DiscreteVariable,
    ) -> Dict[Hashable, float]:
        """The kernel leg of ``BadEvent.conditional_increases``, verbatim."""
        if variable.name not in self.scope_names:
            return {value: 1.0 for value, _prob in variable.support_items()}
        context = f"event {self.name!r}"
        before = self.kernel.probability(self.pins, context)
        if before == 0.0:
            return {value: 0.0 for value, _prob in variable.support_items()}
        target = self.scope_names.index(variable.name)
        afters = self.kernel.conditional_masses(self.pins, target, context)
        return {
            value: afters[self.kernel.value_index(target, value)] / before
            for value, _prob in variable.support_items()
        }


@dataclass(frozen=True)
class EventPayload:
    """Everything a worker needs to reconstruct one event's view."""

    name: Hashable
    kernel: EventKernel
    scope_names: Tuple[Hashable, ...]
    #: Pinned value indices at dispatch time (``-1`` = free).
    pins: Tuple[int, ...]


@dataclass(frozen=True)
class OpPayload:
    """One fixing: the variable object plus its event names in order."""

    variable: DiscreteVariable
    event_names: Tuple[Hashable, ...]


@dataclass(frozen=True)
class CellPayload:
    """A cell serialised for out-of-process execution.

    ``ledger`` carries the cell's slice of the parent bookkeeping:
    ``{frozenset of event names: {event name: weight}}`` — edge weight
    pairs for the rank-2 fixer, per-edge phi values for the rank-3
    fixer's P* state, hyperedge weight vectors for the naive fixer.
    """

    owner: Hashable
    #: Selection discipline: ``"rank2"``, ``"rank3"`` or ``"naive"``.
    kind: str
    ops: Tuple[OpPayload, ...]
    events: Tuple[EventPayload, ...]
    ledger: Tuple[Tuple[FrozenSet[Hashable], Tuple[Tuple[Hashable, float], ...]], ...]

    @property
    def read_events(self) -> FrozenSet[Hashable]:
        """The cell's 1-hop read set (for worker-side disjointness checks)."""
        return frozenset(payload.name for payload in self.events)


def _edge_key(u: Hashable, v: Hashable) -> FrozenSet[Hashable]:
    return frozenset((u, v))


def execute_cell(payload: CellPayload) -> List[object]:
    """Replay one cell's decisions; returns the choices in op order."""
    views = {
        event.name: KernelEventView(
            event.name, event.kernel, event.scope_names, list(event.pins)
        )
        for event in payload.events
    }
    ledger: Dict[FrozenSet[Hashable], Dict[Hashable, float]] = {
        key: dict(entries) for key, entries in payload.ledger
    }
    assignment = PartialAssignment()
    choices: List[object] = []
    for op in payload.ops:
        events = [views[name] for name in op.event_names]
        names = op.event_names
        if payload.kind == "naive":
            key = frozenset(names)
            weights = tuple(ledger[key][name] for name in names)
            choice = select_rankr(op.variable, events, weights, assignment)
            if len(choice.new_weights) != len(names):
                raise SchedulerProtocolError(
                    f"cell {payload.owner!r}: selection returned "
                    f"{len(choice.new_weights)} weights for {len(names)} "
                    f"events — refusing to commit a partial ledger update"
                )
            for name, new_weight in zip(names, choice.new_weights):
                ledger[key][name] = new_weight
        elif len(events) == 1:
            choice = select_rank1(op.variable, events[0], assignment)
        elif len(events) == 2:
            u, v = names
            edge = _edge_key(u, v)
            weights = (ledger[edge][u], ledger[edge][v])
            choice = select_rank2(op.variable, events, weights, assignment)
            ledger[edge][u], ledger[edge][v] = choice.new_weights
        else:
            u, v, w = names
            uv, uw, vw = _edge_key(u, v), _edge_key(u, w), _edge_key(v, w)
            triple = (
                ledger[uv][u] * ledger[uw][u],
                ledger[uv][v] * ledger[vw][v],
                ledger[uw][w] * ledger[vw][w],
            )
            choice = select_rank3(op.variable, events, triple, assignment)
            decomposition = choice.decomposition
            ledger[uv][u], ledger[uv][v] = decomposition.a1, decomposition.b1
            ledger[uw][u], ledger[uw][w] = decomposition.a2, decomposition.c2
            ledger[vw][v], ledger[vw][w] = decomposition.b3, decomposition.c3
        assignment.fix(op.variable, choice.value)
        for view in views.values():
            view.pin(op.variable, choice.value)
        choices.append(choice)
    return choices


@dataclass
class ChunkReply:
    """A traced chunk's return value: results plus the telemetry shard.

    ``execute_chunk`` keeps returning a plain list of per-cell choice
    lists when no :class:`~repro.obs.shard.TraceContext` is shipped, so
    untraced callers (and the in-parent fallback path) see the original
    protocol; with tracing on, the shard records piggyback on the reply
    and the parent merges them into its trace after validation.
    """

    results: List[List[object]]
    records: List[Dict[str, object]]


def _apply_worker_fault(
    fault: Optional[WorkerFault],
    results: List[List[object]],
    shard: Optional[ShardRecorder] = None,
) -> List[List[object]]:
    """Execute a post-compute injected fault inside the worker.

    ``hang`` and ``slow`` sleep — the former past any sane deadline, the
    latter briefly; ``garble`` truncates the last cell's reply, which
    the parent must reject as a protocol violation instead of committing
    a partial cell.  (``crash`` is handled pre-compute in
    :func:`execute_chunk`: the process dies before producing results,
    and the parent sees a ``BrokenProcessPool``.)  With a shard recorder
    installed the injection is announced *before* it executes, so a
    worker terminated mid-hang still leaves the ``fault_injected`` event
    in its shard file.
    """
    if fault is None:
        return results
    if shard is not None:
        shard.event("worker", "fault_injected", **fault.as_payload())
    if fault.kind in ("hang", "slow"):
        time.sleep(fault.seconds)
        return results
    if fault.kind == "garble":
        garbled = [list(choices) for choices in results]
        if garbled and garbled[-1]:
            garbled[-1].pop()
        elif garbled:
            garbled.pop()
        return garbled
    raise SimulationError(f"unknown injected worker fault {fault.kind!r}")


def execute_class_chunk(
    payloads: Sequence[CellPayload],
) -> List[List[object]]:
    """Run one chunk as a single class-level batch program.

    The chunk's cells lower into one
    :class:`~repro.core.vector.ClassProgram` (kernels deduplicated by
    fingerprint, decisions computed in stacked engine passes) and the
    per-cell choice lists come back in plan order, bit-identical to the
    per-cell :func:`execute_cell` loop.  Any condition the vector plane
    cannot reproduce falls back to that loop internally, so callers see
    the scalar path's exact results and error attribution either way.
    """
    from repro.core import vector

    return vector.execute_class_cells(list(payloads))


def execute_chunk(
    payloads: Sequence[CellPayload],
    fault: Optional[WorkerFault] = None,
    trace: Optional[TraceContext] = None,
    decide: Optional[str] = None,
    artifacts: Optional[str] = None,
):
    """Worker entry point: validate disjointness, then run each cell.

    The read-set check is the schedule-bug tripwire: cells sharing an
    event in one class means the plan (or the coloring underneath it)
    is broken, and silently replaying them against stale pins would
    corrupt the phi ledger — raising is the only safe response.

    ``fault`` is the deterministic fault-injection hook: when the
    dispatching scheduler's :class:`~repro.faults.FaultPlan` selects this
    chunk, the injected failure executes *here*, in the worker, so the
    parent-side recovery path is exercised against real process death,
    real elapsed deadlines and real malformed replies.

    ``trace`` opts the worker into the cross-process trace: a
    :class:`~repro.obs.shard.ShardRecorder` times validation and every
    cell's decide loop, announces injected faults, and the buffered
    records return piggybacked on a :class:`ChunkReply` (with the shard
    file as the crash-survivable fallback).  Returns a plain list of
    per-cell choice lists when ``trace`` is ``None``.

    ``decide`` pins the worker's decide plane to the parent's: the
    parent ships its active mode (``"vector"``/``"scalar"``) so a
    parent-side :func:`~repro.core.vector.set_decide_mode` — e.g. a
    test pinning the scalar oracle — governs the workers too, not just
    the inherited ``REPRO_ARTIFACTS``/``REPRO_DECIDE`` environment.

    ``artifacts`` likewise pins the worker's artifact plane to the
    parent's.  With the plane on, the worker's process-global store
    warms across chunks: unpickled kernels re-intern by content, so a
    chunk's stacked truth table (keyed on interned fingerprints) is
    built once per worker process and reused by every later same-shape
    chunk.
    """
    if decide is not None:
        from repro.core.vector import set_decide_mode

        set_decide_mode(decide)
    if artifacts is not None:
        from repro.artifacts.store import set_artifacts_mode

        set_artifacts_mode(artifacts)
    shard = ShardRecorder(trace) if trace is not None else None
    if shard is not None:
        shard.event(
            "worker",
            "worker_start",
            pid=os.getpid(),
            cells=len(payloads),
            attempt=trace.attempt,
        )
    if shard is not None:
        with shard.span("worker", "validate", cells=len(payloads)):
            _validate_chunk_disjoint(payloads)
    else:
        _validate_chunk_disjoint(payloads)
    if fault is not None and fault.kind == "crash":
        if shard is not None:
            # The eager line-buffered shard file is the only telemetry
            # that survives the os._exit below.
            shard.event("worker", "fault_injected", **fault.as_payload())
        os._exit(13)
    from repro.core.vector import vector_enabled

    results: List[List[object]] = []
    with profiled(shard, "worker", trace.profile if trace else None,
                  name="chunk"):
        if vector_enabled() and payloads:
            num_ops = sum(len(payload.ops) for payload in payloads)
            if shard is not None:
                with shard.span(
                    "worker", "decide_class",
                    cells=len(payloads), ops=num_ops,
                ):
                    results = execute_class_chunk(payloads)
                shard.count("worker", "cells", len(payloads))
                shard.count("worker", "ops", num_ops)
            else:
                results = execute_class_chunk(payloads)
        else:
            for payload in payloads:
                if shard is not None:
                    with shard.span(
                        "worker", "decide",
                        cell=repr(payload.owner), ops=len(payload.ops),
                    ):
                        results.append(execute_cell(payload))
                    shard.count("worker", "cells")
                    shard.count("worker", "ops", len(payload.ops))
                else:
                    results.append(execute_cell(payload))
    results = _apply_worker_fault(fault, results, shard)
    if shard is None:
        return results
    return ChunkReply(results=results, records=shard.drain())


def _validate_chunk_disjoint(payloads: Sequence[CellPayload]) -> None:
    """Raise if two cells of one chunk read the same event."""
    touched: set = set()
    for payload in payloads:
        reads = payload.read_events
        overlap = touched & reads
        if overlap:
            raise SimulationError(
                f"worker chunk: events {sorted(map(repr, overlap))} are "
                f"read by two cells of one class"
            )
        touched.update(reads)


# --------------------------------------------------------------------------
# Shared-memory worker plane (``REPRO_IPC=shm``)
#
# With the shm backend the pool's initializer attaches the parent's
# SharedInstanceSegment once per worker process; thereafter each task is a
# compact fixed-width ChunkDescriptor.  The worker rebuilds CellPayloads
# from the segment's pins/phi regions (the static, solve-invariant part —
# kernels, variables, ledger topology — unpickles once per broadcast from
# the segment blob), runs the exact decide path of ``execute_chunk``, and
# writes its choices into the shared result region instead of pickling
# them back.


@dataclass
class ShmChunkAck:
    """A shm chunk's reply: per-cell result counts, not the results.

    The decisions themselves live in the segment's result region; the
    parent validates ``counts`` against the chunk's op counts (the garble
    tripwire — a truncated write shows up as a short count) before
    decoding a single row.  ``warm`` reports whether the worker reused a
    cached :class:`~repro.core.vector.ClassProgram` for this chunk — the
    parent aggregates it into the ``worker_warm_hits`` metric.
    """

    counts: Tuple[int, ...]
    warm: bool
    records: List[Dict[str, object]] = field(default_factory=list)


class _ShmWorkerState:
    """Per-process warm state: the attached segment plus derived caches.

    ``programs`` caches lowered :class:`ClassProgram`\\ s keyed by
    ``(class_index, start, stop)`` — across fixer iterations the same
    chunk boundaries recur, so after the first pass a chunk only needs a
    pins/ledger refresh, not a re-lowering.  Both caches are dropped on
    generation change (a new solve published into the segment).
    """

    def __init__(self, name: str) -> None:
        self.attached = AttachedSegment(name)
        self.generation = -1
        self.static = None
        self.programs: Dict[Tuple[int, int, int], object] = {}
        self.ops_cache: Dict[Tuple[int, int], Tuple[OpPayload, ...]] = {}

    def sync(self, generation: int) -> None:
        """Adopt the segment's published solve if ours is stale."""
        if self.generation == generation:
            return
        header_generation = int(self.attached.views.header[H_GENERATION])
        if header_generation != generation:
            raise SchedulerProtocolError(
                f"shm worker: descriptor generation {generation} does not "
                f"match segment generation {header_generation} — the parent "
                f"republished mid-dispatch"
            )
        self.static = pickle.loads(self.attached.read_blob())
        self.generation = generation
        self.programs.clear()
        self.ops_cache.clear()
        self._prewarm()

    def _prewarm(self) -> None:
        """Pre-warm the per-process ArtifactStore from the new blob.

        Interns every kernel fingerprint and, with the artifact plane
        on, builds each class's stacked truth table before the first
        chunk arrives — so chunk latency never pays the stack build.
        Best-effort: a failure here only forfeits warmth, and only the
        error types the stack build is known to raise are suppressed —
        the same build re-runs on the chunk path, where a real failure
        surfaces through the instrumented vector fallback instead of
        vanishing here.
        """
        from repro.artifacts.store import artifacts_enabled
        from repro.core import vector
        from repro.errors import ReproError

        for cells in self.static.classes:
            kernels: List[EventKernel] = []
            seen: set = set()
            for cell in cells:
                if cell is None:
                    continue
                for event in cell.events:
                    fingerprint = event.kernel.fingerprint()
                    if fingerprint not in seen:
                        seen.add(fingerprint)
                        kernels.append(event.kernel)
            if kernels and artifacts_enabled():
                try:
                    vector._shared_stack(tuple(kernels))
                except (ReproError, ValueError, TypeError, MemoryError):
                    pass


_SHM_WORKER: Optional[_ShmWorkerState] = None


def _shm_worker_close() -> None:
    """atexit hook: detach the worker's segment view (never unlinks)."""
    global _SHM_WORKER
    state, _SHM_WORKER = _SHM_WORKER, None
    if state is not None:
        state.attached.close()


def _shm_worker_init(
    name: str,
    artifacts: Optional[str] = None,
    decide: Optional[str] = None,
) -> None:
    """Pool initializer: attach the segment and pin backend modes.

    Runs once per worker process.  Modes are pinned *before* the first
    chunk so a parent-side ``set_decide_mode``/``set_artifacts_mode``
    governs workers even under a spawn start method.  If the parent has
    already published a solve (header generation > 0) the worker syncs
    eagerly, moving blob unpickling and artifact pre-warming off the
    first chunk's critical path.
    """
    global _SHM_WORKER
    if decide is not None:
        from repro.core.vector import set_decide_mode

        set_decide_mode(decide)
    if artifacts is not None:
        from repro.artifacts.store import set_artifacts_mode

        set_artifacts_mode(artifacts)
    _SHM_WORKER = _ShmWorkerState(name)
    atexit.register(_shm_worker_close)
    generation = int(_SHM_WORKER.attached.views.header[H_GENERATION])
    if generation > 0:
        _SHM_WORKER.sync(generation)


def _run_warm_program(
    state: _ShmWorkerState,
    descriptor: ChunkDescriptor,
    payloads: Sequence[CellPayload],
    shard: Optional["ShardRecorder"] = None,
) -> Tuple[List[List[object]], bool]:
    """Vector-path chunk execution with the warm per-chunk program cache.

    First visit of a ``(class, start, stop)`` chunk lowers and caches a
    ClassProgram; later visits only refresh its pins and ledger values
    in place (:func:`~repro.core.vector.refresh_program`).  Any failure
    — structural mismatch, non-vectorizable shape — drops the cache
    entry and falls back to the scalar per-cell loop, which rebuilds
    from the payloads and therefore cannot see partial mutations.  The
    fallback is a designed correctness net, but it is never silent: the
    triggering error is counted in ``STATS.vector_fallbacks`` and
    emitted as a ``worker/vector_fallback`` shard event when tracing.
    """
    from repro.core import vector
    from repro.probability.engine import STATS

    key = (descriptor.class_index, descriptor.start, descriptor.stop)
    program = state.programs.get(key)
    try:
        if program is not None:
            vector.refresh_program(program, payloads)
            return vector.run_program(program), True
        program = vector.program_from_payloads(list(payloads))
        results = vector.run_program(program)
        state.programs[key] = program
        return results, False
    except Exception as error:
        STATS.vector_fallbacks += 1
        state.programs.pop(key, None)
        if shard is not None:
            shard.event(
                "worker",
                "vector_fallback",
                class_index=descriptor.class_index,
                start=descriptor.start,
                stop=descriptor.stop,
                error=repr(error),
            )
        return [execute_cell(payload) for payload in payloads], False


def execute_chunk_shm(
    descriptor: ChunkDescriptor,
    fault: Optional[WorkerFault] = None,
    trace: Optional[TraceContext] = None,
    decide: Optional[str] = None,
    artifacts: Optional[str] = None,
) -> ShmChunkAck:
    """Worker entry point for the shm backend.

    Mirrors :func:`execute_chunk` — same validation tripwire, same fault
    injection points, same shard instrumentation, same decide path — but
    reads its inputs from the attached segment and writes its choices
    into the shared result region.  A ``garble`` fault therefore
    manifests as a short ``counts`` tuple (the last cell's final row is
    never accounted for), which the parent rejects exactly like a
    truncated pickle reply.
    """
    if decide is not None:
        from repro.core.vector import set_decide_mode

        set_decide_mode(decide)
    if artifacts is not None:
        from repro.artifacts.store import set_artifacts_mode

        set_artifacts_mode(artifacts)
    state = _SHM_WORKER
    if state is None:
        raise SchedulerProtocolError(
            "shm worker: received a chunk descriptor but no segment is "
            "attached — the pool was started without _shm_worker_init"
        )
    shard = ShardRecorder(trace) if trace is not None else None
    if shard is not None:
        shard.event(
            "worker",
            "worker_start",
            pid=os.getpid(),
            cells=descriptor.stop - descriptor.start,
            attempt=trace.attempt,
        )
    state.sync(descriptor.generation)
    views = state.attached.views
    static = state.static
    if not 0 <= descriptor.class_index < len(static.classes):
        raise SchedulerProtocolError(
            f"shm worker: descriptor names class {descriptor.class_index} "
            f"of a {len(static.classes)}-class plan"
        )
    class_cells = static.classes[descriptor.class_index]
    pins_view = views.pins
    phi = views.phi
    cells = []
    payloads: List[CellPayload] = []
    for position in range(descriptor.start, descriptor.stop):
        cell_id = int(views.roster[position])
        if not 0 <= cell_id < len(class_cells) or class_cells[cell_id] is None:
            raise SchedulerProtocolError(
                f"shm worker: roster position {position} names "
                f"non-dispatchable cell {cell_id} of class "
                f"{descriptor.class_index}"
            )
        scell = class_cells[cell_id]
        ops = state.ops_cache.get((descriptor.class_index, cell_id))
        if ops is None:
            ops = tuple(
                OpPayload(variable=op.variable, event_names=op.event_names)
                for op in scell.ops
            )
            state.ops_cache[(descriptor.class_index, cell_id)] = ops
        events = tuple(
            EventPayload(
                name=event.name,
                kernel=event.kernel,
                scope_names=event.scope_names,
                pins=tuple(
                    int(pin)
                    for pin in pins_view[event.event_id, : len(event.scope_names)]
                ),
            )
            for event in scell.events
        )
        ledger = tuple(
            (
                frozenset(names),
                tuple(
                    (name, float(phi[slot]))
                    for name, slot in zip(names, slots)
                ),
            )
            for names, slots in scell.ledger
        )
        cells.append(scell)
        payloads.append(
            CellPayload(
                owner=scell.owner,
                kind=static.kind,
                ops=ops,
                events=events,
                ledger=ledger,
            )
        )
    if shard is not None:
        with shard.span("worker", "validate", cells=len(payloads)):
            _validate_chunk_disjoint(payloads)
    else:
        _validate_chunk_disjoint(payloads)
    if fault is not None and fault.kind == "crash":
        if shard is not None:
            shard.event("worker", "fault_injected", **fault.as_payload())
        os._exit(13)
    from repro.core.vector import vector_enabled

    results: List[List[object]] = []
    warm = False
    with profiled(shard, "worker", trace.profile if trace else None,
                  name="chunk"):
        if vector_enabled() and payloads:
            num_ops = sum(len(payload.ops) for payload in payloads)
            if shard is not None:
                with shard.span(
                    "worker", "decide_class",
                    cells=len(payloads), ops=num_ops,
                ):
                    results, warm = _run_warm_program(
                        state, descriptor, payloads, shard
                    )
                shard.count("worker", "cells", len(payloads))
                shard.count("worker", "ops", num_ops)
            else:
                results, warm = _run_warm_program(state, descriptor, payloads)
        else:
            for payload in payloads:
                if shard is not None:
                    with shard.span(
                        "worker", "decide",
                        cell=repr(payload.owner), ops=len(payload.ops),
                    ):
                        results.append(execute_cell(payload))
                    shard.count("worker", "cells")
                    shard.count("worker", "ops", len(payload.ops))
                else:
                    results.append(execute_cell(payload))
    results = _apply_worker_fault(fault, results, shard)
    result_rows = views.results
    counts: List[int] = []
    for scell, choices in zip(cells, results):
        for position, choice in enumerate(choices):
            variable = scell.ops[position].variable
            values = [value for value, _prob in variable.support_items()]
            encode_choice(
                result_rows[scell.op_offset + position],
                choice,
                values.index(choice.value),
            )
        counts.append(len(choices))
    return ShmChunkAck(
        counts=tuple(counts),
        warm=warm,
        records=shard.drain() if shard is not None else [],
    )
