"""Fix plans: the schedule of a distributed LLL run as a data structure.

A :class:`FixPlan` is an ordered sequence of :class:`ColorClass`\\ es;
each class holds :class:`FixCell`\\ s — one per scheduling unit (a
dependency edge in the rank-2 algorithm, an event node in the rank-3
algorithm) — and each cell an ordered tuple of :class:`FixOp`\\ s, the
individual variable fixings with their 1-hop read sets.

The structural invariant that makes parallel execution sound: within a
class, distinct cells have disjoint read sets (``read_events``).  A
variable only appears in the scopes of its own events, which are exactly
its op's read set, so decisions in different cells of one class read and
write disjoint state and commute.  :meth:`FixPlan.validate` asserts this
instead of trusting the coloring.

The builders replicate the exact scheduling of
:func:`repro.core.distributed.solve_distributed_rank2` /
``solve_distributed_rank3``: same classes, same cell order, same op
order within a cell, so a serial traversal of the plan is the same
fixing sequence those functions used to perform inline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.artifacts.fingerprint import instance_key
from repro.artifacts.store import STORE as _ARTIFACTS, artifacts_enabled
from repro.errors import SimulationError
from repro.coloring import (
    compute_edge_coloring,
    compute_two_hop_coloring,
    require_proper_edge_coloring,
    require_two_hop_coloring,
)
from repro.core.indexing import indexed_dependency_network
from repro.lll.instance import LLLInstance


@dataclass(frozen=True)
class FixOp:
    """One variable fixing, with its 1-hop read set.

    The read set of an op is exactly the set of its affected events: a
    decision reads those events' conditional probabilities and the
    bookkeeping on their shared edges, and writes the same — nothing
    else.
    """

    #: Name of the variable to fix.
    variable: Hashable
    #: Names of the affected events, in bookkeeping order.
    events: Tuple[Hashable, ...]

    @property
    def rank(self) -> int:
        """Number of events the fixing touches."""
        return len(self.events)


@dataclass(frozen=True)
class FixCell:
    """A sequential run of ops owned by one scheduling unit.

    In the rank-2 plan a cell is a dependency edge (or an event node for
    the rank-1 round); in the rank-3 plan a cell is an event node of the
    active color.  Ops within a cell may share events and therefore
    execute strictly in order; ops of *different* cells in the same
    class never share an event.
    """

    #: The scheduling unit: an edge key ``(u_index, v_index)`` or an
    #: event name.
    owner: Hashable
    #: The fixings, in commit order.
    ops: Tuple[FixOp, ...]

    @property
    def read_events(self) -> FrozenSet[Hashable]:
        """Union of the ops' event names — the cell's 1-hop read set."""
        names: Set[Hashable] = set()
        for op in self.ops:
            names.update(op.events)
        return frozenset(names)


@dataclass(frozen=True)
class ColorClass:
    """One round of the schedule: independent cells of a single color."""

    #: The color index (``-1`` for the rank-1 pre-round of the rank-2
    #: algorithm, which precedes the edge coloring).
    color: int
    #: The cells, in deterministic merge order.
    cells: Tuple[FixCell, ...]

    @property
    def num_ops(self) -> int:
        """Total fixings in the class."""
        return sum(len(cell.ops) for cell in self.cells)

    @property
    def span(self) -> int:
        """Length of the longest cell — the class's critical path."""
        return max((len(cell.ops) for cell in self.cells), default=0)

    def validate_disjoint(self) -> None:
        """Raise unless the cells' read sets are pairwise disjoint."""
        touched: Set[Hashable] = set()
        for cell in self.cells:
            reads = cell.read_events
            overlap = touched & reads
            if overlap:
                raise SimulationError(
                    f"schedule conflict in color class {self.color}: "
                    f"events {sorted(map(repr, overlap))} read by two cells"
                )
            touched.update(reads)


@dataclass(frozen=True)
class FixPlan:
    """The full schedule: ordered color classes plus round accounting."""

    #: ``"edge-coloring"`` (rank 2), ``"two-hop-coloring"`` (rank 3) or
    #: ``"serial"`` (an explicit order with no parallel structure).
    kind: str
    #: The classes, in execution order.
    classes: Tuple[ColorClass, ...]
    #: Size of the coloring palette that produced the classes.
    palette: int
    #: LOCAL rounds the coloring phase cost (host-graph rounds).
    coloring_rounds: int = 0

    @property
    def num_classes(self) -> int:
        """Number of schedule rounds (color classes)."""
        return len(self.classes)

    @property
    def num_cells(self) -> int:
        """Total scheduling units across all classes."""
        return sum(len(cls.cells) for cls in self.classes)

    @property
    def num_ops(self) -> int:
        """Total variable fixings in the plan."""
        return sum(cls.num_ops for cls in self.classes)

    @property
    def class_sizes(self) -> Tuple[int, ...]:
        """Op count of each class, in execution order."""
        return tuple(cls.num_ops for cls in self.classes)

    @property
    def critical_path(self) -> int:
        """Fixings on the longest dependency chain: ``sum of class spans``.

        With unboundedly many workers, a class completes after its
        longest cell; the plan's wall-clock lower bound (in op units) is
        the sum of those spans.
        """
        return sum(cls.span for cls in self.classes)

    def variables(self) -> Iterator[Hashable]:
        """Every scheduled variable, in serial plan order."""
        for cls in self.classes:
            for cell in cls.cells:
                for op in cell.ops:
                    yield op.variable

    def validate(self) -> None:
        """Assert the cross-cell disjointness invariant of every class."""
        for cls in self.classes:
            cls.validate_disjoint()


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def _op_for(instance: LLLInstance, variable_name: Hashable) -> FixOp:
    return FixOp(
        variable=variable_name,
        events=tuple(
            event.name
            for event in instance.events_of_variable(variable_name)
        ),
    )


def _rank2_coloring(instance: LLLInstance):
    """Indexing plus a thunk computing the validated edge coloring.

    On the vectorized backend the dependency graph never leaves CSR
    form: the coloring runs on the CSR line graph and properness is
    re-checked with one array comparison.  The reference branch keeps
    the original networkx pipeline.  Returns ``(to_index, num_edges,
    thunk)`` where the thunk yields ``(palette, coloring_rounds,
    colors)``.
    """
    from repro.graph import vectorized_enabled

    if vectorized_enabled():
        from repro.core.indexing import indexed_csr
        from repro.graph import (
            edge_coloring_with_arrays,
            validate_proper_vertex_arrays,
        )

        csr, to_index, _from_index = indexed_csr(instance)

        def coloring_thunk():
            derived, colors_array, line, _eu, _ev = (
                edge_coloring_with_arrays(csr)
            )
            # Defense-in-depth recheck, as on the reference branch:
            # adjacent line-graph nodes are exactly edges sharing an
            # endpoint.
            validate_proper_vertex_arrays(line, colors_array)
            return derived.palette, derived.host_rounds, derived.colors

        return to_index, csr.num_edges, coloring_thunk

    network, to_index, _from_index = indexed_dependency_network(instance)

    def coloring_thunk():
        coloring = compute_edge_coloring(network)
        require_proper_edge_coloring(network.graph, coloring.colors)
        return coloring.palette, coloring.host_rounds, coloring.colors

    return to_index, network.graph.number_of_edges(), coloring_thunk


def _rank3_coloring(instance: LLLInstance):
    """Indexing plus a thunk computing the validated 2-hop coloring.

    Same shape as :func:`_rank2_coloring`; the vectorized branch
    validates by checking properness on the CSR square graph (adjacency
    in ``G^2`` is exactly "within distance two").  Returns
    ``(from_index, num_edges, thunk)``.
    """
    from repro.graph import vectorized_enabled

    if vectorized_enabled():
        from repro.core.indexing import indexed_csr
        from repro.graph import (
            two_hop_coloring_with_arrays,
            validate_proper_vertex_arrays,
        )

        csr, _to_index, from_index = indexed_csr(instance)

        def coloring_thunk():
            derived, colors_array, square = two_hop_coloring_with_arrays(csr)
            validate_proper_vertex_arrays(square, colors_array)
            return derived.palette, derived.host_rounds, derived.colors

        return from_index, csr.num_edges, coloring_thunk

    network, _to_index, from_index = indexed_dependency_network(instance)

    def coloring_thunk():
        coloring = compute_two_hop_coloring(network)
        require_two_hop_coloring(network.graph, coloring.colors)
        return coloring.palette, coloring.host_rounds, coloring.colors

    return from_index, network.graph.number_of_edges(), coloring_thunk


def build_plan_rank2(instance: LLLInstance) -> FixPlan:
    """The Corollary 1.2 schedule: edge color classes.

    Rank-1 variables form one leading class (color ``-1``) with a cell
    per host event; rank-2 variables form one cell per dependency edge,
    assigned to the edge's color class.  Cell and op orders match the
    fixing order :func:`repro.core.distributed.solve_distributed_rank2`
    has always used, up to commuting cross-cell fixings in the rank-1
    round.
    """
    # Plans are frozen dataclasses of pure names, derived only from the
    # fingerprinted structure, so an equal-shape instance can reuse the
    # whole schedule — coloring included — without rebuilding it.
    plan_key = (
        instance_key(instance, "plan", "rank2")
        if artifacts_enabled()
        else None
    )
    cached = _ARTIFACTS.get("plans", plan_key)
    if cached is not None:
        return cached
    to_index, num_edges, edge_coloring = _rank2_coloring(instance)

    singles_by_event: Dict[Hashable, List[Hashable]] = {}
    by_edge: Dict[Tuple[int, int], List[Hashable]] = {}
    for variable in instance.variables:
        events = instance.events_of_variable(variable.name)
        if len(events) == 1:
            singles_by_event.setdefault(events[0].name, []).append(
                variable.name
            )
        else:
            u = to_index[events[0].name]
            v = to_index[events[1].name]
            key = (min(u, v), max(u, v))
            by_edge.setdefault(key, []).append(variable.name)

    if num_edges > 0:
        palette, coloring_rounds, colors = edge_coloring()
    else:
        palette = 0
        coloring_rounds = 0
        colors = {}

    classes: List[ColorClass] = []
    if singles_by_event:
        cells = tuple(
            FixCell(
                owner=event_name,
                ops=tuple(
                    _op_for(instance, name)
                    for name in sorted(names, key=repr)
                ),
            )
            for event_name, names in sorted(
                singles_by_event.items(), key=lambda item: repr(item[0])
            )
        )
        classes.append(ColorClass(color=-1, cells=cells))
    # One grouping pass over the sorted edges instead of a full rescan
    # per color; class contents and cell order are unchanged (cells stay
    # in sorted-edge order within each class).
    cells_by_color: Dict[int, List[FixCell]] = {}
    for edge_key, names in sorted(by_edge.items()):
        if not names:
            continue
        color = colors.get(edge_key)
        cells_by_color.setdefault(color, []).append(
            FixCell(
                owner=edge_key,
                ops=tuple(
                    _op_for(instance, name)
                    for name in sorted(names, key=repr)
                ),
            )
        )
    for color in range(palette):
        classes.append(
            ColorClass(color=color, cells=tuple(cells_by_color.get(color, ())))
        )

    plan = FixPlan(
        kind="edge-coloring",
        classes=tuple(classes),
        palette=palette,
        coloring_rounds=coloring_rounds,
    )
    _ARTIFACTS.put("plans", plan_key, plan)
    return plan


def build_plan_rank3(instance: LLLInstance) -> FixPlan:
    """The Corollary 1.4 schedule: 2-hop color classes.

    For each color, the active event nodes (sorted by index) each own a
    cell fixing all their variables not claimed by an earlier cell or
    class — statically replicating the lazy ``is_fixed`` bookkeeping of
    :func:`repro.core.distributed.solve_distributed_rank3`, so the serial
    traversal is that function's exact historical fixing order.
    """
    plan_key = (
        instance_key(instance, "plan", "rank3")
        if artifacts_enabled()
        else None
    )
    cached = _ARTIFACTS.get("plans", plan_key)
    if cached is not None:
        return cached
    from_index, num_edges, two_hop_coloring = _rank3_coloring(instance)

    if num_edges > 0:
        palette, coloring_rounds, colors = two_hop_coloring()
    else:
        palette = 1
        coloring_rounds = 0
        colors = {index: 0 for index in from_index}
    plan = plan_from_two_hop_coloring(
        instance, from_index, colors, palette, coloring_rounds
    )
    _ARTIFACTS.put("plans", plan_key, plan)
    return plan


def plan_from_two_hop_coloring(
    instance: LLLInstance,
    from_index: Dict[int, Hashable],
    colors: Dict[int, int],
    palette: int,
    coloring_rounds: int = 0,
) -> FixPlan:
    """Build the 2-hop-class plan from an already-computed coloring.

    Used by :func:`repro.core.local_protocol.solve_distributed_local`,
    which computes the coloring as an honest LOCAL simulation and then
    derives the protocol's per-node ownership from the plan's cells.
    """
    variables_of_node: Dict[Hashable, List[Hashable]] = {
        event.name: [] for event in instance.events
    }
    for variable in instance.variables:
        for event in instance.events_of_variable(variable.name):
            variables_of_node[event.name].append(variable.name)

    # One grouping pass over the coloring instead of a full rescan per
    # color; each class's active-node order (sorted indices) is
    # unchanged.
    nodes_by_color: Dict[int, List[int]] = {}
    for index, c in colors.items():
        nodes_by_color.setdefault(c, []).append(index)

    assigned: Set[Hashable] = set()
    classes: List[ColorClass] = []
    for color in range(palette):
        active_nodes = sorted(nodes_by_color.get(color, ()))
        cells: List[FixCell] = []
        for index in active_nodes:
            event_name = from_index[index]
            node_batch = [
                name
                for name in sorted(variables_of_node[event_name], key=repr)
                if name not in assigned
            ]
            if node_batch:
                assigned.update(node_batch)
                cells.append(
                    FixCell(
                        owner=event_name,
                        ops=tuple(
                            _op_for(instance, name) for name in node_batch
                        ),
                    )
                )
        classes.append(ColorClass(color=color, cells=tuple(cells)))

    return FixPlan(
        kind="two-hop-coloring",
        classes=tuple(classes),
        palette=palette,
        coloring_rounds=coloring_rounds,
    )


def build_serial_plan(
    instance: LLLInstance,
    order: Optional[Sequence[Hashable]] = None,
) -> FixPlan:
    """A degenerate plan: one class per op, in the given (or declaration)
    order.

    No parallel structure is claimed — each class holds a single
    one-op cell, so every scheduler backend degenerates to the same
    serial execution.  Used by the static-order sequential solver.
    """
    if order is None:
        order = [variable.name for variable in instance.variables]
    classes = tuple(
        ColorClass(
            color=position,
            cells=(
                FixCell(owner=name, ops=(_op_for(instance, name),)),
            ),
        )
        for position, name in enumerate(order)
    )
    return FixPlan(
        kind="serial",
        classes=classes,
        palette=len(classes),
        coloring_rounds=0,
    )


def build_resampling_round(
    instance: LLLInstance, occurring: Set[Hashable]
) -> ColorClass:
    """One parallel round of distributed Moser–Tardos as a color class.

    The cells are the occurring events that are local minima (by name)
    among their occurring dependency neighbors — the classic independent
    selection — and each cell's ops are the owner's scope variables.
    Two selected events are never dependency-adjacent (each would have
    to precede the other), so their scopes are disjoint and the cells
    can resample in parallel.  Each op's read set is just the owner
    event: resampling reads no bookkeeping, only the scope.
    """
    graph = instance.dependency_graph
    selected = sorted(
        (
            name
            for name in occurring
            if all(
                repr(name) < repr(neighbor)
                for neighbor in graph.neighbors(name)
                if neighbor in occurring
            )
        ),
        key=repr,
    )
    cells = tuple(
        FixCell(
            owner=name,
            ops=tuple(
                FixOp(variable=variable_name, events=(name,))
                for variable_name in instance.event(name).scope_names
            ),
        )
        for name in selected
    )
    return ColorClass(color=0, cells=cells)


def plan_for_instance(instance: LLLInstance) -> FixPlan:
    """Dispatch to the rank-2 or rank-3 plan builder by instance rank."""
    if instance.rank <= 2:
        return build_plan_rank2(instance)
    return build_plan_rank3(instance)
