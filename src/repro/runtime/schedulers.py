"""Pluggable execution backends for :class:`~repro.runtime.plan.FixPlan`.

All three schedulers produce bit-identical assignments, step records and
phi ledgers; they differ only in how the independent cells of a color
class are traversed:

* :class:`SerialScheduler` — cells and ops strictly in plan order, one
  ``fix_variable`` per op.  This is the differential oracle.
* :class:`BatchScheduler` — same commit order, but each decision is
  memoized on its *local situation*: the affected kernels'
  fingerprints, their scope pins, the variable's weight vector and the
  bookkeeping weights.  Two variables in identical local situations
  (ubiquitous on symmetric instances) share one engine pass; the cached
  choice is replayed by support position, which is exact because every
  numeric query is label-independent.
* :class:`ProcessScheduler` — cells are serialised to picklable
  payloads (:mod:`repro.runtime.workers`) and replayed in a process
  pool; the parent commits the returned choices in plan order, so the
  trace equals the serial one.  Workers re-validate read-set
  disjointness: a schedule bug raises instead of corrupting phi.

Every scheduler validates each class's cross-cell disjointness before
touching it and publishes per-class span / op-count metrics through
:mod:`repro.obs`.
"""

from __future__ import annotations

import dataclasses
import time
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.obs.recorder import active as _obs_active
from repro.core.selection import Decision
from repro.lll.instance import LLLInstance
from repro.runtime.plan import ColorClass, FixCell, FixPlan
from repro.runtime.workers import (
    CellPayload,
    EventPayload,
    OpPayload,
    execute_chunk,
)

#: Registered scheduler names, in documentation order.
SCHEDULER_NAMES = ("serial", "batch", "process")


def _fixer_kind(fixer) -> str:
    """The selection discipline of a fixer, for worker payloads."""
    name = type(fixer).__name__
    if name == "Rank2Fixer":
        return "rank2"
    if name == "Rank3Fixer":
        return "rank3"
    return "naive"


class Scheduler(ABC):
    """Executes a :class:`FixPlan` against a fixer.

    The fixer contract is the ``decide``/``commit`` split shared by
    :class:`~repro.core.rank2.Rank2Fixer`,
    :class:`~repro.core.rank3.Rank3Fixer` and
    :class:`~repro.core.naive_rankr.NaiveRankRFixer`: ``decide(name)``
    computes a :class:`~repro.core.selection.Decision` without side
    effects, ``commit(decision)`` applies it, and ``fix_variable`` is
    their composition.
    """

    #: Short name used by the CLI and the metrics.
    name: str = "abstract"

    def execute(self, fixer, plan: FixPlan, instance: LLLInstance) -> None:
        """Run every class of the plan, with validation and metrics."""
        recorder = _obs_active()
        if recorder is not None:
            recorder.event(
                "runtime",
                "plan",
                scheduler=self.name,
                kind=plan.kind,
                classes=plan.num_classes,
                cells=plan.num_cells,
                ops=plan.num_ops,
                critical_path=plan.critical_path,
            )
        for color_class in plan.classes:
            color_class.validate_disjoint()
            start = time.perf_counter_ns() if recorder is not None else 0
            self._run_class(fixer, color_class, instance)
            if recorder is not None:
                elapsed = time.perf_counter_ns() - start
                recorder.record_span("runtime", "class", elapsed)
                recorder.count("runtime", "ops", color_class.num_ops)
                recorder.count("runtime", "classes")
                recorder.event(
                    "runtime",
                    "class",
                    scheduler=self.name,
                    color=color_class.color,
                    cells=len(color_class.cells),
                    ops=color_class.num_ops,
                    span=color_class.span,
                )

    @abstractmethod
    def _run_class(
        self, fixer, color_class: ColorClass, instance: LLLInstance
    ) -> None:
        """Fix every op of one (validated) color class."""


class SerialScheduler(Scheduler):
    """Plan order, one variable at a time — the differential oracle."""

    name = "serial"

    def _run_class(
        self, fixer, color_class: ColorClass, instance: LLLInstance
    ) -> None:
        for cell in color_class.cells:
            for op in cell.ops:
                fixer.fix_variable(op.variable)


class BatchScheduler(Scheduler):
    """Decision memoization over the local situations of a plan.

    The cache key captures everything a decision reads: the fixer
    discipline, the variable's probability vector, and per affected
    event the interned kernel fingerprint, the scope pins and the
    variable's scope position — plus the current bookkeeping weights.
    Keys are exact (no float rounding), so a hit replays a decision
    whose numeric inputs were bit-identical; only the value *label* is
    rebound, by support position.  Events without a compiled kernel
    fall back to a direct ``decide``.
    """

    name = "batch"

    def execute(self, fixer, plan: FixPlan, instance: LLLInstance) -> None:
        self._memo: Dict[tuple, Tuple[object, int]] = {}
        self._hits = 0
        self._misses = 0
        super().execute(fixer, plan, instance)
        recorder = _obs_active()
        if recorder is not None:
            recorder.event(
                "runtime",
                "batch_cache",
                hits=self._hits,
                misses=self._misses,
            )

    def _run_class(
        self, fixer, color_class: ColorClass, instance: LLLInstance
    ) -> None:
        recorder = _obs_active()
        memo = self._memo
        for cell in color_class.cells:
            for op in cell.ops:
                variable = instance.variable(op.variable)
                events = instance.events_of_variable(op.variable)
                key = self._situation_key(fixer, variable, events)
                if key is None:
                    fixer.commit(fixer.decide(op.variable))
                    continue
                cached = memo.get(key)
                if cached is None:
                    self._misses += 1
                    if recorder is not None:
                        recorder.count("runtime", "batch_misses")
                    decision = fixer.decide(op.variable)
                    support = [
                        value for value, _prob in variable.support_items()
                    ]
                    memo[key] = (
                        decision.choice,
                        support.index(decision.choice.value),
                    )
                    fixer.commit(decision)
                else:
                    self._hits += 1
                    if recorder is not None:
                        recorder.count("runtime", "batch_hits")
                    choice, position = cached
                    support = [
                        value for value, _prob in variable.support_items()
                    ]
                    replayed = dataclasses.replace(
                        choice, value=support[position]
                    )
                    fixer.commit(
                        Decision(
                            variable=variable,
                            events=tuple(events),
                            choice=replayed,
                        )
                    )

    @staticmethod
    def _situation_key(fixer, variable, events) -> Optional[tuple]:
        """The exact local situation of a decision, or ``None`` to skip."""
        parts = []
        for event in events:
            kernel = event.compiled_kernel()
            if kernel is None:
                return None
            pins = event.scope_pins(fixer.assignment)
            if pins is None:
                return None
            parts.append(
                (
                    kernel.fingerprint(),
                    tuple(pins),
                    event.scope_names.index(variable.name),
                )
            )
        return (
            _fixer_kind(fixer),
            variable.probabilities,
            tuple(parts),
            fixer.local_weights(events),
        )


class ProcessScheduler(Scheduler):
    """Cells of a class run in a ``ProcessPoolExecutor``; commits stay
    in the parent, in plan order.

    Each dispatched cell carries its events' kernels and pins plus its
    slice of the phi ledger (:class:`~repro.runtime.workers.CellPayload`);
    the worker replays the cell through the shared selection rules and
    returns the choices.  Cells that cannot be serialised (no compiled
    kernel) execute in the parent at their merge position, preserving
    order.  ``max_workers`` bounds the pool; ``min_dispatch_ops`` routes
    tiny classes around the pool entirely.
    """

    name = "process"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        min_dispatch_ops: int = 2,
    ) -> None:
        self._max_workers = max_workers
        self._min_dispatch_ops = max(int(min_dispatch_ops), 1)
        self._pool: Optional[ProcessPoolExecutor] = None

    def execute(self, fixer, plan: FixPlan, instance: LLLInstance) -> None:
        try:
            super().execute(fixer, plan, instance)
        finally:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def _acquire_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self._max_workers)
        return self._pool

    def _run_class(
        self, fixer, color_class: ColorClass, instance: LLLInstance
    ) -> None:
        kind = _fixer_kind(fixer)
        payloads: List[Optional[CellPayload]] = [
            self._cell_payload(fixer, kind, cell, instance)
            for cell in color_class.cells
        ]
        dispatchable = [
            index for index, payload in enumerate(payloads)
            if payload is not None
        ]
        dispatch_ops = sum(
            len(color_class.cells[index].ops) for index in dispatchable
        )
        choices_by_cell: Dict[int, List[object]] = {}
        workers_used = 0
        if len(dispatchable) >= 2 and dispatch_ops >= self._min_dispatch_ops:
            pool = self._acquire_pool()
            limit = pool._max_workers
            chunks = self._chunk(dispatchable, limit)
            futures = [
                pool.submit(
                    execute_chunk, [payloads[index] for index in chunk]
                )
                for chunk in chunks
            ]
            workers_used = len(chunks)
            for chunk, future in zip(chunks, futures):
                for index, choices in zip(chunk, future.result()):
                    choices_by_cell[index] = choices
            recorder = _obs_active()
            if recorder is not None:
                chunk_ops = [
                    sum(len(color_class.cells[i].ops) for i in chunk)
                    for chunk in chunks
                ]
                recorder.event(
                    "runtime",
                    "workers",
                    color=color_class.color,
                    workers=workers_used,
                    chunk_ops=chunk_ops,
                    utilization=(
                        min(chunk_ops) / max(chunk_ops)
                        if chunk_ops and max(chunk_ops) > 0
                        else 1.0
                    ),
                )

        # Deterministic merge: plan cell order, regardless of which
        # worker finished first (or whether a cell ran in-parent).
        for index, cell in enumerate(color_class.cells):
            choices = choices_by_cell.get(index)
            if choices is None:
                for op in cell.ops:
                    fixer.commit(fixer.decide(op.variable))
                continue
            for op, choice in zip(cell.ops, choices):
                variable = instance.variable(op.variable)
                events = instance.events_of_variable(op.variable)
                fixer.commit(
                    Decision(
                        variable=variable,
                        events=tuple(events),
                        choice=choice,
                    )
                )

    @staticmethod
    def _chunk(indices: Sequence[int], workers: int) -> List[List[int]]:
        """Split cell indices into at most ``workers`` contiguous chunks."""
        count = min(max(workers, 1), len(indices))
        size, remainder = divmod(len(indices), count)
        chunks: List[List[int]] = []
        start = 0
        for position in range(count):
            end = start + size + (1 if position < remainder else 0)
            chunks.append(list(indices[start:end]))
            start = end
        return [chunk for chunk in chunks if chunk]

    @staticmethod
    def _cell_payload(
        fixer, kind: str, cell: FixCell, instance: LLLInstance
    ) -> Optional[CellPayload]:
        """Serialise a cell, or ``None`` when it must run in-parent."""
        event_payloads: Dict[Hashable, EventPayload] = {}
        ops: List[OpPayload] = []
        ledger: Dict[frozenset, Tuple[Tuple[Hashable, float], ...]] = {}
        for op in cell.ops:
            variable = instance.variable(op.variable)
            events = instance.events_of_variable(op.variable)
            for event in events:
                if event.name in event_payloads:
                    continue
                kernel = event.compiled_kernel()
                if kernel is None:
                    return None
                pins = event.scope_pins(fixer.assignment)
                if pins is None:
                    return None
                event_payloads[event.name] = EventPayload(
                    name=event.name,
                    kernel=kernel,
                    scope_names=event.scope_names,
                    pins=tuple(pins),
                )
            names = tuple(event.name for event in events)
            ops.append(OpPayload(variable=variable, event_names=names))
            if kind == "naive":
                key = frozenset(names)
                if key not in ledger:
                    weights = fixer.local_weights(events)
                    ledger[key] = tuple(zip(names, weights))
            elif len(events) == 2:
                key = frozenset(names)
                if key not in ledger:
                    weights = fixer.local_weights(events)
                    ledger[key] = tuple(zip(names, weights))
            elif len(events) == 3:
                for u, v in (
                    (names[0], names[1]),
                    (names[0], names[2]),
                    (names[1], names[2]),
                ):
                    key = frozenset((u, v))
                    if key not in ledger:
                        ledger[key] = (
                            (u, fixer.pstar.value(u, v, u)),
                            (v, fixer.pstar.value(u, v, v)),
                        )
        return CellPayload(
            owner=cell.owner,
            kind=kind,
            ops=tuple(ops),
            events=tuple(event_payloads.values()),
            ledger=tuple(ledger.items()),
        )


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Factory used by the CLI and the benchmarks.

    Raises
    ------
    ReproError
        If ``name`` is not one of :data:`SCHEDULER_NAMES`.
    """
    if name == "serial":
        return SerialScheduler(**kwargs)
    if name == "batch":
        return BatchScheduler(**kwargs)
    if name == "process":
        return ProcessScheduler(**kwargs)
    raise ReproError(
        f"unknown scheduler {name!r}; expected one of {SCHEDULER_NAMES}"
    )
