"""Pluggable execution backends for :class:`~repro.runtime.plan.FixPlan`.

All three schedulers produce bit-identical assignments, step records and
phi ledgers; they differ only in how the independent cells of a color
class are traversed:

* :class:`SerialScheduler` — cells and ops strictly in plan order, one
  ``fix_variable`` per op.  This is the differential oracle.
* :class:`BatchScheduler` — same commit order, but each decision is
  memoized on its *local situation*: the affected kernels'
  fingerprints, their scope pins, the variable's weight vector and the
  bookkeeping weights.  Two variables in identical local situations
  (ubiquitous on symmetric instances) share one engine pass; the cached
  choice is replayed by support position, which is exact because every
  numeric query is label-independent.
* :class:`ProcessScheduler` — cells are replayed in a process pool; the
  parent commits the returned choices in plan order, so the trace
  equals the serial one.  Workers re-validate read-set disjointness: a
  schedule bug raises instead of corrupting phi.  Two IPC planes exist
  (``REPRO_IPC``): the default ``shm`` plane broadcasts the solve once
  into a :class:`~repro.runtime.shm.SharedInstanceSegment` and ships
  only fixed-width chunk descriptors to persistent warm workers, which
  write their decisions into a shared result region; the ``pickle``
  plane re-serialises payloads per chunk and is kept verbatim as the
  differential oracle.  Both are fault-tolerant: per-chunk deadlines,
  pool-rebuilding retries with bounded exponential backoff, and a
  final in-parent fallback keep the merge bit-identical under worker
  crashes and hangs (deterministically injectable through
  :class:`repro.faults.FaultPlan` or the ``REPRO_FAULTS`` environment
  spec).

All three backends dispatch whole color classes through the fixers'
``decide_class``/``commit_class`` batch split when the vector decide
plane (:mod:`repro.core.vector`) accepts the class; a ``None`` from
``decide_class`` — scalar decide mode (``REPRO_DECIDE=scalar``), events
without compiled kernels — falls back to the scheduler's own per-op
loop, which is the differential oracle the batch path is tested
against.  The process backend additionally batches *inside* the
workers: each chunk executes as one class-level program
(:func:`repro.runtime.workers.execute_class_chunk`) and kernels are
interned per class so every distinct kernel pickles once per chunk.

Every scheduler validates each class's cross-cell disjointness before
touching it and publishes per-class span / op-count metrics through
:mod:`repro.obs`.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import shutil
import tempfile
import time
import weakref
from abc import ABC, abstractmethod
from concurrent.futures import (
    CancelledError as FuturesCancelledError,
    ProcessPoolExecutor,
    TimeoutError as FuturesTimeoutError,
)
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.artifacts.store import (
    STORE as _ARTIFACTS,
    artifacts_enabled,
    artifacts_mode,
)
from repro.errors import ReproError, SchedulerProtocolError
from repro.faults import FaultPlan, fault_plan_from_env
from repro.probability import engine as _engine
from repro.obs.profile import profile_mode_from_env, profiled
from repro.obs.recorder import active as _obs_active
from repro.obs.shard import TraceContext, collect_shard_fallback
from repro.core.selection import Decision
from repro.core.vector import decide_mode
from repro.lll.instance import LLLInstance
from repro.runtime.plan import ColorClass, FixCell, FixPlan
from repro.runtime.shm import (
    CLEANUP_ERRORS,
    IPC_MODES,
    ChunkDescriptor,
    ShmSession,
    ipc_mode,
    report_cleanup_error,
)
from repro.runtime.workers import (
    CellPayload,
    ChunkReply,
    EventPayload,
    OpPayload,
    _shm_worker_init,
    execute_chunk,
    execute_chunk_shm,
)

#: Registered scheduler names, in documentation order.
SCHEDULER_NAMES = ("serial", "batch", "process")

#: Failure classes the process backend recovers from (everything else —
#: notably :class:`SchedulerProtocolError` and worker-side validation
#: errors — indicates a bug and propagates).
_RECOVERABLE_FAILURES = (
    TimeoutError,
    FuturesTimeoutError,
    FuturesCancelledError,
    BrokenProcessPool,
    OSError,
    EOFError,
)


def _is_recoverable_failure(error: BaseException) -> bool:
    """Whether a chunk failure is environmental (retry) or a bug (raise)."""
    return isinstance(error, _RECOVERABLE_FAILURES)


def _classify_failure(error: BaseException) -> str:
    """A stable label for a recoverable chunk failure, for obs events."""
    if isinstance(error, (TimeoutError, FuturesTimeoutError)):
        return "deadline"
    if isinstance(error, BrokenProcessPool):
        return "worker-death"
    if isinstance(error, FuturesCancelledError):
        return "cancelled"
    return "ipc-failure"


def _dispatch_class(fixer, color_class: ColorClass, recorder) -> bool:
    """Try the whole-class batch path; ``True`` if the class was fixed.

    ``decide_class`` is a pure batched decide — it parks speculative run
    state but mutates nothing — so a ``None`` (scalar mode, missing
    kernels, internal fallback) leaves the fixer exactly where the
    caller's per-op loop expects it.
    """
    decide_class = getattr(fixer, "decide_class", None)
    if decide_class is None:
        return False
    choices = decide_class(color_class.cells)
    if choices is None:
        return False
    fixer.commit_class(color_class.cells, choices)
    if recorder is not None:
        recorder.count("runtime", "class_batches")
    return True


def _fixer_kind(fixer) -> str:
    """The selection discipline of a fixer, for worker payloads."""
    name = type(fixer).__name__
    if name == "Rank2Fixer":
        return "rank2"
    if name == "Rank3Fixer":
        return "rank3"
    return "naive"


class Scheduler(ABC):
    """Executes a :class:`FixPlan` against a fixer.

    The fixer contract is the ``decide``/``commit`` split shared by
    :class:`~repro.core.rank2.Rank2Fixer`,
    :class:`~repro.core.rank3.Rank3Fixer` and
    :class:`~repro.core.naive_rankr.NaiveRankRFixer`: ``decide(name)``
    computes a :class:`~repro.core.selection.Decision` without side
    effects, ``commit(decision)`` applies it, and ``fix_variable`` is
    their composition.
    """

    #: Short name used by the CLI and the metrics.
    name: str = "abstract"

    def describe(self) -> str:
        """One-line backend config echo for run headers and reports."""
        return self.name

    def execute(self, fixer, plan: FixPlan, instance: LLLInstance) -> None:
        """Run every class of the plan, with validation and metrics."""
        recorder = _obs_active()
        # REPRO_PROFILE only takes effect when a recorder is live — the
        # profile events need a trace to land in.
        self._profile_mode = (
            profile_mode_from_env() if recorder is not None else None
        )
        if recorder is not None:
            recorder.event(
                "runtime",
                "plan",
                scheduler=self.name,
                kind=plan.kind,
                classes=plan.num_classes,
                cells=plan.num_cells,
                ops=plan.num_ops,
                critical_path=plan.critical_path,
            )
        with profiled(recorder, "scheduler", self._profile_mode,
                      name=f"execute:{self.name}"):
            for index, color_class in enumerate(plan.classes):
                color_class.validate_disjoint()
                start = time.perf_counter_ns() if recorder is not None else 0
                self._run_class(fixer, color_class, instance)
                if recorder is not None:
                    elapsed = time.perf_counter_ns() - start
                    recorder.record_span("runtime", "class", elapsed)
                    recorder.observe_quantile("runtime", "class_ns", elapsed)
                    recorder.count("runtime", "ops", color_class.num_ops)
                    recorder.count("runtime", "classes")
                    recorder.gauge("runtime", "classes_done", index + 1)
                    recorder.event(
                        "runtime",
                        "class",
                        scheduler=self.name,
                        color=color_class.color,
                        cells=len(color_class.cells),
                        ops=color_class.num_ops,
                        span=color_class.span,
                    )
                    recorder.maybe_snapshot()
        if recorder is not None:
            # One unified surfacing point: the engine's kernel/probability
            # cache counters and the artifact store's per-tier hit/miss/
            # eviction counters land in the same trace, as deltas since
            # the last publish.
            _engine.publish_stats(recorder)
            _ARTIFACTS.publish_stats(recorder)

    @abstractmethod
    def _run_class(
        self, fixer, color_class: ColorClass, instance: LLLInstance
    ) -> None:
        """Fix every op of one (validated) color class."""


class SerialScheduler(Scheduler):
    """Plan order, one variable at a time.

    Classes the vector plane accepts run as one batched
    ``decide_class``/``commit_class`` pass; everything else (and the
    whole plan under ``REPRO_DECIDE=scalar``) takes the historical
    one-``fix_variable``-per-op loop — the differential oracle.
    """

    name = "serial"

    def _run_class(
        self, fixer, color_class: ColorClass, instance: LLLInstance
    ) -> None:
        if _dispatch_class(fixer, color_class, _obs_active()):
            return
        for cell in color_class.cells:
            for op in cell.ops:
                fixer.fix_variable(op.variable)


class BatchScheduler(Scheduler):
    """Decision memoization over the local situations of a plan.

    The cache key captures everything a decision reads: the fixer
    discipline, the variable's probability vector, and per affected
    event the interned kernel fingerprint, the scope pins and the
    variable's scope position — plus the current bookkeeping weights.
    Keys are exact (no float rounding), so a hit replays a decision
    whose numeric inputs were bit-identical; only the value *label* is
    rebound, by support position.  Events without a compiled kernel
    fall back to a direct ``decide``.
    """

    name = "batch"

    def execute(self, fixer, plan: FixPlan, instance: LLLInstance) -> None:
        # With the artifact plane on, the memo is the shared store's
        # ``situations`` tier: keys are pure local-situation content
        # (interned kernel fingerprints, pins, weights — no names), so a
        # decision memoized by one execute replays exactly in any later
        # execute, including over a different same-shape instance.  With
        # the plane off, a per-execute dict preserves legacy behaviour.
        if artifacts_enabled():
            self._memo = _ARTIFACTS.tier("situations")
        else:
            self._memo = {}
        self._hits = 0
        self._misses = 0
        super().execute(fixer, plan, instance)
        recorder = _obs_active()
        if recorder is not None:
            recorder.event(
                "runtime",
                "batch_cache",
                hits=self._hits,
                misses=self._misses,
            )

    def _run_class(
        self, fixer, color_class: ColorClass, instance: LLLInstance
    ) -> None:
        recorder = _obs_active()
        # The vector plane already amortizes identical local situations
        # (its engine pass dedups lanes by situation bytes), so a class
        # it accepts never touches the scalar memo.
        if _dispatch_class(fixer, color_class, recorder):
            return
        memo = self._memo
        for cell in color_class.cells:
            for op in cell.ops:
                variable = instance.variable(op.variable)
                events = instance.events_of_variable(op.variable)
                key = self._situation_key(fixer, variable, events)
                if key is None:
                    fixer.commit(fixer.decide(op.variable))
                    continue
                cached = memo.get(key)
                if cached is None:
                    self._misses += 1
                    if recorder is not None:
                        recorder.count("runtime", "batch_misses")
                    decision = fixer.decide(op.variable)
                    support = [
                        value for value, _prob in variable.support_items()
                    ]
                    memo[key] = (
                        decision.choice,
                        support.index(decision.choice.value),
                    )
                    fixer.commit(decision)
                else:
                    self._hits += 1
                    if recorder is not None:
                        recorder.count("runtime", "batch_hits")
                    choice, position = cached
                    support = [
                        value for value, _prob in variable.support_items()
                    ]
                    replayed = dataclasses.replace(
                        choice, value=support[position]
                    )
                    fixer.commit(
                        Decision(
                            variable=variable,
                            events=tuple(events),
                            choice=replayed,
                        )
                    )

    @staticmethod
    def _situation_key(fixer, variable, events) -> Optional[tuple]:
        """The exact local situation of a decision, or ``None`` to skip."""
        parts = []
        for event in events:
            kernel = event.compiled_kernel()
            if kernel is None:
                return None
            pins = event.scope_pins(fixer.assignment)
            if pins is None:
                return None
            parts.append(
                (
                    kernel.fingerprint(),
                    tuple(pins),
                    event.scope_names.index(variable.name),
                )
            )
        return (
            _fixer_kind(fixer),
            variable.probabilities,
            tuple(parts),
            fixer.local_weights(events),
        )


@dataclasses.dataclass
class _ChunkState:
    """Dispatch bookkeeping for one chunk of cells."""

    #: Global chunk index (monotonic across classes) — the fault plan's
    #: addressing space and the obs events' correlation key.
    chunk_id: int
    #: Cell indices (into the class) this chunk carries.
    cells: List[int]
    #: 0-based dispatch attempt.
    attempt: int = 0
    #: Whether any attempt of this chunk has failed (for recovery obs).
    faulted: bool = False
    #: Shm mode only: the chunk's ``[start, stop)`` roster range — the
    #: whole payload of a :class:`~repro.runtime.shm.ChunkDescriptor`.
    start: int = 0
    stop: int = 0


class _ProcessResources:
    """The pool and shm session of one :class:`ProcessScheduler`.

    Lives in its own object (not on the scheduler) so the scheduler's
    ``weakref.finalize`` callback can tear both down without keeping the
    scheduler itself alive — a dropped scheduler can never leak a pool
    or a ``/dev/shm`` segment past garbage collection.
    """

    __slots__ = ("pool", "session")

    def __init__(self) -> None:
        self.pool: Optional[ProcessPoolExecutor] = None
        self.session: Optional[ShmSession] = None


def _release_process_resources(box: _ProcessResources) -> None:
    """Finalizer body: shut the pool down, unlink the segment."""
    pool, box.pool = box.pool, None
    if pool is not None:
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except CLEANUP_ERRORS as error:
            report_cleanup_error("finalizer_pool_shutdown", error)
    session, box.session = box.session, None
    if session is not None:
        try:
            session.close()
        except CLEANUP_ERRORS as error:
            report_cleanup_error("finalizer_session_close", error)


class ProcessScheduler(Scheduler):
    """Cells of a class run in a ``ProcessPoolExecutor``; commits stay
    in the parent, in plan order.

    Two IPC planes, selected by ``REPRO_IPC`` or the ``ipc`` argument
    (resolved at construction, echoed by :meth:`describe`):

    * ``shm`` (default) — the solve's static structure broadcasts once
      into a :class:`~repro.runtime.shm.SharedInstanceSegment`; warm
      workers attach at pool start, pre-warm their artifact store from
      the blob, and receive only fixed-width
      :class:`~repro.runtime.shm.ChunkDescriptor`\\ s per chunk.  Live
      pins/phi refresh in place per class, decisions come back through
      a preallocated shared result region, and the pool + segment stay
      warm across executes until :meth:`close` (or GC/atexit via
      ``weakref.finalize`` — no leaked ``/dev/shm`` entries).
    * ``pickle`` — each dispatched cell carries its events' kernels and
      pins plus its slice of the phi ledger
      (:class:`~repro.runtime.workers.CellPayload`) on every chunk,
      with a fresh pool per execute.  This is the differential oracle
      for the shm plane.

    Either way the worker replays cells through the shared selection
    rules; cells that cannot be serialised (no compiled kernel, pins
    unavailable) execute in the parent at their merge position,
    preserving order.  ``max_workers`` bounds the pool;
    ``min_dispatch_ops`` routes tiny classes around the pool entirely.

    Failure semantics (see docs/scheduling.md): every chunk result is
    awaited with ``deadline`` seconds of patience; a timeout or a dead
    worker (``BrokenProcessPool``) marks the chunk failed, the pool is
    abandoned and rebuilt, and the chunk is resubmitted with bounded
    exponential backoff up to ``max_retries`` times.  A chunk that
    exhausts its retries falls back to in-parent execution at its merge
    position — which is *exactly* the serial oracle's arithmetic, so
    recovery never changes the transcript.  Malformed worker replies
    (wrong cell count, short choice lists) raise
    :class:`~repro.errors.SchedulerProtocolError` before anything is
    committed — no silent partial cells.  All of it is observable:
    ``runtime/fault``, ``runtime/retry`` and ``runtime/fallback`` events
    carry a shared ``scope`` key (``chunk:<id>``) that
    :func:`repro.core.audit.certify_recovery` cross-checks.

    ``fault_plan`` injects deterministic failures
    (:class:`~repro.faults.FaultPlan`); when omitted, the ambient
    ``REPRO_FAULTS`` environment spec applies (``None`` disables).
    """

    name = "process"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        min_dispatch_ops: int = 2,
        deadline: Optional[float] = None,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        fault_plan: Optional[FaultPlan] = None,
        sleep: Callable[[float], None] = time.sleep,
        ipc: Optional[str] = None,
    ) -> None:
        if max_workers is None:
            # Resolve the worker count ourselves instead of reaching
            # into the pool's private ``_max_workers`` after the fact.
            max_workers = os.cpu_count() or 1
        if max_workers < 1:
            raise ReproError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self._num_workers = int(max_workers)
        self._min_dispatch_ops = max(int(min_dispatch_ops), 1)
        if fault_plan is None:
            fault_plan = fault_plan_from_env()
        self._fault_plan = fault_plan
        if deadline is None and fault_plan is not None:
            deadline = fault_plan.deadline
        self._deadline = deadline
        self._max_retries = max(int(max_retries), 0)
        self._backoff_base = max(float(backoff_base), 0.0)
        self._backoff_cap = max(float(backoff_cap), 0.0)
        self._sleep = sleep
        # The IPC plane is resolved *now*, not per execute: the run
        # header echoes it, the E8 artifacts depend on it, and flipping
        # REPRO_IPC mid-scheduler would desynchronise a warm pool from
        # its segment.
        if ipc is None:
            ipc = ipc_mode()
        if ipc not in IPC_MODES:
            raise ReproError(
                f"invalid IPC mode {ipc!r}; expected one of {IPC_MODES}"
            )
        self._ipc = ipc
        self._box = _ProcessResources()
        self._finalizer = weakref.finalize(
            self, _release_process_resources, self._box
        )
        self._next_chunk_id = 0
        self._shard_dir: Optional[str] = None
        self._profile_mode: Optional[str] = None
        #: Segment name the warm pool's initializers attached to; the
        #: pool is rebuilt whenever the session's segment name drifts
        #: from it (see :meth:`_ensure_session`).
        self._attached_segment: Optional[str] = None
        #: Per-execute IPC accounting, readable after ``execute`` —
        #: the E8 report and the run header pull from here.
        self.ipc_stats: Dict[str, object] = {}

    @property
    def _pool(self) -> Optional[ProcessPoolExecutor]:
        return self._box.pool

    @_pool.setter
    def _pool(self, pool: Optional[ProcessPoolExecutor]) -> None:
        self._box.pool = pool

    @property
    def _session(self) -> Optional[ShmSession]:
        return self._box.session

    def describe(self) -> str:
        parts = [f"process workers={self._num_workers} ipc={self._ipc}"]
        if self._deadline is not None:
            parts.append(f"deadline={self._deadline:g}s")
        if self._fault_plan is not None:
            parts.append("faults=on")
        return " ".join(parts)

    def close(self) -> None:
        """Shut the pool down and unlink the shared segment (idempotent).

        Runs automatically when the scheduler is garbage-collected or at
        interpreter exit (``weakref.finalize``); long-lived callers that
        churn schedulers should call it eagerly to bound ``/dev/shm``
        usage.
        """
        self._finalizer()

    def execute(self, fixer, plan: FixPlan, instance: LLLInstance) -> None:
        recorder = _obs_active()
        self.ipc_stats = {
            "ipc": self._ipc,
            "workers": self._num_workers,
            "broadcasts": 0,
            "generation": 0,
            "chunks": 0,
            "shm_bytes": 0,
            "descriptor_bytes": 0,
            "pickle_bytes": 0,
            "worker_warm_hits": 0,
        }
        if recorder is not None:
            # Workers append crash-survivable telemetry here; the merged
            # trace is the durable artifact, so the shards are temporary.
            self._shard_dir = tempfile.mkdtemp(prefix="repro-shards-")
        try:
            if self._ipc == "shm":
                self._ensure_session(fixer, plan, instance, recorder)
            super().execute(fixer, plan, instance)
        finally:
            if self._ipc != "shm" and self._pool is not None:
                # The pickle oracle keeps its historical lifecycle: a
                # fresh pool per execute.  The shm pool stays warm
                # across executes (that is the point); ``close()`` or
                # the finalizer reclaims it.
                self._pool.shutdown(wait=True)
                self._pool = None
            if self._shard_dir is not None:
                shutil.rmtree(self._shard_dir, ignore_errors=True)
                self._shard_dir = None

    def _ensure_session(
        self, fixer, plan: FixPlan, instance: LLLInstance, recorder
    ) -> None:
        """Publish the solve into the shared segment before any class.

        A new segment name invalidates the warm pool (its initializers
        attached the old name), so the pool is rebuilt; a same-segment
        re-broadcast only bumps the generation — warm workers re-read
        the blob on their next chunk and keep their processes.
        """
        if self._box.session is None:
            self._box.session = ShmSession()
        session = self._box.session
        outcome = session.ensure(_fixer_kind(fixer), plan, instance)
        # The warm pool is only valid while it is attached to the
        # session's current segment *name*.  The name comparison (not
        # ``outcome == "segment"``) also covers an earlier ensure that
        # reallocated the segment and then failed before returning: its
        # outcome was lost to the raise, but the mismatch is durable.
        if (
            self._pool is not None
            and self._attached_segment != session.segment.name
        ):
            # No fault here — workers are idle between executes, so a
            # graceful shutdown is safe and releases their attachments.
            self._pool.shutdown(wait=True)
            self._pool = None
        self.ipc_stats["generation"] = session.generation
        if outcome == "reuse":
            return
        blob_bytes = len(session.lowered.blob)
        self.ipc_stats["broadcasts"] = (
            int(self.ipc_stats["broadcasts"]) + 1
        )
        self.ipc_stats["shm_bytes"] = (
            int(self.ipc_stats["shm_bytes"]) + blob_bytes
        )
        if recorder is not None:
            recorder.count("runtime", "shm_broadcasts")
            recorder.count("runtime", "shm_bytes", blob_bytes)
            recorder.event(
                "runtime",
                "shm_broadcast",
                outcome=outcome,
                generation=session.generation,
                blob_bytes=blob_bytes,
                segment_bytes=session.segment.layout.total_bytes,
                classes=len(session.lowered.parent_classes),
            )

    def _acquire_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            if self._ipc == "shm":
                # Warm workers: every process attaches the segment and
                # pins the parent's decide/artifact modes once, before
                # its first chunk.
                self._attached_segment = self._session.segment.name
                self._pool = ProcessPoolExecutor(
                    max_workers=self._num_workers,
                    initializer=_shm_worker_init,
                    initargs=(
                        self._attached_segment,
                        artifacts_mode(),
                        decide_mode(),
                    ),
                )
            else:
                self._pool = ProcessPoolExecutor(
                    max_workers=self._num_workers
                )
        return self._pool

    def _abandon_pool(self) -> None:
        """Discard a pool that failed or may hold hung workers.

        ``shutdown(wait=True)`` on a pool with a hung worker would block
        the parent forever — the precise failure mode the deadline
        exists to bound — so the pool is shut down without waiting and
        its remaining processes are terminated best-effort, then killed
        if they ignore the terminate.  The join matters for the shm
        plane: a terminated worker's segment mapping dies with the
        process, so a retry wave can never race a half-dead writer over
        the shared result region.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except CLEANUP_ERRORS as error:
            report_cleanup_error("abandon_pool_shutdown", error)
        processes = list(
            (getattr(pool, "_processes", None) or {}).values()
        )
        for process in processes:
            try:
                process.terminate()
            except CLEANUP_ERRORS as error:
                report_cleanup_error("abandon_pool_terminate", error)
        for process in processes:
            try:
                process.join(0.5)
                if process.is_alive():
                    process.kill()
                    process.join(0.5)
            except CLEANUP_ERRORS as error:
                report_cleanup_error("abandon_pool_join", error)

    def _run_class(
        self, fixer, color_class: ColorClass, instance: LLLInstance
    ) -> None:
        recorder = _obs_active()
        if self._ipc == "shm":
            choices_by_cell = self._collect_shm(fixer, color_class, recorder)
        else:
            choices_by_cell = self._collect_pickle(
                fixer, color_class, instance, recorder
            )

        # Deterministic merge: plan cell order, regardless of which
        # worker finished first (or whether a cell ran in-parent).
        merge_start = time.perf_counter_ns() if recorder is not None else 0
        for index, cell in enumerate(color_class.cells):
            choices = choices_by_cell.get(index)
            if choices is None:
                for op in cell.ops:
                    fixer.commit(fixer.decide(op.variable))
                continue
            if len(choices) != len(cell.ops):
                raise SchedulerProtocolError(
                    f"cell {cell.owner!r}: merge received {len(choices)} "
                    f"choices for {len(cell.ops)} ops"
                )
            for op, choice in zip(cell.ops, choices):
                variable = instance.variable(op.variable)
                events = instance.events_of_variable(op.variable)
                fixer.commit(
                    Decision(
                        variable=variable,
                        events=tuple(events),
                        choice=choice,
                    )
                )
        if recorder is not None:
            recorder.record_span(
                "runtime", "merge",
                time.perf_counter_ns() - merge_start,
                color=color_class.color, cells=len(color_class.cells),
            )

    # ------------------------------------------------------------------
    # Per-class collection (shm and pickle planes)
    # ------------------------------------------------------------------
    def _collect_pickle(
        self,
        fixer,
        color_class: ColorClass,
        instance: LLLInstance,
        recorder,
    ) -> Dict[int, List[object]]:
        """The original per-chunk serialisation plane (the oracle)."""
        kind = _fixer_kind(fixer)
        # Payload serialization timed apart from dispatch and merge, so
        # pickling cost is attributable from the trace alone.  Kernels
        # are interned per class (by fingerprint): cells of a symmetric
        # class share the same kernel *objects*, so pickle's memo ships
        # each distinct kernel once per chunk instead of once per cell.
        payload_start = time.perf_counter_ns() if recorder is not None else 0
        kernel_cache: Dict[tuple, object] = {}
        payloads: List[Optional[CellPayload]] = [
            self._cell_payload(fixer, kind, cell, instance, kernel_cache)
            for cell in color_class.cells
        ]
        if recorder is not None:
            recorder.record_span(
                "runtime", "payload",
                time.perf_counter_ns() - payload_start,
                color=color_class.color, cells=len(payloads),
            )
        dispatchable = [
            index for index, payload in enumerate(payloads)
            if payload is not None
        ]
        if recorder is not None and dispatchable:
            # Class-level shipping cost: the size of the class's whole
            # dispatched payload in one pickle (the unit that actually
            # crosses the process boundary, kernel interning included).
            class_bytes = len(
                pickle.dumps(
                    [payloads[index] for index in dispatchable],
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            )
            self.ipc_stats["pickle_bytes"] = (
                int(self.ipc_stats.get("pickle_bytes", 0)) + class_bytes
            )
            recorder.observe_quantile(
                "runtime", "pickle_bytes_per_class", class_bytes
            )
            recorder.count("runtime", "pickle_bytes", class_bytes)
        dispatch_ops = sum(
            len(color_class.cells[index].ops) for index in dispatchable
        )
        if len(dispatchable) < 2 or dispatch_ops < self._min_dispatch_ops:
            return {}
        chunks = self._chunk(dispatchable, self._num_workers)
        self._emit_workers_event(recorder, color_class, chunks)

        def submit(pool, state, fault, trace):
            return pool.submit(
                execute_chunk,
                [payloads[index] for index in state.cells],
                fault,
                trace,
                decide_mode(),
                artifacts_mode(),
            )

        def harvest(state, reply):
            replies = (
                reply.results if isinstance(reply, ChunkReply) else reply
            )
            self._validate_replies(state, replies, color_class)
            return list(zip(state.cells, replies))

        return self._dispatch(self._make_states(chunks), submit, harvest)

    def _collect_shm(
        self, fixer, color_class: ColorClass, recorder
    ) -> Dict[int, List[object]]:
        """The zero-copy plane: refresh the segment, ship descriptors.

        The parent writes the class's live pins/phi/roster into the
        shared segment once (``shm_refresh`` span), submits fixed-width
        :class:`~repro.runtime.shm.ChunkDescriptor`\\ s, and decodes the
        workers' decisions straight out of the shared result region.
        """
        session = self._session
        class_index = session.class_index(color_class)
        refresh_start = time.perf_counter_ns() if recorder is not None else 0
        roster, written = session.refresh_class(fixer, class_index)
        self.ipc_stats["shm_bytes"] = (
            int(self.ipc_stats.get("shm_bytes", 0)) + written
        )
        if recorder is not None:
            recorder.record_span(
                "runtime", "shm_refresh",
                time.perf_counter_ns() - refresh_start,
                color=color_class.color, cells=len(roster),
            )
            recorder.observe_quantile(
                "runtime", "shm_bytes_per_class", written
            )
            recorder.count("runtime", "shm_bytes", written)
        dispatch_ops = sum(
            len(color_class.cells[cell_id].ops) for cell_id in roster
        )
        if len(roster) < 2 or dispatch_ops < self._min_dispatch_ops:
            return {}
        # Chunks are contiguous *roster position* ranges, so a chunk is
        # fully described by [start, stop) — the descriptor wire format.
        chunks = [
            [roster[position] for position in positions]
            for positions in self._chunk(
                list(range(len(roster))), self._num_workers
            )
        ]
        self._emit_workers_event(recorder, color_class, chunks)
        states = self._make_states(chunks)
        position = 0
        for state in states:
            state.start = position
            position += len(state.cells)
            state.stop = position
        generation = session.generation

        def submit(pool, state, fault, trace):
            descriptor = ChunkDescriptor(
                generation=generation,
                class_index=class_index,
                start=state.start,
                stop=state.stop,
                attempt=state.attempt,
            )
            nbytes = len(
                pickle.dumps(descriptor, protocol=pickle.HIGHEST_PROTOCOL)
            )
            self.ipc_stats["descriptor_bytes"] = (
                int(self.ipc_stats.get("descriptor_bytes", 0)) + nbytes
            )
            if recorder is not None:
                recorder.observe_quantile(
                    "runtime", "descriptor_bytes_per_chunk", nbytes
                )
                recorder.count("runtime", "descriptor_bytes", nbytes)
            return pool.submit(
                execute_chunk_shm,
                descriptor,
                fault,
                trace,
                decide_mode(),
                artifacts_mode(),
            )

        def harvest(state, ack):
            counts = getattr(ack, "counts", None)
            if counts is None:
                raise SchedulerProtocolError(
                    f"chunk {state.chunk_id}: shm worker returned "
                    f"{type(ack).__name__} instead of a chunk ack"
                )
            if len(counts) != len(state.cells):
                raise SchedulerProtocolError(
                    f"chunk {state.chunk_id}: worker acknowledged "
                    f"{len(counts)} cell results for {len(state.cells)} "
                    f"cells"
                )
            for cell_id, count in zip(state.cells, counts):
                cell = color_class.cells[cell_id]
                if count != len(cell.ops):
                    raise SchedulerProtocolError(
                        f"cell {cell.owner!r} (chunk {state.chunk_id}): "
                        f"worker wrote {count} choices for "
                        f"{len(cell.ops)} ops"
                    )
            return session.decode_chunk(class_index, state.cells)

        return self._dispatch(states, submit, harvest)

    def _make_states(
        self, chunks: Sequence[List[int]]
    ) -> List[_ChunkState]:
        states: List[_ChunkState] = []
        for chunk in chunks:
            states.append(_ChunkState(self._next_chunk_id, list(chunk)))
            self._next_chunk_id += 1
        self.ipc_stats["chunks"] = (
            int(self.ipc_stats.get("chunks", 0)) + len(states)
        )
        return states

    @staticmethod
    def _emit_workers_event(
        recorder, color_class: ColorClass, chunks: Sequence[List[int]]
    ) -> None:
        if recorder is None:
            return
        chunk_ops = [
            sum(len(color_class.cells[index].ops) for index in chunk)
            for chunk in chunks
        ]
        recorder.event(
            "runtime",
            "workers",
            color=color_class.color,
            workers=len(chunks),
            chunk_ops=chunk_ops,
            utilization=(
                min(chunk_ops) / max(chunk_ops)
                if chunk_ops and max(chunk_ops) > 0
                else 1.0
            ),
        )

    # ------------------------------------------------------------------
    # Dispatch with deadlines, retries and fallback
    # ------------------------------------------------------------------
    def _dispatch(
        self,
        states: Sequence[_ChunkState],
        submit: Callable,
        harvest: Callable,
    ) -> Dict[int, List[object]]:
        """Run the chunks through the pool; recover from failed workers.

        IPC-plane agnostic: ``submit(pool, state, fault, trace)``
        dispatches one attempt and ``harvest(state, reply)`` validates
        the reply and returns ``(cell index, choices)`` pairs — raising
        :class:`~repro.errors.SchedulerProtocolError` on garbled replies,
        which is never retried.  Returns the collected choices per cell
        index.  Cells of chunks that exhausted their retry budget are
        deliberately *absent* from the result — the merge loop executes
        them in-parent at their plan position, which reproduces the
        serial transcript exactly.
        """
        recorder = _obs_active()
        plan = self._fault_plan
        results: Dict[int, List[object]] = {}
        pending: List[_ChunkState] = list(states)
        while pending:
            pool = self._acquire_pool()
            if recorder is not None:
                recorder.gauge("runtime", "pending_chunks", len(pending))
                recorder.gauge("runtime", "pool_workers", self._num_workers)
            submitted = []
            failed: List[_ChunkState] = []
            for state in pending:
                fault = (
                    plan.worker_fault(state.chunk_id, state.attempt)
                    if plan is not None
                    else None
                )
                trace: Optional[TraceContext] = None
                if recorder is not None:
                    # The dispatch event is this attempt's causal parent:
                    # its span_id is shipped to the worker and stamped
                    # (as parent_span) on every merged shard record.
                    span_id = f"chunk:{state.chunk_id}:a{state.attempt}"
                    trace = TraceContext(
                        run_id=recorder.run_id,
                        parent_span=span_id,
                        worker_id=f"worker:{state.chunk_id}",
                        attempt=state.attempt,
                        shard_path=(
                            os.path.join(
                                self._shard_dir,
                                f"chunk{state.chunk_id}-a{state.attempt}"
                                ".jsonl",
                            )
                            if self._shard_dir is not None
                            else None
                        ),
                        profile=self._profile_mode,
                    )
                    recorder.event(
                        "runtime",
                        "dispatch",
                        span_id=span_id,
                        scope=f"chunk:{state.chunk_id}",
                        chunk=state.chunk_id,
                        attempt=state.attempt,
                        cells=len(state.cells),
                        worker_id=trace.worker_id,
                    )
                try:
                    future = submit(pool, state, fault, trace)
                except Exception as error:
                    # A crashed worker can break the pool while this
                    # wave is still being submitted; a synchronous
                    # submit failure is the same environmental fault as
                    # a dead future and takes the same retry path.
                    if not _is_recoverable_failure(error):
                        raise
                    state.faulted = True
                    failed.append(state)
                    if recorder is not None:
                        self._merge_shard(recorder, trace, state.attempt,
                                          collect_shard_fallback(
                                              trace.shard_path))
                        recorder.event(
                            "runtime",
                            "fault",
                            site="scheduler",
                            kind=_classify_failure(error),
                            scope=f"chunk:{state.chunk_id}",
                            chunk=state.chunk_id,
                            attempt=state.attempt,
                            cells=len(state.cells),
                            error=repr(error),
                        )
                    continue
                submitted.append((state, future, trace))
            for state, future, trace in submitted:
                wait_start = (
                    time.perf_counter_ns() if recorder is not None else 0
                )
                try:
                    reply = future.result(timeout=self._deadline)
                except SchedulerProtocolError:
                    # A malformed reply is a correctness bug, not an
                    # environmental fault: surface it, never retry it.
                    raise
                except (Exception, FuturesCancelledError) as error:
                    # Timeout, dead worker, cancelled wave, IPC failure.
                    if not _is_recoverable_failure(error):
                        raise
                    state.faulted = True
                    failed.append(state)
                    if recorder is not None:
                        # The reply died with the worker; recover the
                        # partial telemetry from its eager shard file,
                        # tagged with this attempt number — a later
                        # retry merges its own records separately.
                        self._merge_shard(recorder, trace, state.attempt,
                                          collect_shard_fallback(
                                              trace.shard_path))
                        recorder.event(
                            "runtime",
                            "fault",
                            site="scheduler",
                            kind=_classify_failure(error),
                            scope=f"chunk:{state.chunk_id}",
                            chunk=state.chunk_id,
                            attempt=state.attempt,
                            cells=len(state.cells),
                            error=repr(error),
                        )
                    continue
                if recorder is not None:
                    elapsed = time.perf_counter_ns() - wait_start
                    recorder.record_span(
                        "runtime", "chunk_wait", elapsed,
                        chunk=state.chunk_id, attempt=state.attempt,
                    )
                    recorder.observe_quantile(
                        "runtime", "chunk_wait_ns", elapsed
                    )
                records = getattr(reply, "records", None)
                if records is not None and recorder is not None:
                    # Merge before validation: a rejected (garbled)
                    # reply still contributed worker telemetry, and the
                    # trace should show what the worker did.
                    self._merge_shard(
                        recorder, trace, state.attempt, records
                    )
                if getattr(reply, "warm", False):
                    self.ipc_stats["worker_warm_hits"] = (
                        int(self.ipc_stats.get("worker_warm_hits", 0)) + 1
                    )
                    if recorder is not None:
                        recorder.count("runtime", "worker_warm_hits")
                for index, choices in harvest(state, reply):
                    results[index] = choices
                if state.faulted and recorder is not None:
                    recorder.event(
                        "runtime",
                        "retry",
                        site="scheduler",
                        scope=f"chunk:{state.chunk_id}",
                        chunk=state.chunk_id,
                        attempt=state.attempt,
                        outcome="recovered",
                    )
            if failed:
                # The pool may hold hung or dead workers either way;
                # abandon it wholesale and rebuild for the retry wave.
                self._abandon_pool()
            pending = []
            for state in failed:
                if state.attempt >= self._max_retries:
                    if recorder is not None:
                        recorder.event(
                            "runtime",
                            "fallback",
                            site="scheduler",
                            scope=f"chunk:{state.chunk_id}",
                            chunk=state.chunk_id,
                            cells=len(state.cells),
                            reason=(
                                f"retries exhausted after "
                                f"{state.attempt + 1} attempts"
                            ),
                        )
                    continue
                delay = min(
                    self._backoff_cap,
                    self._backoff_base * (2.0 ** state.attempt),
                )
                state.attempt += 1
                if recorder is not None:
                    recorder.event(
                        "runtime",
                        "retry",
                        site="scheduler",
                        scope=f"chunk:{state.chunk_id}",
                        chunk=state.chunk_id,
                        attempt=state.attempt,
                        backoff_seconds=delay,
                        outcome="resubmitted",
                    )
                if delay > 0:
                    self._sleep(delay)
                pending.append(state)
        if recorder is not None:
            recorder.gauge("runtime", "pending_chunks", 0)
        return results

    @staticmethod
    def _merge_shard(
        recorder,
        trace: Optional[TraceContext],
        attempt: int,
        records: Sequence[Dict[str, object]],
    ) -> None:
        """Re-emit one worker attempt's shard records into the trace.

        ``attempt`` is passed explicitly (rather than read from the
        context) because the records of a failed attempt are merged
        while the chunk state may already be marked for a retried
        dispatch — the tag must name the attempt that *produced* the
        records.
        """
        if trace is None:
            return
        for record in records:
            recorder.emit_shard_record(
                record,
                worker_id=trace.worker_id,
                parent_span=trace.parent_span,
                attempt=attempt,
            )

    def _validate_replies(
        self,
        state: "_ChunkState",
        replies: Sequence[Sequence[object]],
        color_class: ColorClass,
    ) -> None:
        """Reject short or garbled worker replies before any commit."""
        if len(replies) != len(state.cells):
            raise SchedulerProtocolError(
                f"chunk {state.chunk_id}: worker returned {len(replies)} "
                f"cell results for {len(state.cells)} cells"
            )
        for index, choices in zip(state.cells, replies):
            cell = color_class.cells[index]
            if len(choices) != len(cell.ops):
                raise SchedulerProtocolError(
                    f"cell {cell.owner!r} (chunk {state.chunk_id}): "
                    f"worker reply has {len(choices)} choices for "
                    f"{len(cell.ops)} ops"
                )

    @staticmethod
    def _chunk(indices: Sequence[int], workers: int) -> List[List[int]]:
        """Split cell indices into at most ``workers`` contiguous chunks."""
        count = min(max(workers, 1), len(indices))
        size, remainder = divmod(len(indices), count)
        chunks: List[List[int]] = []
        start = 0
        for position in range(count):
            end = start + size + (1 if position < remainder else 0)
            chunks.append(list(indices[start:end]))
            start = end
        return [chunk for chunk in chunks if chunk]

    @staticmethod
    def _cell_payload(
        fixer,
        kind: str,
        cell: FixCell,
        instance: LLLInstance,
        kernel_cache: Optional[Dict[tuple, object]] = None,
    ) -> Optional[CellPayload]:
        """Serialise a cell, or ``None`` when it must run in-parent.

        ``kernel_cache`` interns kernels by fingerprint across the cells
        of one class, so pickle serialises each distinct kernel once per
        chunk rather than once per referencing cell.
        """
        event_payloads: Dict[Hashable, EventPayload] = {}
        ops: List[OpPayload] = []
        ledger: Dict[frozenset, Tuple[Tuple[Hashable, float], ...]] = {}
        for op in cell.ops:
            variable = instance.variable(op.variable)
            events = instance.events_of_variable(op.variable)
            for event in events:
                if event.name in event_payloads:
                    continue
                kernel = event.compiled_kernel()
                if kernel is None:
                    return None
                if kernel_cache is not None:
                    kernel = kernel_cache.setdefault(
                        kernel.fingerprint(), kernel
                    )
                pins = event.scope_pins(fixer.assignment)
                if pins is None:
                    return None
                event_payloads[event.name] = EventPayload(
                    name=event.name,
                    kernel=kernel,
                    scope_names=event.scope_names,
                    pins=tuple(pins),
                )
            names = tuple(event.name for event in events)
            ops.append(OpPayload(variable=variable, event_names=names))
            if kind == "naive":
                key = frozenset(names)
                if key not in ledger:
                    weights = fixer.local_weights(events)
                    ledger[key] = tuple(zip(names, weights))
            elif len(events) == 2:
                key = frozenset(names)
                if key not in ledger:
                    weights = fixer.local_weights(events)
                    ledger[key] = tuple(zip(names, weights))
            elif len(events) == 3:
                for u, v in (
                    (names[0], names[1]),
                    (names[0], names[2]),
                    (names[1], names[2]),
                ):
                    key = frozenset((u, v))
                    if key not in ledger:
                        ledger[key] = (
                            (u, fixer.pstar.value(u, v, u)),
                            (v, fixer.pstar.value(u, v, v)),
                        )
        return CellPayload(
            owner=cell.owner,
            kind=kind,
            ops=tuple(ops),
            events=tuple(event_payloads.values()),
            ledger=tuple(ledger.items()),
        )


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Factory used by the CLI and the benchmarks.

    Raises
    ------
    ReproError
        If ``name`` is not one of :data:`SCHEDULER_NAMES`.
    """
    if name == "serial":
        return SerialScheduler(**kwargs)
    if name == "batch":
        return BatchScheduler(**kwargs)
    if name == "process":
        return ProcessScheduler(**kwargs)
    raise ReproError(
        f"unknown scheduler {name!r}; expected one of {SCHEDULER_NAMES}"
    )
