"""Zero-copy shared-memory IPC for the process execution backend.

The pickle dispatch path re-serialises every cell of every class on
every chunk: kernels, variables, scope tuples and ledger slices cross
the process boundary again and again even though almost all of it is
static for the whole solve.  This module replaces that with one
per-solve **SharedInstanceSegment** (`multiprocessing.shared_memory`):

* the *static* structure — cells, ops, variables, compiled kernels,
  scope names, ledger slot ids — is pickled **once** per solve into the
  segment's blob region and unpickled **once** per worker process;
* the *dynamic* state — the pins matrix and the flat float64 phi
  ledger of the vector plane — lives in preallocated numpy regions the
  parent refreshes in place before each class;
* workers thereafter receive only a compact fixed-width
  :class:`ChunkDescriptor` (generation, class id, roster range,
  attempt) and write their decisions as fixed-width float64 records
  into a preallocated shared result region, so the parent's merge is an
  index copy, not an unpickle.

``REPRO_IPC`` selects the plane (``shm`` by default); ``pickle`` keeps
the original per-chunk serialisation path as the differential oracle.
Bit-identity holds because every number crossing the segment is an
exact float64/int64 round-trip and the parent reconstructs the same
frozen choice dataclasses the pickle path would have returned.

Segment layout (all regions 8-byte aligned, capacities in the header)::

    [ header   ] 16 x int64: magic, generation, blob length, capacities
    [ blob     ] pickled ShmStaticPlan (static structure, one per solve)
    [ pins     ] int64  [num_events, pin_width]   refreshed per class
    [ phi      ] float64[ledger_size]             refreshed per class
    [ roster   ] int64  [max_cells]               dispatchable cell ids
    [ results  ] float64[max_ops, record_width]   worker decisions

The parent owns the segment: it creates, broadcasts and ultimately
``close()``/``unlink()``\\ s it (a module-level registry plus ``atexit``
guarantee no leaked ``/dev/shm`` entries even on abandoned schedulers).
Workers only ever attach and read/write in place; a crashed or hung
worker is terminated by the scheduler's fault machinery and its mapping
dies with the process, so retries simply re-attach.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import weakref
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.errors import (
    ConfigurationError,
    ObsError,
    ReproError,
    SchedulerProtocolError,
)
from repro.obs.recorder import active as _obs_active
from repro.probability.engine import _numpy

#: Error types expected from best-effort teardown of pools, worker
#: processes and shared-memory segments: OS/IPC failures from closing
#: half-dead resources.  Cleanup sites suppress exactly these (reported
#: via :func:`report_cleanup_error`); anything else — including
#: ``KeyboardInterrupt``/``SystemExit`` — propagates.
CLEANUP_ERRORS = (OSError, RuntimeError, ValueError, BufferError, EOFError)


def report_cleanup_error(site: str, error: BaseException) -> None:
    """Surface a suppressed cleanup failure as an obs event.

    Best-effort teardown must not mask failures invisibly: every
    suppressed exception is emitted as a ``runtime/cleanup_error``
    event naming the site, when a recorder is live.
    """
    recorder = _obs_active()
    if recorder is None:
        return
    try:
        recorder.event(
            "runtime", "cleanup_error", site=site, error=repr(error)
        )
    except ObsError:
        pass  # recorder closed mid-teardown (atexit ordering)

# ----------------------------------------------------------------------
# Mode selection (the REPRO_IPC differential-oracle switch)
# ----------------------------------------------------------------------

#: Environment variable selecting the process-backend IPC plane.
IPC_ENV = "REPRO_IPC"

#: Valid IPC planes: zero-copy shared memory, or the original pickle
#: path kept as the differential oracle.
IPC_MODES = ("shm", "pickle")

# Lazily validated, like REPRO_ENGINE/REPRO_DECIDE: raising at import
# time would crash ``import repro`` before CLI error handling exists.
_MODE: Optional[str] = None


def _mode_from_env() -> str:
    mode = os.environ.get(IPC_ENV, "shm").strip().lower()
    if mode not in IPC_MODES:
        raise ConfigurationError(
            f"{IPC_ENV}={mode!r} is not a valid IPC mode; "
            f"expected one of {IPC_MODES}"
        )
    return mode


def ipc_mode() -> str:
    """The active process-backend IPC plane: ``"shm"`` or ``"pickle"``."""
    global _MODE
    if _MODE is None:
        _MODE = _mode_from_env()
    return _MODE


def shm_enabled() -> bool:
    """Whether the zero-copy shared-memory plane is selected."""
    return ipc_mode() == "shm"


def set_ipc_mode(mode: str) -> str:
    """Select the IPC plane process-wide; returns the previous mode."""
    global _MODE
    if mode not in IPC_MODES:
        raise ConfigurationError(
            f"invalid IPC mode {mode!r}; expected one of {IPC_MODES}"
        )
    previous = ipc_mode()
    _MODE = mode
    return previous


class using_ipc:
    """Context manager: run the body under a specific IPC mode.

    The differential-oracle pattern of the shm/pickle parity tests::

        with using_ipc("pickle"):
            reference = run(ProcessScheduler())
        with using_ipc("shm"):
            candidate = run(ProcessScheduler())
    """

    def __init__(self, mode: str) -> None:
        self._mode = mode
        self._previous: Optional[str] = None

    def __enter__(self) -> str:
        self._previous = set_ipc_mode(self._mode)
        return self._mode

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._previous is not None:
            set_ipc_mode(self._previous)


# ----------------------------------------------------------------------
# Segment layout
# ----------------------------------------------------------------------

#: ``b"rpSHM1"`` as an int64 — the first header word of every segment.
SEGMENT_MAGIC = 0x72_70_53_48_4D_31

#: Number of int64 header slots (fields below, rest reserved).
HEADER_SLOTS = 16

H_MAGIC = 0
H_GENERATION = 1
H_BLOB_LENGTH = 2
H_NUM_EVENTS = 3
H_PIN_WIDTH = 4
H_LEDGER_SIZE = 5
H_MAX_CELLS = 6
H_MAX_OPS = 7
H_RECORD_WIDTH = 8
H_BLOB_CAPACITY = 9

#: Result-record tags (row[0]) naming the choice dataclass encoded.
TAG_RANK1 = 1
TAG_RANK2 = 2
TAG_RANK3 = 3
TAG_RANKR = 4

#: A rank-3 record needs 16 floats (tag, position, good count, 3
#: increases, 3 triple entries, 6 decomposition witnesses, margin).
MIN_RECORD_WIDTH = 16


def _align8(size: int) -> int:
    return (int(size) + 7) & ~7


def record_width_for(max_rank: int) -> int:
    """Floats per result record: rank-3 layout or a rank-r slab."""
    return max(MIN_RECORD_WIDTH, 4 + 2 * int(max_rank))


@dataclass(frozen=True)
class SegmentLayout:
    """Region capacities and byte offsets of one shared segment.

    Capacities are fixed for the segment's lifetime (they define the
    offsets); a re-broadcast over the same segment may only shrink-fit.
    Both sides derive the same layout: the parent from the lowered
    solve, workers from the header capacities.
    """

    num_events: int
    pin_width: int
    ledger_size: int
    max_cells: int
    max_ops: int
    record_width: int
    blob_capacity: int

    @property
    def blob_offset(self) -> int:
        return HEADER_SLOTS * 8

    @property
    def pins_offset(self) -> int:
        return self.blob_offset + _align8(self.blob_capacity)

    @property
    def phi_offset(self) -> int:
        return self.pins_offset + self.num_events * self.pin_width * 8

    @property
    def roster_offset(self) -> int:
        return self.phi_offset + self.ledger_size * 8

    @property
    def results_offset(self) -> int:
        return self.roster_offset + self.max_cells * 8

    @property
    def total_bytes(self) -> int:
        return self.results_offset + self.max_ops * self.record_width * 8


class SegmentViews:
    """Numpy views over one mapped segment, shared by both sides."""

    __slots__ = ("header", "blob", "pins", "phi", "roster", "results")

    def __init__(self, buf, layout: SegmentLayout) -> None:
        np = _numpy()
        self.header = np.frombuffer(
            buf, dtype=np.int64, count=HEADER_SLOTS, offset=0
        )
        self.blob = np.frombuffer(
            buf, dtype=np.uint8, count=layout.blob_capacity,
            offset=layout.blob_offset,
        )
        self.pins = np.frombuffer(
            buf, dtype=np.int64,
            count=layout.num_events * layout.pin_width,
            offset=layout.pins_offset,
        ).reshape(layout.num_events, layout.pin_width)
        self.phi = np.frombuffer(
            buf, dtype=np.float64, count=layout.ledger_size,
            offset=layout.phi_offset,
        )
        self.roster = np.frombuffer(
            buf, dtype=np.int64, count=layout.max_cells,
            offset=layout.roster_offset,
        )
        self.results = np.frombuffer(
            buf, dtype=np.float64,
            count=layout.max_ops * layout.record_width,
            offset=layout.results_offset,
        ).reshape(layout.max_ops, layout.record_width)

    def release(self) -> None:
        """Drop every array so the underlying buffer can be closed."""
        for name in self.__slots__:
            setattr(self, name, None)


# ----------------------------------------------------------------------
# Static structure (the once-per-solve pickled blob)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ShmEvent:
    """One event of a cell: kernel + scope, pins read from the segment."""

    name: Hashable
    kernel: object
    scope_names: Tuple[Hashable, ...]
    #: Row of the shared pins matrix holding this event's live pins.
    event_id: int


@dataclass(frozen=True)
class ShmOp:
    """One fixing: the variable object plus its event names in order."""

    variable: object
    event_names: Tuple[Hashable, ...]


@dataclass(frozen=True)
class ShmCell:
    """A dispatch-capable cell's static structure.

    ``ledger`` lists the cell's bookkeeping reads in first-touch order
    as ``(names, slots)`` pairs — the worker zips each names tuple with
    the float64 phi values at ``slots`` to rebuild the exact ledger
    slice the pickle path would have shipped.  ``op_offset`` is the
    cell's first row in the shared result region (class-local).
    """

    owner: Hashable
    ops: Tuple[ShmOp, ...]
    events: Tuple[ShmEvent, ...]
    ledger: Tuple[Tuple[Tuple[Hashable, ...], Tuple[int, ...]], ...]
    op_offset: int


@dataclass(frozen=True)
class ShmStaticPlan:
    """The whole solve's static structure, pickled once per broadcast.

    ``classes[i][cell_id]`` is ``None`` for cells that can never be
    dispatched (an event without a compiled kernel) — they execute in
    the parent and never appear in a roster.
    """

    kind: str
    classes: Tuple[Tuple[Optional[ShmCell], ...], ...]


@dataclass(frozen=True)
class ChunkDescriptor:
    """The fixed-width wire format of one dispatched chunk.

    Five small ints replace the per-chunk payload pickle: workers
    resolve everything else from their attached segment (roster range
    ``[start, stop)`` into the current class's roster region).
    """

    generation: int
    class_index: int
    start: int
    stop: int
    attempt: int


# ----------------------------------------------------------------------
# Result-record codec
# ----------------------------------------------------------------------

def encode_choice(row, choice, position: int) -> None:
    """Write one decision into a float64 result row (exact round-trip)."""
    from repro.core.selection import (
        Rank1Choice,
        Rank2Choice,
        Rank3Choice,
        RankRChoice,
    )

    row[:] = 0.0
    row[1] = position
    row[2] = choice.num_good_values
    if isinstance(choice, Rank1Choice):
        row[0] = TAG_RANK1
        row[3] = choice.increase
        row[4] = choice.slack
    elif isinstance(choice, Rank2Choice):
        row[0] = TAG_RANK2
        row[3:5] = choice.increases
        row[5:7] = choice.new_weights
        row[7] = choice.slack
    elif isinstance(choice, Rank3Choice):
        row[0] = TAG_RANK3
        row[3:6] = choice.increases
        row[6:9] = choice.triple
        decomposition = choice.decomposition
        row[9] = decomposition.a1
        row[10] = decomposition.a2
        row[11] = decomposition.b1
        row[12] = decomposition.b3
        row[13] = decomposition.c2
        row[14] = decomposition.c3
        row[15] = choice.margin
    elif isinstance(choice, RankRChoice):
        row[0] = TAG_RANKR
        rank = len(choice.increases)
        row[3:3 + rank] = choice.increases
        row[3 + rank:3 + 2 * rank] = choice.new_weights
        row[3 + 2 * rank] = choice.slack
    else:
        raise SchedulerProtocolError(
            f"cannot encode choice of type {type(choice).__name__} into "
            f"a shared result record"
        )


def decode_choice(row, values: Tuple[Hashable, ...], rank: int):
    """Rebuild the frozen choice dataclass from one result row."""
    from repro.core.selection import (
        Rank1Choice,
        Rank2Choice,
        Rank3Choice,
        RankRChoice,
    )
    from repro.geometry.representable import TripleDecomposition

    tag = int(row[0])
    position = int(row[1])
    if not 0 <= position < len(values):
        raise SchedulerProtocolError(
            f"shared result record names support position {position} of "
            f"{len(values)} values"
        )
    value = values[position]
    good = int(row[2])
    if tag == TAG_RANK1:
        return Rank1Choice(
            value=value,
            increase=float(row[3]),
            slack=float(row[4]),
            num_good_values=good,
        )
    if tag == TAG_RANK2:
        return Rank2Choice(
            value=value,
            increases=(float(row[3]), float(row[4])),
            new_weights=(float(row[5]), float(row[6])),
            slack=float(row[7]),
            num_good_values=good,
        )
    if tag == TAG_RANK3:
        return Rank3Choice(
            value=value,
            increases=(float(row[3]), float(row[4]), float(row[5])),
            triple=(float(row[6]), float(row[7]), float(row[8])),
            decomposition=TripleDecomposition(
                a1=float(row[9]),
                a2=float(row[10]),
                b1=float(row[11]),
                b3=float(row[12]),
                c2=float(row[13]),
                c3=float(row[14]),
            ),
            margin=float(row[15]),
            num_good_values=good,
        )
    if tag == TAG_RANKR:
        return RankRChoice(
            value=value,
            increases=tuple(float(x) for x in row[3:3 + rank]),
            new_weights=tuple(
                float(x) for x in row[3 + rank:3 + 2 * rank]
            ),
            slack=float(row[3 + 2 * rank]),
            num_good_values=good,
        )
    raise SchedulerProtocolError(
        f"shared result record carries unknown tag {tag} (unwritten "
        f"row?)"
    )


# ----------------------------------------------------------------------
# Lowering (parent side, once per (plan, instance, kind))
# ----------------------------------------------------------------------

@dataclass
class _ParentCell:
    """Parent-side refresh/decode metadata for one cell.

    ``steps`` replays the exact walk ``_cell_payload`` performs — per
    op, first the scope pins of the op's not-yet-seen events, then the
    ledger fills — so the fixer-side side effects (``local_weights``
    installing defaults) land in the same order as the pickle path.
    ``static_ok`` is ``False`` for cells that can never dispatch; their
    truncated steps are still replayed for side-effect parity.
    """

    #: Per op: ``(new_events, fills)`` where ``new_events`` entries are
    #: ``(event, event_id, scope_len)`` and ``fills`` entries are
    #: ``("w", events, names, slots)`` or ``("p", u, v, slot_u, slot_v)``.
    steps: Tuple[tuple, ...]
    #: Per op: ``(values, rank)`` for result decoding.
    op_meta: Tuple[Tuple[tuple, int], ...]
    op_offset: int
    static_ok: bool


@dataclass
class LoweredSolve:
    """Everything one broadcast needs: blob, parent meta, capacities."""

    kind: str
    blob: bytes
    parent_classes: List[List[_ParentCell]]
    num_events: int
    pin_width: int
    ledger_size: int
    max_cells: int
    max_ops: int
    record_width: int


def lower_solve(kind: str, plan, instance) -> LoweredSolve:
    """Lower a fix plan + instance into the shared-segment structure.

    Mirrors :meth:`ProcessScheduler._cell_payload` exactly — the same
    kernel/pins gating, the same ledger first-touch order — but splits
    the result into the static pickled-once blob and the per-class
    refresh program the parent replays against the live fixer.
    """
    event_ids: Dict[Hashable, int] = {}
    slot_registry: Dict[frozenset, Dict[Hashable, int]] = {}
    next_slot = 0
    pin_width = 1
    max_rank = 1
    max_cells = 1
    max_ops = 1
    static_classes: List[Tuple[Optional[ShmCell], ...]] = []
    parent_classes: List[List[_ParentCell]] = []
    for color_class in plan.classes:
        static_cells: List[Optional[ShmCell]] = []
        parent_cells: List[_ParentCell] = []
        op_offset = 0
        for cell in color_class.cells:
            seen: set = set()
            cell_keys: set = set()
            events_static: List[ShmEvent] = []
            ops_static: List[ShmOp] = []
            ledger_static: List[tuple] = []
            steps: List[tuple] = []
            op_meta: List[tuple] = []
            ok = True
            for op in cell.ops:
                variable = instance.variable(op.variable)
                events = instance.events_of_variable(op.variable)
                new_events: List[tuple] = []
                for event in events:
                    if event.name in seen:
                        continue
                    seen.add(event.name)
                    if event.compiled_kernel() is None:
                        ok = False
                        break
                    eid = event_ids.get(event.name)
                    if eid is None:
                        eid = len(event_ids)
                        event_ids[event.name] = eid
                    scope = tuple(event.scope_names)
                    events_static.append(
                        ShmEvent(event.name, event.compiled_kernel(),
                                 scope, eid)
                    )
                    new_events.append((event, eid, len(scope)))
                    if len(scope) > pin_width:
                        pin_width = len(scope)
                if not ok:
                    # Same truncation point as _cell_payload returning
                    # None: earlier ops' steps stay (side effects), the
                    # rest of the cell is never walked.
                    if new_events:
                        steps.append((tuple(new_events), ()))
                    break
                names = tuple(event.name for event in events)
                rank = len(names)
                if rank > max_rank:
                    max_rank = rank
                values = tuple(
                    value for value, _prob in variable.support_items()
                )
                ops_static.append(ShmOp(variable, names))
                op_meta.append((values, rank))
                fills: List[tuple] = []
                if kind == "naive" or len(events) == 2:
                    key = frozenset(names)
                    if key not in cell_keys:
                        cell_keys.add(key)
                        by_name = slot_registry.get(key)
                        if by_name is None:
                            by_name = {}
                            for name in names:
                                by_name[name] = next_slot
                                next_slot += 1
                            slot_registry[key] = by_name
                        slots = tuple(by_name[name] for name in names)
                        ledger_static.append((names, slots))
                        fills.append(("w", tuple(events), names, slots))
                elif len(events) == 3:
                    for u, v in (
                        (names[0], names[1]),
                        (names[0], names[2]),
                        (names[1], names[2]),
                    ):
                        key = frozenset((u, v))
                        if key in cell_keys:
                            continue
                        cell_keys.add(key)
                        by_name = slot_registry.get(key)
                        if by_name is None:
                            by_name = {u: next_slot, v: next_slot + 1}
                            next_slot += 2
                            slot_registry[key] = by_name
                        slots = (by_name[u], by_name[v])
                        ledger_static.append(((u, v), slots))
                        fills.append(("p", u, v, slots[0], slots[1]))
                steps.append((tuple(new_events), tuple(fills)))
            parent_cells.append(
                _ParentCell(
                    steps=tuple(steps),
                    op_meta=tuple(op_meta) if ok else (),
                    op_offset=op_offset,
                    static_ok=ok,
                )
            )
            static_cells.append(
                ShmCell(
                    owner=cell.owner,
                    ops=tuple(ops_static),
                    events=tuple(events_static),
                    ledger=tuple(ledger_static),
                    op_offset=op_offset,
                )
                if ok
                else None
            )
            op_offset += len(cell.ops)
        if len(color_class.cells) > max_cells:
            max_cells = len(color_class.cells)
        if op_offset > max_ops:
            max_ops = op_offset
        static_classes.append(tuple(static_cells))
        parent_classes.append(parent_cells)
    blob = pickle.dumps(
        ShmStaticPlan(kind=kind, classes=tuple(static_classes)),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    return LoweredSolve(
        kind=kind,
        blob=blob,
        parent_classes=parent_classes,
        num_events=max(len(event_ids), 1),
        pin_width=pin_width,
        ledger_size=max(next_slot, 1),
        max_cells=max_cells,
        max_ops=max_ops,
        record_width=record_width_for(max_rank),
    )


# ----------------------------------------------------------------------
# Parent-owned segment + lifecycle registry
# ----------------------------------------------------------------------

_SEGMENT_PREFIX = "repro_shm_"
_SEGMENT_COUNTER = itertools.count()

#: Every live (created, not yet unlinked) segment of this process.
#: ``atexit`` sweeps it so abandoned schedulers can never leak
#: ``/dev/shm`` entries past interpreter exit.
_LIVE_SEGMENTS: Dict[str, "SharedInstanceSegment"] = {}
_ATEXIT_ARMED = False


def live_segment_names() -> Tuple[str, ...]:
    """Names of this process's live shared segments (for leak tests)."""
    return tuple(sorted(_LIVE_SEGMENTS))


def _cleanup_live_segments() -> None:
    for segment in list(_LIVE_SEGMENTS.values()):
        try:
            segment.close()
        except CLEANUP_ERRORS as error:
            report_cleanup_error("atexit_segment_close", error)


def _arm_atexit() -> None:
    global _ATEXIT_ARMED
    if not _ATEXIT_ARMED:
        atexit.register(_cleanup_live_segments)
        _ATEXIT_ARMED = True


class SharedInstanceSegment:
    """The parent's owned mapping: create, broadcast, refresh, unlink."""

    def __init__(self, layout: SegmentLayout) -> None:
        _arm_atexit()
        self.layout = layout
        self.name = f"{_SEGMENT_PREFIX}{os.getpid()}_{next(_SEGMENT_COUNTER)}"
        self._shm = shared_memory.SharedMemory(
            name=self.name, create=True, size=layout.total_bytes
        )
        self.views = SegmentViews(self._shm.buf, layout)
        header = self.views.header
        header[:] = 0
        header[H_MAGIC] = SEGMENT_MAGIC
        header[H_NUM_EVENTS] = layout.num_events
        header[H_PIN_WIDTH] = layout.pin_width
        header[H_LEDGER_SIZE] = layout.ledger_size
        header[H_MAX_CELLS] = layout.max_cells
        header[H_MAX_OPS] = layout.max_ops
        header[H_RECORD_WIDTH] = layout.record_width
        header[H_BLOB_CAPACITY] = layout.blob_capacity
        self.closed = False
        _LIVE_SEGMENTS[self.name] = self

    def publish(self, blob: bytes, generation: int) -> None:
        """Write one solve's static blob and bump the generation."""
        np = _numpy()
        if len(blob) > self.layout.blob_capacity:
            raise ReproError(
                f"static blob of {len(blob)} bytes exceeds the segment's "
                f"{self.layout.blob_capacity}-byte blob region"
            )
        self.views.blob[:len(blob)] = np.frombuffer(blob, dtype=np.uint8)
        self.views.header[H_BLOB_LENGTH] = len(blob)
        self.views.header[H_GENERATION] = generation

    def close(self) -> None:
        """Release the mapping and unlink the ``/dev/shm`` entry."""
        if self.closed:
            return
        self.closed = True
        _LIVE_SEGMENTS.pop(self.name, None)
        if self.views is not None:
            self.views.release()
            self.views = None
        try:
            self._shm.close()
        except BufferError:
            # A stray exported view keeps the local mapping alive; the
            # unlink below still removes the named entry, so nothing
            # leaks past process exit.
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass


class AttachedSegment:
    """A worker's read/write view of an existing segment (never unlinks)."""

    def __init__(self, name: str) -> None:
        np = _numpy()
        self.name = name
        self._shm = shared_memory.SharedMemory(name=name)
        header = np.frombuffer(
            self._shm.buf, dtype=np.int64, count=HEADER_SLOTS
        )
        if int(header[H_MAGIC]) != SEGMENT_MAGIC:
            raise SchedulerProtocolError(
                f"shared segment {name!r} carries no repro header"
            )
        self.layout = SegmentLayout(
            num_events=int(header[H_NUM_EVENTS]),
            pin_width=int(header[H_PIN_WIDTH]),
            ledger_size=int(header[H_LEDGER_SIZE]),
            max_cells=int(header[H_MAX_CELLS]),
            max_ops=int(header[H_MAX_OPS]),
            record_width=int(header[H_RECORD_WIDTH]),
            blob_capacity=int(header[H_BLOB_CAPACITY]),
        )
        self.views = SegmentViews(self._shm.buf, self.layout)

    def read_blob(self) -> bytes:
        length = int(self.views.header[H_BLOB_LENGTH])
        return bytes(self.views.blob[:length])

    def close(self) -> None:
        if self.views is not None:
            self.views.release()
            self.views = None
        try:
            self._shm.close()
        except CLEANUP_ERRORS as error:
            report_cleanup_error("attached_segment_close", error)


# ----------------------------------------------------------------------
# Parent-side session: one scheduler's warm segment across solves
# ----------------------------------------------------------------------

class ShmSession:
    """A scheduler's shared-memory state, persistent across executes.

    ``ensure`` is the warm path: the same ``(plan, instance, kind)``
    triple reuses the published segment verbatim (no re-lowering, no
    broadcast); a different solve re-lowers, rewrites the blob in place
    when it fits (generation bump — warm workers re-read the blob but
    the pool survives), and only reallocates the segment when the new
    capacities outgrow the old ones.
    """

    def __init__(self) -> None:
        self.segment: Optional[SharedInstanceSegment] = None
        self.lowered: Optional[LoweredSolve] = None
        self.generation = 0
        self._kind: Optional[str] = None
        self._plan_ref = None
        self._instance_ref = None
        self._class_index: Dict[int, int] = {}

    def _is_current(self, kind: str, plan, instance) -> bool:
        if self.lowered is None or self._kind != kind:
            return False
        if self._plan_ref is None or self._instance_ref is None:
            return False
        return self._plan_ref() is plan and self._instance_ref() is instance

    def _fits(self, lowered: LoweredSolve) -> bool:
        layout = self.segment.layout
        return (
            lowered.num_events <= layout.num_events
            and lowered.pin_width <= layout.pin_width
            and lowered.ledger_size <= layout.ledger_size
            and lowered.max_cells <= layout.max_cells
            and lowered.max_ops <= layout.max_ops
            and lowered.record_width == layout.record_width
            and len(lowered.blob) <= layout.blob_capacity
        )

    def ensure(self, kind: str, plan, instance) -> str:
        """Publish the solve; returns ``reuse``/``broadcast``/``segment``.

        ``segment`` means a new segment name was allocated — the caller
        must rebuild its worker pool so initializers re-attach.

        Transactional against mid-broadcast rejection (the server's
        back-to-back-solves hazard): the session's generation and solve
        references only commit *after* ``publish`` succeeds.  A failed
        publish forgets the half-published solve, so a retried request
        re-lowers and republishes instead of taking the ``reuse`` fast
        path against a segment whose header generation never advanced
        — which warm workers would reject as a stale-generation
        protocol violation.  The ``reuse`` path double-checks the
        published header generation for the same reason.
        """
        if self._is_current(kind, plan, instance):
            segment = self.segment
            if (
                segment is not None
                and int(segment.views.header[H_GENERATION])
                == self.generation
            ):
                return "reuse"
            # Defensive: the session claims this solve is current but
            # the segment header disagrees — republish it.
        lowered = lower_solve(kind, plan, instance)
        generation = self.generation + 1
        outcome = "broadcast"
        try:
            if self.segment is not None and not self._fits(lowered):
                self.segment.close()
                self.segment = None
            if self.segment is None:
                self.segment = SharedInstanceSegment(
                    SegmentLayout(
                        num_events=lowered.num_events,
                        pin_width=lowered.pin_width,
                        ledger_size=lowered.ledger_size,
                        max_cells=lowered.max_cells,
                        max_ops=lowered.max_ops,
                        record_width=lowered.record_width,
                        blob_capacity=_align8(len(lowered.blob)),
                    )
                )
                outcome = "segment"
            self.segment.publish(lowered.blob, generation)
        except BaseException:
            self._forget()
            raise
        self.generation = generation
        self.lowered = lowered
        self._kind = kind
        try:
            self._plan_ref = weakref.ref(plan)
            self._instance_ref = weakref.ref(instance)
        except TypeError:
            self._plan_ref = lambda: plan
            self._instance_ref = lambda: instance
        self._class_index = {
            id(color_class): index
            for index, color_class in enumerate(plan.classes)
        }
        return outcome

    def _forget(self) -> None:
        """Drop the published-solve bookkeeping (not the segment).

        Called when a broadcast fails partway: whatever reached the
        segment is unpublished garbage, so the next ``ensure`` must
        miss ``_is_current`` and republish from scratch.
        """
        self.lowered = None
        self._kind = None
        self._plan_ref = None
        self._instance_ref = None
        self._class_index = {}

    def class_index(self, color_class) -> int:
        return self._class_index[id(color_class)]

    def refresh_class(self, fixer, class_index: int) -> Tuple[List[int], int]:
        """Write one class's live pins/phi/roster; returns (roster, bytes).

        Replays the pickle path's ``_cell_payload`` walk against the
        live fixer — same ``scope_pins`` calls, same ``local_weights``/
        ``pstar`` reads in the same order — writing into the shared
        regions instead of payload objects.  A cell whose pins are
        unavailable aborts at the same point the pickle path would and
        stays off the roster (it runs in the parent at merge time).
        """
        views = self.segment.views
        pins_view = views.pins
        phi = views.phi
        roster: List[int] = []
        written = 0
        for cell_id, pcell in enumerate(
            self.lowered.parent_classes[class_index]
        ):
            ok = pcell.static_ok
            for new_events, fills in pcell.steps:
                for event, eid, width in new_events:
                    pins = event.scope_pins(fixer.assignment)
                    if pins is None:
                        ok = False
                        break
                    pins_view[eid, :width] = pins
                    written += width * 8
                if not ok:
                    break
                for fill in fills:
                    if fill[0] == "w":
                        _tag, events, _names, slots = fill
                        weights = fixer.local_weights(events)
                        for slot, weight in zip(slots, weights):
                            phi[slot] = weight
                        written += len(slots) * 8
                    else:
                        _tag, u, v, slot_u, slot_v = fill
                        phi[slot_u] = fixer.pstar.value(u, v, u)
                        phi[slot_v] = fixer.pstar.value(u, v, v)
                        written += 16
            if ok:
                roster.append(cell_id)
        roster_view = views.roster
        for position, cell_id in enumerate(roster):
            roster_view[position] = cell_id
        written += len(roster) * 8
        return roster, written

    def decode_chunk(
        self, class_index: int, cell_ids: Sequence[int]
    ) -> List[Tuple[int, List[object]]]:
        """Rebuild the choices a worker wrote for one chunk's cells."""
        rows = self.segment.views.results
        parent_cells = self.lowered.parent_classes[class_index]
        decoded: List[Tuple[int, List[object]]] = []
        for cell_id in cell_ids:
            pcell = parent_cells[cell_id]
            choices = [
                decode_choice(
                    rows[pcell.op_offset + position], values, rank
                )
                for position, (values, rank) in enumerate(pcell.op_meta)
            ]
            decoded.append((cell_id, choices))
        return decoded

    def close(self) -> None:
        """Unlink the segment and drop the lowered solve (idempotent)."""
        if self.segment is not None:
            self.segment.close()
            self.segment = None
        self.lowered = None
        self._kind = None
        self._plan_ref = None
        self._instance_ref = None
        self._class_index = {}
