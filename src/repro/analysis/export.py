"""Exporting experiment artifacts: CSV, markdown tables, ASCII plots.

The Figure-1 surface can be written to CSV for external plotting or
rendered directly in the terminal as an ASCII height map; experiment
records can be re-emitted as markdown for EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
from typing import List, Optional, Sequence

from repro.errors import ReproError
from repro.analysis.records import ExperimentRecord, format_cell
from repro.geometry import boundary_surface, in_domain, surface_grid

#: Height-map ramp from low to high.
_ASCII_RAMP = " .:-=+*#%@"


def surface_to_csv(path: str, resolution: int = 40) -> int:
    """Write the Figure-1 surface samples as ``a,b,f`` rows.

    Returns the number of data rows written.
    """
    a_values, b_values, f_values = surface_grid(resolution)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["a", "b", "f"])
        for row in zip(a_values, b_values, f_values):
            writer.writerow([f"{value:.12g}" for value in row])
    return len(f_values)


def render_surface_ascii(width: int = 48, height: int = 24) -> str:
    """An ASCII height map of ``f(a, b)`` over its triangular domain.

    Rows sweep ``b`` from 4 (top) to 0 (bottom); columns sweep ``a`` from
    0 to 4.  Cells outside ``a + b <= 4`` are blank; inside, the ramp
    character encodes ``f / 4``.
    """
    if width < 2 or height < 2:
        raise ReproError("width and height must be at least 2")
    lines: List[str] = []
    for row in range(height):
        b = 4.0 * (height - 1 - row) / (height - 1)
        cells = []
        for column in range(width):
            a = 4.0 * column / (width - 1)
            if not in_domain(a, b, tolerance=1e-9):
                cells.append(" ")
                continue
            value = boundary_surface(a, b) / 4.0
            index = min(int(value * (len(_ASCII_RAMP) - 1) + 0.5),
                        len(_ASCII_RAMP) - 1)
            cells.append(_ASCII_RAMP[index])
        lines.append("".join(cells).rstrip())
    legend = (
        f"f(a,b) over a,b>=0, a+b<=4; ramp '{_ASCII_RAMP}' = 0..4 "
        f"(apex @ origin, floor on a+b=4)"
    )
    return "\n".join(lines + [legend])


def records_to_markdown(
    records: Sequence[ExperimentRecord],
    headers: Optional[Sequence[str]] = None,
) -> str:
    """Render experiment records as a GitHub-markdown table."""
    if not records:
        return "(no rows)"
    rows = [record.as_dict() for record in records]
    if headers is None:
        headers = list(rows[0].keys())
    lines = [
        "| " + " | ".join(str(header) for header in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append(
            "| "
            + " | ".join(format_cell(row.get(header, "")) for header in headers)
            + " |"
        )
    return "\n".join(lines)
