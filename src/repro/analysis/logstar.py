"""Iterated logarithms and ``log*``.

``log* n`` is the number of times ``log2`` must be applied to ``n`` before
the value drops to at most 1 — the complexity currency of the paper's
``O(d + log* n)`` and ``O(d^2 + log* n)`` upper bounds and of the
``Omega(log* n)`` universal lower bound.
"""

from __future__ import annotations

import math

from repro.errors import ReproError


def log_star(n: float) -> int:
    """The base-2 iterated logarithm ``log* n``.

    ``log*(n) = 0`` for ``n <= 1``, else ``1 + log*(log2 n)``.
    """
    if n < 0:
        raise ReproError("log* is undefined for negative values")
    count = 0
    value = float(n)
    while value > 1.0:
        value = math.log2(value)
        count += 1
    return count


def iterated_log(n: float, times: int) -> float:
    """``log2`` applied ``times`` times (the paper's ``log^(i)``)."""
    if times < 0:
        raise ReproError("times must be non-negative")
    value = float(n)
    for _ in range(times):
        if value <= 0.0:
            raise ReproError("iterated log left the positive domain")
        value = math.log2(value)
    return value


def power_tower(base: float, height: int) -> float:
    """``base^base^...^base`` of the given height (the paper's ``exp^(i)``)."""
    if height < 0:
        raise ReproError("height must be non-negative")
    value = 1.0
    for _ in range(height):
        value = base**value
    return value
