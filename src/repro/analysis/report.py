"""Consolidated experiment reports from the benchmark artifacts.

Every bench module writes its records to ``benchmarks/results/<ID>.json``;
this module reads a directory of such artifacts and renders one
consolidated report (plain text or markdown), so EXPERIMENTS.md can be
cross-checked against freshly regenerated numbers with one command:

    python -m repro report --results-dir benchmarks/results
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.analysis.records import format_table

#: The experiment ids in presentation order, with one-line titles.
EXPERIMENT_TITLES = {
    "F1": "Figure 1: the surface of S_rep and its certificates",
    "F2": "Figure 2: constructive decompositions",
    "T1": "Theorem 1.1: rank-2 fixer success",
    "T2": "Corollary 1.2: rounds vs n and d (rank 2)",
    "T3": "Theorem 1.3: rank-3 fixer success",
    "T4": "Corollary 1.4: rounds vs n and d (rank 3)",
    "T5": "The sharp threshold phase shift",
    "T6": "Deterministic vs Moser-Tardos",
    "A1": "Application: hypergraph sinkless orientations",
    "A2": "Application: relaxed weak splitting",
    "A3": "Application: Property B two-coloring",
    "L1": "Lemma 3.2: non-evil values at every step",
    "X1": "Ablations: orders and selection rule",
    "X2": "Criterion gap: naive rank-r vs p < 2^-d",
    "X3": "Message-level protocol fidelity",
    "X4": "Threshold sharpness (margin sweep)",
}


def load_results(results_dir: str) -> Dict[str, List[dict]]:
    """Load every ``<ID>.json`` artifact from a results directory."""
    if not os.path.isdir(results_dir):
        raise ReproError(f"no such results directory: {results_dir!r}")
    artifacts: Dict[str, List[dict]] = {}
    for entry in sorted(os.listdir(results_dir)):
        if not entry.endswith(".json"):
            continue
        experiment = entry[: -len(".json")]
        path = os.path.join(results_dir, entry)
        with open(path, "r", encoding="utf-8") as handle:
            rows = json.load(handle)
        if isinstance(rows, list):
            artifacts[experiment] = rows
    if not artifacts:
        raise ReproError(
            f"no experiment artifacts found in {results_dir!r}; run "
            f"`pytest benchmarks/ --benchmark-only` first"
        )
    return artifacts


def render_report(
    artifacts: Dict[str, List[dict]],
    experiments: Optional[Sequence[str]] = None,
) -> str:
    """Render the artifacts as one plain-text report."""
    if experiments is None:
        ordered = [e for e in EXPERIMENT_TITLES if e in artifacts]
        ordered += [e for e in sorted(artifacts) if e not in EXPERIMENT_TITLES]
    else:
        missing = [e for e in experiments if e not in artifacts]
        if missing:
            raise ReproError(f"no artifacts for experiments {missing!r}")
        ordered = list(experiments)
    sections = []
    for experiment in ordered:
        rows = artifacts[experiment]
        title = EXPERIMENT_TITLES.get(experiment, experiment)
        cleaned = [
            {k: v for k, v in row.items() if k != "experiment"}
            for row in rows
        ]
        sections.append(
            format_table(cleaned, title=f"[{experiment}] {title}")
        )
    return ("\n\n".join(sections)) + "\n"


def report_summary(artifacts: Dict[str, List[dict]]) -> Dict[str, int]:
    """Per-experiment row counts — the quick 'is everything there' view."""
    return {experiment: len(rows) for experiment, rows in artifacts.items()}
