"""Analysis and experiment-harness utilities (S13)."""

from repro.analysis.bounds import (
    deterministic_lower_bound,
    deterministic_rank2_bound,
    deterministic_rank3_bound,
    moser_tardos_distributed_bound,
    randomized_lower_bound,
    rank2_schedule_bound,
    rank3_schedule_bound,
    universal_lower_bound,
)
from repro.analysis.export import (
    records_to_markdown,
    render_surface_ascii,
    surface_to_csv,
)
from repro.analysis.landscape import (
    LandscapeEntry,
    landscape_rows,
    landscape_table,
    lower_bound_table,
)
from repro.analysis.logstar import iterated_log, log_star, power_tower
from repro.analysis.report import (
    EXPERIMENT_TITLES,
    load_results,
    render_report,
    report_summary,
)
from repro.analysis.perfgate import (
    DEFAULT_TOLERANCE,
    KEY_FIELDS,
    GateReport,
    GateRow,
    compare_results,
    compare_rows,
)
from repro.analysis.records import (
    ExperimentRecord,
    format_cell,
    format_table,
    growth_ratios,
    records_to_table,
    write_records_json,
)

__all__ = [
    "EXPERIMENT_TITLES",
    "LandscapeEntry",
    "landscape_rows",
    "landscape_table",
    "lower_bound_table",
    "DEFAULT_TOLERANCE",
    "KEY_FIELDS",
    "ExperimentRecord",
    "GateReport",
    "GateRow",
    "compare_results",
    "compare_rows",
    "load_results",
    "render_report",
    "report_summary",
    "deterministic_lower_bound",
    "deterministic_rank2_bound",
    "deterministic_rank3_bound",
    "format_cell",
    "format_table",
    "growth_ratios",
    "iterated_log",
    "log_star",
    "moser_tardos_distributed_bound",
    "power_tower",
    "randomized_lower_bound",
    "rank2_schedule_bound",
    "rank3_schedule_bound",
    "records_to_markdown",
    "records_to_table",
    "render_surface_ascii",
    "surface_to_csv",
    "universal_lower_bound",
    "write_records_json",
]
