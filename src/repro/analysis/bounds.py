"""Reference round-complexity curves from the paper's landscape.

These are the *shapes* the benchmark harness compares measurements
against: the paper's upper bounds for the deterministic fixers, the
baselines' known complexities, and the lower-bound regimes above the
threshold.  Constants are illustrative (the paper's bounds are
asymptotic); benchmarks compare growth, not absolute values.
"""

from __future__ import annotations

import math

from repro.analysis.logstar import log_star


def rank2_schedule_bound(d: int) -> int:
    """Color classes the Corollary-1.2 schedule iterates: ``2d - 1`` (+1
    for rank-1 variables)."""
    return max(2 * d - 1, 0) + 1


def rank3_schedule_bound(d: int) -> int:
    """Color classes the Corollary-1.4 schedule iterates: ``d^2 + 1``."""
    return d * d + 1


def deterministic_rank2_bound(d: int, n: int) -> float:
    """The ``O(d + log* n)`` shape of Corollary 1.2 (unit constants)."""
    return d + log_star(n)


def deterministic_rank3_bound(d: int, n: int) -> float:
    """The ``O(d^2 + log* n)`` shape of Corollary 1.4 (unit constants)."""
    return d * d + log_star(n)


def moser_tardos_distributed_bound(n: int) -> float:
    """The ``O(log^2 n)`` shape of distributed Moser-Tardos (unit constants)."""
    if n < 2:
        return 1.0
    return math.log2(n) ** 2


def randomized_lower_bound(n: int) -> float:
    """The ``Omega(log log n)`` shape at/above the threshold [BFH+16]."""
    if n < 4:
        return 1.0
    return math.log2(math.log2(n))


def deterministic_lower_bound(n: int) -> float:
    """The ``Omega(log n)`` shape at/above the threshold [CKP16]."""
    if n < 2:
        return 1.0
    return math.log2(n)


def universal_lower_bound(n: int) -> float:
    """The ``Omega(log* n)`` bound holding under every criterion [CPS17]."""
    return float(log_star(n))
