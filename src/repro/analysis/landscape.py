"""The distributed-LLL complexity landscape, as data.

The paper's introduction and related-work section survey the runtime
landscape across LLL criteria.  This module encodes that survey as
structured rows — the state of the art *as of the paper* (PODC 2019),
including the paper's own contribution — so tools and docs can render
it, and tests can sanity-check the orderings it claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class LandscapeEntry:
    """One row of the complexity landscape."""

    #: The LLL criterion (as written in the paper).
    criterion: str
    #: Round complexity (randomized unless stated otherwise).
    runtime: str
    #: Whether the algorithm is deterministic.
    deterministic: bool
    #: Citation key as used in the paper.
    reference: str
    #: Free-form note.
    note: str = ""


def landscape_table() -> List[LandscapeEntry]:
    """The upper-bound landscape the paper surveys (plus its own rows)."""
    return [
        LandscapeEntry(
            criterion="ep(d+1) < 1",
            runtime="O(log^2 n)",
            deterministic=False,
            reference="MT10",
            note="distributed Moser-Tardos",
        ),
        LandscapeEntry(
            criterion="ep(d+1) < 1",
            runtime="O(log n * log^2 d)",
            deterministic=False,
            reference="CPS17",
        ),
        LandscapeEntry(
            criterion="ep(d+1) < 1",
            runtime="O(log n * log d)",
            deterministic=False,
            reference="Gha16",
        ),
        LandscapeEntry(
            criterion="epd^2 < 1",
            runtime="O(log_{1/epd^2} n)",
            deterministic=False,
            reference="CPS17",
        ),
        LandscapeEntry(
            criterion="epd^32 < 1 (d small)",
            runtime="2^{O(sqrt(log log n))}",
            deterministic=False,
            reference="FG17",
        ),
        LandscapeEntry(
            criterion="d^8 p = O(1)",
            runtime="exp^{(i)}(O((log^{(i+1)} n)^{1/2}))",
            deterministic=False,
            reference="GHK18",
            note="state of the art under polynomial criteria",
        ),
        LandscapeEntry(
            criterion="p(ed)^lambda < 1",
            runtime="lambda n^{1/lambda} 2^{sqrt(log n)}",
            deterministic=True,
            reference="FG17",
        ),
        LandscapeEntry(
            criterion="p < 2^-d, r <= 2",
            runtime="O(d + log* n)",
            deterministic=True,
            reference="this paper (Cor. 1.2)",
            note="matches the Omega(log* n) lower bound for bounded d",
        ),
        LandscapeEntry(
            criterion="p < 2^-d, r <= 3",
            runtime="O(d^2 + log* n)",
            deterministic=True,
            reference="this paper (Cor. 1.4)",
            note="the main result; same threshold as r = 2",
        ),
    ]


def lower_bound_table() -> List[LandscapeEntry]:
    """The lower bounds that frame the threshold."""
    return [
        LandscapeEntry(
            criterion="p >= 2^-d",
            runtime="Omega(log log n)",
            deterministic=False,
            reference="BFH+16",
            note="via sinkless orientation",
        ),
        LandscapeEntry(
            criterion="p >= 2^-d",
            runtime="Omega(log n)",
            deterministic=True,
            reference="CKP16",
        ),
        LandscapeEntry(
            criterion="any function of d",
            runtime="Omega(log* n)",
            deterministic=False,
            reference="CPS17",
            note="no criterion escapes log* n",
        ),
    ]


def landscape_rows() -> List[dict]:
    """Both tables flattened to dictionaries (for table renderers)."""
    rows = []
    for entry in landscape_table():
        rows.append(
            {
                "kind": "upper bound",
                "criterion": entry.criterion,
                "runtime": entry.runtime,
                "deterministic": entry.deterministic,
                "reference": entry.reference,
                "note": entry.note,
            }
        )
    for entry in lower_bound_table():
        rows.append(
            {
                "kind": "lower bound",
                "criterion": entry.criterion,
                "runtime": entry.runtime,
                "deterministic": entry.deterministic,
                "reference": entry.reference,
                "note": entry.note,
            }
        )
    return rows
