"""Experiment records and plain-text table/series rendering.

The benchmark harness emits its results through these helpers so that
every experiment prints the same kind of artifact: a titled ASCII table
(the "rows the paper reports") plus machine-readable dictionaries for
EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence


@dataclass
class ExperimentRecord:
    """One measured configuration of one experiment."""

    #: Experiment identifier from DESIGN.md (e.g. "T2", "F1").
    experiment: str
    #: Workload parameters (n, d, k, seed, ...).
    parameters: Dict[str, Any] = field(default_factory=dict)
    #: Measured quantities (rounds, success, slack, ...).
    metrics: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """Flatten to a single JSON-friendly dictionary."""
        flat: Dict[str, Any] = {"experiment": self.experiment}
        flat.update(self.parameters)
        flat.update(self.metrics)
        return flat


def format_cell(value: Any) -> str:
    """Human-friendly rendering of one table cell."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    headers: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dictionaries as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if headers is None:
        headers = list(rows[0].keys())
    cells = [[format_cell(row.get(h, "")) for h in headers] for row in rows]
    widths = [
        max(len(str(header)), max(len(row[i]) for row in cells))
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(header).ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def records_to_table(
    records: Sequence[ExperimentRecord],
    headers: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render experiment records as an ASCII table."""
    return format_table([r.as_dict() for r in records], headers, title)


def write_records_json(records: Sequence[ExperimentRecord], path: str) -> None:
    """Persist records as a JSON list (for EXPERIMENTS.md regeneration)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump([r.as_dict() for r in records], handle, indent=2, default=str)


def growth_ratios(values: Sequence[float]) -> List[float]:
    """Consecutive ratios of a series — the benches' growth-shape check.

    Ratios near 1 mean a flat series (our deterministic algorithms as n
    grows); ratios meaningfully above 1 mean growth (the baselines).
    """
    ratios = []
    for earlier, later in zip(values, values[1:]):
        if earlier == 0:
            ratios.append(float("inf") if later > 0 else 1.0)
        else:
            ratios.append(later / earlier)
    return ratios
