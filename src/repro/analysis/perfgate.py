"""Perf-regression gates: diff fresh benchmark runs against baselines.

``repro bench compare`` turns the committed ``benchmarks/results``
artifacts into a CI gate.  A fresh (usually quick-mode) benchmark run
writes its ``<ID>.json`` record lists to a scratch directory; this
module matches each candidate row to its baseline row by the
experiment's key fields and applies one policy per metric *class*:

* **booleans** (``ok``, ``identical_to_serial``, ``audit_ok``, ...)
  must not regress: a baseline ``true`` must stay ``true``.  A
  ``false``-to-``true`` flip is an improvement and passes.
* **speedup ratios** (metric name contains ``speedup``) must stay at or
  above ``baseline * (1 - tolerance)``.
* **overhead ratios** (metric name contains ``overhead``) must stay at
  or below ``baseline * (1 + tolerance)``.
* **integer counts** (steps, kernel compiles, observed faults) are
  deterministic for a fixed workload and must match exactly.
* **absolute times** (``*_s``, ``*_seconds``, ``*_ns``) are recorded as
  informational only — absolute wall-clock is not comparable across
  machines, which is exactly why the committed ratios exist.
* **strings and nulls** are informational.

Ratios are compared against *relative* bands because quick-mode CI
workloads are small and noisy; the default tolerance is deliberately
loose (the gate exists to catch a backend becoming 2x slower, not a 3%
wobble).  Rows present on only one side are reported as ``skipped``
rather than failed — quick mode may restrict backends — but an
experiment whose rows match nowhere at all fails, so an empty or
mis-keyed candidate run cannot pass silently.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.analysis.records import format_table

#: Row-identity fields per experiment: a row matches the baseline row
#: with equal values for every listed key.  Experiments not listed here
#: fall back to matching rows by position.
KEY_FIELDS: Dict[str, Tuple[str, ...]] = {
    "E1": ("workload",),
    "E2": ("workload", "backend"),
    "E3": ("phase", "n"),
    "E4": ("configuration", "n"),
    "E5": ("mode",),
    "E6": ("phase", "mode"),
    "E7": ("phase",),
    "E8": ("workload", "backend"),
    "E9": ("workload", "phase"),
}

#: Default relative tolerance band for speedup/overhead ratios.
DEFAULT_TOLERANCE = 0.4

#: Metric-name suffixes treated as absolute times (informational).
_TIME_SUFFIXES = ("_s", "_seconds", "_ns")


@dataclass(frozen=True)
class GateRow:
    """The verdict for one metric of one matched row."""

    experiment: str
    key: str
    metric: str
    baseline: Any
    candidate: Any
    #: ``ok`` / ``fail`` / ``info`` / ``skipped``.
    status: str
    note: str = ""


@dataclass
class GateReport:
    """Every per-metric verdict of one ``bench compare`` invocation."""

    rows: List[GateRow] = field(default_factory=list)

    @property
    def failures(self) -> List[GateRow]:
        return [row for row in self.rows if row.status == "fail"]

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self, verbose: bool = False) -> str:
        """The terminal report; non-verbose hides passing info rows."""
        shown = [
            row for row in self.rows
            if verbose or row.status in ("fail", "skipped")
        ]
        checked = sum(1 for row in self.rows if row.status in ("ok", "fail"))
        lines: List[str] = []
        if shown:
            lines.append(
                format_table(
                    [
                        {
                            "experiment": row.experiment,
                            "row": row.key,
                            "metric": row.metric,
                            "baseline": row.baseline,
                            "candidate": row.candidate,
                            "status": row.status,
                            "note": row.note,
                        }
                        for row in shown
                    ],
                    title="perf gate",
                )
            )
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"perf gate: {verdict} — {checked} metrics checked, "
            f"{len(self.failures)} regression(s)"
        )
        return "\n".join(lines)


def _row_key(experiment: str, row: Mapping[str, Any], index: int) -> str:
    keys = KEY_FIELDS.get(experiment)
    if keys is None:
        return f"#{index}"
    return ",".join(str(row.get(key)) for key in keys)


def _metric_class(name: str, baseline: Any, candidate: Any) -> str:
    """The comparison policy for one metric, from name and value types."""
    if isinstance(baseline, bool) or isinstance(candidate, bool):
        return "bool"
    if baseline is None or candidate is None:
        return "info"
    if isinstance(baseline, str) or isinstance(candidate, str):
        return "info"
    lowered = name.lower()
    if lowered.endswith(_TIME_SUFFIXES) or lowered == "best_seconds":
        return "time"
    if "speedup" in lowered:
        return "speedup"
    if "overhead" in lowered:
        return "overhead"
    if isinstance(baseline, int) and isinstance(candidate, int):
        return "int"
    return "info"


def compare_rows(
    experiment: str,
    key: str,
    baseline: Mapping[str, Any],
    candidate: Mapping[str, Any],
    tolerance: float,
) -> List[GateRow]:
    """Apply the per-metric policies to one matched row pair."""
    verdicts: List[GateRow] = []
    for metric in baseline:
        if metric == "experiment" or metric in KEY_FIELDS.get(
            experiment, ()
        ):
            continue
        if metric not in candidate:
            verdicts.append(GateRow(
                experiment, key, metric, baseline[metric], None,
                "skipped", "metric absent from candidate",
            ))
            continue
        base, cand = baseline[metric], candidate[metric]
        kind = _metric_class(metric, base, cand)
        if kind == "bool":
            if bool(base) and not bool(cand):
                verdicts.append(GateRow(
                    experiment, key, metric, base, cand, "fail",
                    "boolean invariant regressed",
                ))
            else:
                verdicts.append(GateRow(
                    experiment, key, metric, base, cand, "ok",
                ))
        elif kind == "speedup":
            floor = float(base) * (1.0 - tolerance)
            if float(cand) < floor:
                verdicts.append(GateRow(
                    experiment, key, metric, base, cand, "fail",
                    f"below tolerance floor {floor:.3g}",
                ))
            else:
                verdicts.append(GateRow(
                    experiment, key, metric, base, cand, "ok",
                ))
        elif kind == "overhead":
            ceiling = float(base) * (1.0 + tolerance)
            if float(cand) > ceiling:
                verdicts.append(GateRow(
                    experiment, key, metric, base, cand, "fail",
                    f"above tolerance ceiling {ceiling:.3g}",
                ))
            else:
                verdicts.append(GateRow(
                    experiment, key, metric, base, cand, "ok",
                ))
        elif kind == "int":
            if int(base) != int(cand):
                verdicts.append(GateRow(
                    experiment, key, metric, base, cand, "fail",
                    "deterministic count changed",
                ))
            else:
                verdicts.append(GateRow(
                    experiment, key, metric, base, cand, "ok",
                ))
        else:  # time / info
            verdicts.append(GateRow(
                experiment, key, metric, base, cand, "info",
                "informational (not gated)" if kind == "info"
                else "absolute time (not gated)",
            ))
    return verdicts


def _load_records(path: str) -> List[Dict[str, Any]]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as error:
        raise ReproError(f"cannot read {path}: {error}") from None
    except json.JSONDecodeError as error:
        raise ReproError(f"{path}: not valid JSON ({error})") from None
    if not isinstance(payload, list):
        raise ReproError(
            f"{path}: expected a record list, got {type(payload).__name__}"
        )
    return payload


def compare_results(
    candidate_dir: str,
    baseline_dir: str,
    experiments: Optional[Sequence[str]] = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> GateReport:
    """Diff every shared ``<ID>.json`` artifact of two result directories.

    ``experiments`` restricts the gate to the named ids (e.g. the E1-E4
    execution-plane rows CI regenerates in quick mode); by default every
    baseline record list with a candidate counterpart is gated, and a
    named experiment *without* a candidate artifact is a failure.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ReproError(
            f"tolerance must be in [0, 1), got {tolerance}"
        )
    if not os.path.isdir(baseline_dir):
        raise ReproError(f"baseline directory {baseline_dir!r} not found")
    if not os.path.isdir(candidate_dir):
        raise ReproError(f"candidate directory {candidate_dir!r} not found")
    if experiments:
        names = list(experiments)
    else:
        names = sorted(
            os.path.splitext(entry)[0]
            for entry in os.listdir(baseline_dir)
            if entry.endswith(".json") and not entry.endswith(".meta.json")
        )
    report = GateReport()
    for experiment in names:
        baseline_path = os.path.join(baseline_dir, f"{experiment}.json")
        candidate_path = os.path.join(candidate_dir, f"{experiment}.json")
        if not os.path.exists(baseline_path):
            raise ReproError(
                f"no baseline artifact for experiment {experiment!r} "
                f"under {baseline_dir}"
            )
        if not os.path.exists(candidate_path):
            report.rows.append(GateRow(
                experiment, "-", "-", "present", "missing", "fail",
                "candidate artifact missing (benchmark did not run?)",
            ))
            continue
        baseline_rows = _load_records(baseline_path)
        candidate_rows = _load_records(candidate_path)
        candidates = {
            _row_key(experiment, row, index): row
            for index, row in enumerate(candidate_rows)
        }
        matched = 0
        for index, baseline_row in enumerate(baseline_rows):
            key = _row_key(experiment, baseline_row, index)
            candidate_row = candidates.get(key)
            if candidate_row is None:
                report.rows.append(GateRow(
                    experiment, key, "-", "present", "missing",
                    "skipped", "row absent from candidate run",
                ))
                continue
            matched += 1
            report.rows.extend(compare_rows(
                experiment, key, baseline_row, candidate_row, tolerance,
            ))
        if baseline_rows and not matched:
            report.rows.append(GateRow(
                experiment, "-", "-", len(baseline_rows), 0, "fail",
                "no candidate row matched any baseline row",
            ))
    return report
