"""Verification helpers: solution checking and precondition checking.

The fixers of :mod:`repro.core` promise assignments that avoid every bad
event.  :func:`verify_solution` checks that promise independently, and
:func:`check_preconditions` validates an instance against the rank bound and
the exponential criterion before an algorithm runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional, Tuple

from repro.errors import CriterionViolationError, RankViolationError
from repro.lll.criteria import ExponentialCriterion
from repro.lll.instance import LLLInstance
from repro.probability import PartialAssignment


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of checking an assignment against an instance."""

    #: Whether every variable of the instance is fixed.
    complete: bool
    #: Names of bad events that occur (empty for a valid solution).
    occurring: Tuple[Hashable, ...]
    #: Names of variables that are still unfixed.
    unfixed: Tuple[Hashable, ...]

    @property
    def ok(self) -> bool:
        """True iff the assignment is complete and avoids every bad event."""
        return self.complete and not self.occurring

    def __bool__(self) -> bool:
        return self.ok


def verify_solution(
    instance: LLLInstance, assignment: PartialAssignment
) -> VerificationResult:
    """Check whether ``assignment`` is a complete, event-avoiding solution."""
    unfixed = tuple(
        variable.name
        for variable in instance.variables
        if not assignment.is_fixed(variable.name)
    )
    if unfixed:
        return VerificationResult(complete=False, occurring=(), unfixed=unfixed)
    occurring = tuple(event.name for event in instance.occurring_events(assignment))
    return VerificationResult(complete=True, occurring=occurring, unfixed=())


@dataclass(frozen=True)
class PreconditionReport:
    """Parameters gathered while checking an instance's preconditions."""

    p: float
    d: int
    rank: int
    threshold: float

    @property
    def slack(self) -> float:
        """``threshold / p`` (``inf`` if p is 0)."""
        if self.p == 0.0:
            return float("inf")
        return self.threshold / self.p


def check_local_criterion(instance: LLLInstance) -> None:
    """Check the per-event exponential criterion ``p_v < 2^-deg(v)``.

    This is the condition the paper's bookkeeping argument actually uses:
    every edge value is at most 2, so the final certified bound of event
    ``v`` is ``p_v * 2^deg(v)``.  It is implied by the paper's global
    statement ``p < 2^-d`` but is strictly weaker on irregular dependency
    graphs (e.g. trees), where low-degree events tolerate much larger
    probabilities than ``2^-d``.

    Raises
    ------
    CriterionViolationError
        Naming the first event that violates its local bound.
    """
    graph = instance.dependency_graph
    for event in instance.events:
        degree = graph.degree(event.name)
        probability = event.probability()
        if probability >= 2.0 ** (-degree):
            raise CriterionViolationError(
                f"event {event.name!r} violates the local criterion: "
                f"p={probability:.6g} >= 2^-deg = {2.0 ** (-degree):.6g} "
                f"(deg={degree})"
            )


def check_preconditions(
    instance: LLLInstance,
    max_rank: Optional[int] = None,
    require_criterion=True,
) -> PreconditionReport:
    """Validate an instance for the paper's deterministic fixers.

    Parameters
    ----------
    instance:
        The LLL instance to check.
    max_rank:
        If given, raise :class:`RankViolationError` when any variable
        affects more than this many events.
    require_criterion:
        ``True`` (default) enforces the paper's global criterion
        ``p < 2^-d``; the string ``"local"`` enforces the strictly weaker
        per-event criterion ``p_v < 2^-deg(v)`` (see
        :func:`check_local_criterion`); ``False`` skips the check.

    Returns
    -------
    PreconditionReport
        The measured ``p``, ``d``, rank and exponential threshold.
    """
    rank = instance.rank
    if max_rank is not None and rank > max_rank:
        raise RankViolationError(
            f"instance has rank {rank}, but the algorithm supports at most "
            f"rank {max_rank}"
        )
    p = instance.max_event_probability
    d = instance.max_dependency_degree
    criterion = ExponentialCriterion()
    if require_criterion == "local":
        check_local_criterion(instance)
    elif require_criterion:
        criterion.require(p, d, context=f"instance with {instance.num_events} events")
    return PreconditionReport(p=p, d=d, rank=rank, threshold=criterion.threshold(d))
