"""A small hypergraph data structure.

The paper works with the hypergraph ``H = (V, F)`` whose nodes are the bad
events and which has one hyperedge per random variable, connecting exactly
the events that depend on that variable (Section 3).  The *rank* of ``H``
is the cardinality of its largest hyperedge — the paper's parameter ``r``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ReproError


class Hyperedge:
    """A named hyperedge: a non-empty frozen set of nodes."""

    __slots__ = ("_name", "_nodes")

    def __init__(self, name: Hashable, nodes: Iterable[Hashable]) -> None:
        nodes = frozenset(nodes)
        if not nodes:
            raise ReproError(f"hyperedge {name!r} must contain at least one node")
        self._name = name
        self._nodes = nodes

    @property
    def name(self) -> Hashable:
        """The hyperedge's identifier."""
        return self._name

    @property
    def nodes(self) -> FrozenSet[Hashable]:
        """The set of nodes the hyperedge connects."""
        return self._nodes

    @property
    def cardinality(self) -> int:
        """Number of nodes in the hyperedge."""
        return len(self._nodes)

    def __contains__(self, node: Hashable) -> bool:
        return node in self._nodes

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._nodes)

    def __repr__(self) -> str:
        return f"Hyperedge(name={self._name!r}, nodes={sorted(map(repr, self._nodes))})"


class Hypergraph:
    """A hypergraph with named nodes and named hyperedges."""

    __slots__ = ("_nodes", "_edges", "_incidence")

    def __init__(self) -> None:
        self._nodes: Dict[Hashable, None] = {}
        self._edges: Dict[Hashable, Hyperedge] = {}
        self._incidence: Dict[Hashable, List[Hyperedge]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: Hashable) -> None:
        """Add an isolated node (idempotent)."""
        if node not in self._nodes:
            self._nodes[node] = None
            self._incidence[node] = []

    def add_edge(self, name: Hashable, nodes: Iterable[Hashable]) -> Hyperedge:
        """Add a hyperedge; missing endpoints are created.

        Raises
        ------
        ReproError
            If an edge with the same name already exists.
        """
        if name in self._edges:
            raise ReproError(f"hyperedge named {name!r} already exists")
        edge = Hyperedge(name, nodes)
        self._edges[name] = edge
        for node in edge.nodes:
            self.add_node(node)
            self._incidence[node].append(edge)
        return edge

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[Hashable, ...]:
        """All nodes, in insertion order."""
        return tuple(self._nodes)

    @property
    def edges(self) -> Tuple[Hyperedge, ...]:
        """All hyperedges, in insertion order."""
        return tuple(self._edges.values())

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        """Number of hyperedges."""
        return len(self._edges)

    def edge(self, name: Hashable) -> Hyperedge:
        """Look up a hyperedge by name."""
        try:
            return self._edges[name]
        except KeyError:
            raise ReproError(f"no hyperedge named {name!r}") from None

    def has_node(self, node: Hashable) -> bool:
        """Whether the node exists."""
        return node in self._nodes

    def incident_edges(self, node: Hashable) -> Tuple[Hyperedge, ...]:
        """Hyperedges containing ``node``."""
        try:
            return tuple(self._incidence[node])
        except KeyError:
            raise ReproError(f"no node named {node!r}") from None

    def degree(self, node: Hashable) -> int:
        """Number of hyperedges containing ``node``."""
        return len(self.incident_edges(node))

    @property
    def rank(self) -> int:
        """Cardinality of the largest hyperedge (0 for an edgeless graph)."""
        if not self._edges:
            return 0
        return max(edge.cardinality for edge in self._edges.values())

    @property
    def max_degree(self) -> int:
        """Maximum node degree (0 for a nodeless graph)."""
        if not self._incidence:
            return 0
        return max(len(edges) for edges in self._incidence.values())

    def neighbors(self, node: Hashable) -> FrozenSet[Hashable]:
        """Nodes sharing at least one hyperedge with ``node`` (excl. itself)."""
        found = set()
        for edge in self.incident_edges(node):
            found.update(edge.nodes)
        found.discard(node)
        return frozenset(found)

    def __repr__(self) -> str:
        return (
            f"Hypergraph({self.num_nodes} nodes, {self.num_edges} edges, "
            f"rank={self.rank})"
        )
