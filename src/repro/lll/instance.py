"""LLL instances: events, variables, dependency graph, variable hypergraph.

An :class:`LLLInstance` bundles the bad events of a Lovász-Local-Lemma
instance, derives the structures the paper reasons about — the dependency
graph ``G`` (events adjacent iff they share a variable) and the variable
hypergraph ``H`` (one hyperedge per variable, connecting the events that
depend on it) — and exposes the parameters ``p`` (max event probability),
``d`` (max dependency degree) and ``r`` (rank: max events per variable).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.artifacts import STORE as _ARTIFACTS, artifacts_enabled
from repro.artifacts.fingerprint import instance_key
from repro.errors import ReproError, UnknownVariableError
from repro.lll.hypergraph import Hypergraph
from repro.probability import (
    BadEvent,
    DiscreteVariable,
    PartialAssignment,
    ProductSpace,
)


class LLLInstance:
    """A distributed LLL instance.

    Parameters
    ----------
    events:
        The bad events.  Event names must be unique.  If two events list a
        variable with the same name, the variable objects must be equal
        (same support and distribution) — they denote the *same* shared
        random variable.
    """

    def __init__(self, events: Sequence[BadEvent]) -> None:
        self._events: Tuple[BadEvent, ...] = tuple(events)
        if not self._events:
            raise ReproError("an LLL instance needs at least one event")
        names = [event.name for event in self._events]
        if len(set(names)) != len(names):
            raise ReproError("event names must be unique")
        self._event_by_name: Dict[Hashable, BadEvent] = {
            event.name: event for event in self._events
        }

        self._variables: Dict[Hashable, DiscreteVariable] = {}
        self._events_of_variable: Dict[Hashable, List[BadEvent]] = {}
        for event in self._events:
            for variable in event.variables:
                known = self._variables.get(variable.name)
                if known is None:
                    self._variables[variable.name] = variable
                    self._events_of_variable[variable.name] = []
                elif known != variable:
                    raise ReproError(
                        f"variable {variable.name!r} is declared with two "
                        f"different distributions"
                    )
                self._events_of_variable[variable.name].append(event)

        self._space = ProductSpace(tuple(self._variables.values()))
        self._dependency_graph: Optional[nx.Graph] = None
        self._hypergraph: Optional[Hypergraph] = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def events(self) -> Tuple[BadEvent, ...]:
        """All bad events, in construction order."""
        return self._events

    @property
    def num_events(self) -> int:
        """Number of bad events."""
        return len(self._events)

    @property
    def variables(self) -> Tuple[DiscreteVariable, ...]:
        """All distinct variables, in first-appearance order."""
        return tuple(self._variables.values())

    @property
    def num_variables(self) -> int:
        """Number of distinct variables."""
        return len(self._variables)

    @property
    def space(self) -> ProductSpace:
        """The product probability space spanned by all variables."""
        return self._space

    def event(self, name: Hashable) -> BadEvent:
        """Look up an event by name."""
        try:
            return self._event_by_name[name]
        except KeyError:
            raise ReproError(f"no event named {name!r}") from None

    def variable(self, name: Hashable) -> DiscreteVariable:
        """Look up a variable by name."""
        try:
            return self._variables[name]
        except KeyError:
            raise UnknownVariableError(f"no variable named {name!r}") from None

    def events_of_variable(self, name: Hashable) -> Tuple[BadEvent, ...]:
        """All events whose scope contains the named variable."""
        try:
            return tuple(self._events_of_variable[name])
        except KeyError:
            raise UnknownVariableError(f"no variable named {name!r}") from None

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------
    @property
    def dependency_graph(self) -> nx.Graph:
        """The dependency graph ``G``: events adjacent iff they share a variable.

        The returned graph is cached; treat it as read-only.
        """
        if self._dependency_graph is None:
            graph = nx.Graph()
            graph.add_nodes_from(event.name for event in self._events)
            for events in self._events_of_variable.values():
                for i, first in enumerate(events):
                    for second in events[i + 1 :]:
                        if first.name != second.name:
                            graph.add_edge(first.name, second.name)
            self._dependency_graph = graph
        return self._dependency_graph

    @property
    def variable_hypergraph(self) -> Hypergraph:
        """The hypergraph ``H``: one hyperedge per variable over event names.

        The returned hypergraph is cached; treat it as read-only.
        """
        if self._hypergraph is None:
            hypergraph = Hypergraph()
            for event in self._events:
                hypergraph.add_node(event.name)
            for name, events in self._events_of_variable.items():
                hypergraph.add_edge(name, {event.name for event in events})
            self._hypergraph = hypergraph
        return self._hypergraph

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """``r``: the maximum number of events any single variable affects."""
        return max(len(events) for events in self._events_of_variable.values())

    @property
    def max_dependency_degree(self) -> int:
        """``d``: the maximum degree of the dependency graph.

        Served from the artifact store's parameters tier when enabled:
        ``d`` is a pure function of the instance shape, so a same-shape
        instance avoids materialising the dependency graph just to take
        a degree maximum (precondition checks need only the scalar).
        """
        key = (
            instance_key(self, "max-degree") if artifacts_enabled() else None
        )
        cached = _ARTIFACTS.get("parameters", key)
        if cached is not None:
            return cached
        graph = self.dependency_graph
        degree = max((deg for _, deg in graph.degree()), default=0)
        _ARTIFACTS.put("parameters", key, degree)
        return degree

    def event_probabilities(self) -> Dict[Hashable, float]:
        """Unconditional probability of each event.

        Served from the artifact store's parameters tier when enabled —
        the probabilities are pure functions of the instance shape, so a
        same-shape instance solved earlier already paid the per-event
        enumeration.  Always returns a fresh dict; callers own (and may
        mutate) their copy.
        """
        key = (
            instance_key(self, "probabilities")
            if artifacts_enabled()
            else None
        )
        cached = _ARTIFACTS.get("parameters", key)
        if cached is not None:
            return dict(cached)
        probabilities = {
            event.name: event.probability() for event in self._events
        }
        if key is None:
            return probabilities
        _ARTIFACTS.put("parameters", key, probabilities)
        return dict(probabilities)

    @property
    def max_event_probability(self) -> float:
        """``p``: the maximum unconditional probability of a bad event."""
        return max(self.event_probabilities().values())

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def occurring_events(self, assignment: PartialAssignment) -> Tuple[BadEvent, ...]:
        """The events that occur under a complete assignment."""
        return tuple(
            event for event in self._events if event.occurs(assignment)
        )

    def is_complete(self, assignment: PartialAssignment) -> bool:
        """Whether every variable of the instance is fixed."""
        return all(assignment.is_fixed(name) for name in self._variables)

    def avoids_all_events(self, assignment: PartialAssignment) -> bool:
        """Whether the complete assignment avoids every bad event."""
        return not self.occurring_events(assignment)

    def clear_caches(self) -> None:
        """Drop memoised conditional probabilities on every event."""
        for event in self._events:
            event.clear_cache()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """A dictionary describing the instance's key parameters."""
        p = self.max_event_probability
        d = self.max_dependency_degree
        return {
            "num_events": self.num_events,
            "num_variables": self.num_variables,
            "rank": self.rank,
            "p": p,
            "d": d,
            "p_times_2^d": p * (2.0**d),
            "exponential_criterion": p * (2.0**d) < 1.0,
            "symmetric_lll_criterion": math.e * p * (d + 1) < 1.0,
        }

    def __repr__(self) -> str:
        return (
            f"LLLInstance({self.num_events} events, "
            f"{self.num_variables} variables, rank={self.rank})"
        )
