"""LLL criteria: the thresholds the paper's complexity landscape is built on.

Each criterion is a predicate on the pair ``(p, d)`` — maximum bad-event
probability and maximum dependency degree.  The paper's sharp threshold sits
at the *exponential* criterion ``p < 2^-d``; the others appear in its
related-work comparison (Section 1).
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.errors import CriterionViolationError


class Criterion:
    """Base class for symmetric LLL criteria.

    Subclasses implement :meth:`threshold`, the largest event probability
    allowed at dependency degree ``d``; a pair satisfies the criterion iff
    ``p < threshold(d)``.
    """

    #: Human-readable formula, overridden by subclasses.
    formula: str = "?"

    def threshold(self, d: int) -> float:
        """The supremum of admissible ``p`` at degree ``d``."""
        raise NotImplementedError

    def is_satisfied(self, p: float, d: int) -> bool:
        """Whether ``(p, d)`` strictly satisfies the criterion."""
        return p < self.threshold(d)

    def margin(self, p: float, d: int) -> float:
        """``threshold(d) / p``: how much slack the instance has (>1 is good).

        Returns ``inf`` when ``p == 0``.
        """
        if p == 0.0:
            return math.inf
        return self.threshold(d) / p

    def require(self, p: float, d: int, context: str = "") -> None:
        """Raise :class:`CriterionViolationError` unless satisfied."""
        if not self.is_satisfied(p, d):
            where = f" ({context})" if context else ""
            raise CriterionViolationError(
                f"criterion {self.formula} violated{where}: "
                f"p={p:.6g}, d={d}, threshold={self.threshold(d):.6g}"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.formula})"


class ExponentialCriterion(Criterion):
    """``p < 2^-d`` — the paper's sharp threshold (Theorems 1.1 and 1.3)."""

    formula = "p < 2^-d"

    def threshold(self, d: int) -> float:
        return 2.0 ** (-d)


class SymmetricLLLCriterion(Criterion):
    """``e·p·(d+1) < 1`` — the classical symmetric Lovász Local Lemma."""

    formula = "e*p*(d+1) < 1"

    def threshold(self, d: int) -> float:
        return 1.0 / (math.e * (d + 1))


class PolynomialCriterion(Criterion):
    """``e·p·d² < 1`` — the Chung-Pettie-Su criterion [CPS17]."""

    formula = "e*p*d^2 < 1"

    def threshold(self, d: int) -> float:
        if d == 0:
            return 1.0
        return 1.0 / (math.e * d * d)


class GHKCriterion(Criterion):
    """``d^8·p ≤ c`` — the Ghaffari-Harris-Kuhn criterion [GHK18].

    Parameters
    ----------
    constant:
        The ``O(1)`` constant; defaults to 1.
    """

    def __init__(self, constant: float = 1.0) -> None:
        self._constant = float(constant)
        self.formula = f"d^8*p < {self._constant:g}"

    def threshold(self, d: int) -> float:
        if d == 0:
            return 1.0
        return self._constant / float(d) ** 8


class NaiveRankCriterion(Criterion):
    """``p < r^-C(d, r-1)`` — what the *straightforward* rank-r generalisation needs.

    Section 1 of the paper derives this cost of naively extending the rank-2
    argument: each fixing may multiply probabilities by ``r``, and an event
    may depend on ``C(d, r-1)`` variables.  The paper's main theorem shows
    the far weaker ``p < 2^-d`` suffices for ``r = 3``; this class exists so
    benchmarks can show how much stronger the naive requirement is.
    """

    def __init__(self, r: int) -> None:
        if r < 2:
            raise CriterionViolationError("rank must be at least 2")
        self._r = r
        self.formula = f"p < {r}^-C(d,{r - 1})"

    def threshold(self, d: int) -> float:
        exponent = math.comb(d, self._r - 1)
        return float(self._r) ** (-exponent)


def criterion_report(p: float, d: int) -> Dict[str, Dict[str, object]]:
    """Evaluate all standard criteria for a ``(p, d)`` pair.

    Returns a mapping from criterion formula to a dict with keys
    ``satisfied``, ``threshold`` and ``margin``.
    """
    criteria = (
        ExponentialCriterion(),
        SymmetricLLLCriterion(),
        PolynomialCriterion(),
        GHKCriterion(),
    )
    report = {}
    for criterion in criteria:
        report[criterion.formula] = {
            "satisfied": criterion.is_satisfied(p, d),
            "threshold": criterion.threshold(d),
            "margin": criterion.margin(p, d),
        }
    return report
