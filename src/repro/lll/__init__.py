"""LLL instance framework (substrate S2).

Instances (:class:`LLLInstance`), the variable hypergraph
(:class:`Hypergraph`), the criteria of the complexity landscape
(:mod:`repro.lll.criteria`), and independent solution verification
(:func:`verify_solution`).
"""

from repro.lll.asymmetric import (
    asymmetric_criterion_holds,
    certificate_is_valid,
    expected_moser_tardos_resamplings,
    find_asymmetric_certificate,
)
from repro.lll.criteria import (
    Criterion,
    ExponentialCriterion,
    GHKCriterion,
    NaiveRankCriterion,
    PolynomialCriterion,
    SymmetricLLLCriterion,
    criterion_report,
)
from repro.lll.hypergraph import Hyperedge, Hypergraph
from repro.lll.instance import LLLInstance
from repro.lll.io import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    save_instance,
)
from repro.lll.verify import (
    PreconditionReport,
    VerificationResult,
    check_local_criterion,
    check_preconditions,
    verify_solution,
)

__all__ = [
    "Criterion",
    "asymmetric_criterion_holds",
    "certificate_is_valid",
    "expected_moser_tardos_resamplings",
    "find_asymmetric_certificate",
    "instance_from_dict",
    "instance_to_dict",
    "load_instance",
    "save_instance",
    "ExponentialCriterion",
    "GHKCriterion",
    "Hyperedge",
    "Hypergraph",
    "LLLInstance",
    "NaiveRankCriterion",
    "PolynomialCriterion",
    "PreconditionReport",
    "SymmetricLLLCriterion",
    "VerificationResult",
    "check_local_criterion",
    "check_preconditions",
    "criterion_report",
    "verify_solution",
]
