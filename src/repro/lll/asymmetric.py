"""The general (asymmetric) Lovász Local Lemma condition.

The symmetric criteria of :mod:`repro.lll.criteria` compare a single
``(p, d)`` pair; the general LLL is finer: all bad events are avoidable
if there is an assignment ``x : V -> (0, 1)`` with

    Pr[E_v]  <=  x_v * prod_{u in Gamma(v)} (1 - x_u)     for every v.

This module searches for such a certificate by the standard monotone
fixed-point iteration ``x_v <- Pr[E_v] / prod_{u}(1 - x_u)`` starting
from ``x_v = Pr[E_v]``:

* the iterates are non-decreasing, and any valid certificate dominates
  them, so the iteration converges to the *least* certificate whenever
  one exists (the search is complete);
* if some iterate reaches 1, no certificate exists up to the numerical
  cutoff.

The paper's exponential criterion is much stronger than this condition;
the benchmark harness uses the certificate finder to show where each
workload sits in the wider LLL landscape.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Optional

from repro.errors import ReproError
from repro.lll.instance import LLLInstance

#: Iteration stops when no coordinate moves more than this.
DEFAULT_TOLERANCE = 1e-12
#: Values at or above this are treated as divergence.
DIVERGENCE_CUTOFF = 1.0 - 1e-9


def find_asymmetric_certificate(
    instance: LLLInstance,
    max_iterations: int = 10_000,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Optional[Dict[Hashable, float]]:
    """The least asymmetric-LLL certificate, or ``None`` if none exists.

    Returns a mapping ``event name -> x`` satisfying the general LLL
    condition (validated before returning), or ``None`` when the
    monotone iteration diverges.

    Raises
    ------
    ReproError
        If the iteration neither converges nor diverges within
        ``max_iterations`` (raise the budget for huge instances).
    """
    graph = instance.dependency_graph
    probabilities = {
        event.name: event.probability() for event in instance.events
    }
    if any(p >= 1.0 for p in probabilities.values()):
        return None
    x = dict(probabilities)
    for _iteration in range(max_iterations):
        moved = 0.0
        for event in instance.events:
            name = event.name
            denominator = 1.0
            for neighbor in graph.neighbors(name):
                denominator *= 1.0 - x[neighbor]
            if denominator <= 0.0:
                return None
            updated = probabilities[name] / denominator
            if updated >= DIVERGENCE_CUTOFF:
                return None
            moved = max(moved, updated - x[name])
            x[name] = updated
        if moved <= tolerance:
            # Validate: the fixed point satisfies the condition with
            # equality up to the tolerance; nudge up to make the
            # inequality strict-side robust.
            certificate = {
                name: min(value * (1.0 + 1e-9) + 1e-15, DIVERGENCE_CUTOFF)
                for name, value in x.items()
            }
            if certificate_is_valid(instance, certificate):
                return certificate
            return None
    raise ReproError(
        f"asymmetric-LLL iteration did not settle within "
        f"{max_iterations} iterations"
    )


def certificate_is_valid(
    instance: LLLInstance,
    certificate: Dict[Hashable, float],
    slack: float = 1e-9,
) -> bool:
    """Check the general LLL condition for an explicit certificate."""
    graph = instance.dependency_graph
    for event in instance.events:
        x_v = certificate.get(event.name)
        if x_v is None or not (0.0 < x_v < 1.0):
            return False
        bound = x_v
        for neighbor in graph.neighbors(event.name):
            bound *= 1.0 - certificate[neighbor]
        if event.probability() > bound * (1.0 + slack) + 1e-15:
            return False
    return True


def asymmetric_criterion_holds(instance: LLLInstance) -> bool:
    """Whether the general LLL condition admits a certificate."""
    return find_asymmetric_certificate(instance) is not None


def expected_moser_tardos_resamplings(
    instance: LLLInstance,
    certificate: Optional[Dict[Hashable, float]] = None,
) -> float:
    """The Moser-Tardos bound ``sum_v x_v / (1 - x_v)`` on expected work.

    [MT10]'s main theorem: under the general LLL condition, the expected
    total number of resamplings is at most this sum.  Uses the least
    certificate if none is supplied.

    Raises
    ------
    ReproError
        If no certificate exists.
    """
    if certificate is None:
        certificate = find_asymmetric_certificate(instance)
    if certificate is None:
        raise ReproError(
            "no asymmetric-LLL certificate: the Moser-Tardos bound does "
            "not apply"
        )
    return math.fsum(
        value / (1.0 - value) for value in certificate.values()
    )
