"""Serialising LLL instances to and from JSON-friendly dictionaries.

Events are defined by arbitrary Python predicates, which cannot be
serialised directly; instead, each event's scope is exhaustively
tabulated into its set of *bad outcomes* (feasible in the paper's
bounded-degree regime, where scopes are small).  Tabulation goes through
:meth:`repro.probability.BadEvent.bad_outcomes`, which reuses the
compiled truth table when the engine has one, and reloaded events carry
their outcome set as a precomputed table, so a save/load round trip
never re-enumerates a predicate under the compiled engine.  The round
trip preserves semantics exactly: the reloaded instance has identical
event probabilities, dependency graph and solutions.

Names of variables and events may be strings, integers, or (possibly
nested) lists/tuples thereof; tuples are canonicalised to lists in JSON
and restored as tuples on load.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Hashable, List

from repro.errors import EnumerationLimitError, ReproError
from repro.lll.instance import LLLInstance
from repro.probability import BadEvent, DiscreteVariable

#: Refuse to tabulate events with more outcomes than this.
DEFAULT_TABULATION_LIMIT = 1 << 20


def _encode_name(name: Hashable) -> Any:
    """Tuples become tagged lists so they survive JSON."""
    if isinstance(name, tuple):
        return {"__tuple__": [_encode_name(part) for part in name]}
    if isinstance(name, (str, int, float, bool)) or name is None:
        return name
    raise ReproError(
        f"cannot serialise name {name!r}: only strings, numbers and "
        f"(nested) tuples thereof are supported"
    )


def _decode_name(encoded: Any) -> Hashable:
    if isinstance(encoded, dict) and "__tuple__" in encoded:
        return tuple(_decode_name(part) for part in encoded["__tuple__"])
    if isinstance(encoded, list):
        return tuple(_decode_name(part) for part in encoded)
    return encoded


def instance_to_dict(
    instance: LLLInstance,
    tabulation_limit: int = DEFAULT_TABULATION_LIMIT,
) -> Dict[str, Any]:
    """Serialise an instance by tabulating every event's bad outcomes."""
    variables = []
    for variable in instance.variables:
        variables.append(
            {
                "name": _encode_name(variable.name),
                "values": [_encode_name(value) for value in variable.values],
                "probabilities": list(variable.probabilities),
            }
        )
    events = []
    for event in instance.events:
        scope = event.variables
        outcome_count = 1
        for variable in scope:
            outcome_count *= variable.num_values
        if outcome_count > tabulation_limit:
            raise EnumerationLimitError(
                f"event {event.name!r}: tabulating {outcome_count} outcomes "
                f"exceeds the limit {tabulation_limit}"
            )
        bad_outcomes = [
            [_encode_name(value) for value in combo]
            for combo in event.bad_outcomes(limit=tabulation_limit)
        ]
        events.append(
            {
                "name": _encode_name(event.name),
                "scope": [_encode_name(variable.name) for variable in scope],
                "bad_outcomes": bad_outcomes,
            }
        )
    return {"format": "repro-lll-instance", "version": 1,
            "variables": variables, "events": events}


def instance_from_dict(payload: Dict[str, Any]) -> LLLInstance:
    """Rebuild an instance serialised by :func:`instance_to_dict`."""
    if payload.get("format") != "repro-lll-instance":
        raise ReproError("payload is not a serialised LLL instance")
    if payload.get("version") != 1:
        raise ReproError(f"unsupported version {payload.get('version')!r}")
    variables: Dict[Hashable, DiscreteVariable] = {}
    for spec in payload["variables"]:
        name = _decode_name(spec["name"])
        values = tuple(_decode_name(value) for value in spec["values"])
        variables[name] = DiscreteVariable(
            name, values, spec["probabilities"]
        )
    events = []
    for spec in payload["events"]:
        scope_names = [_decode_name(name) for name in spec["scope"]]
        missing = [name for name in scope_names if name not in variables]
        if missing:
            raise ReproError(
                f"event {spec['name']!r} references unknown variables "
                f"{missing[:3]!r}"
            )
        scope = [variables[name] for name in scope_names]
        bad = [
            tuple(_decode_name(value) for value in outcome)
            for outcome in spec["bad_outcomes"]
        ]
        events.append(
            BadEvent.from_bad_outcomes(
                _decode_name(spec["name"]), scope, bad
            )
        )
    return LLLInstance(events)


def save_instance(instance: LLLInstance, path: str) -> None:
    """Serialise an instance to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(instance_to_dict(instance), handle)


def load_instance(path: str) -> LLLInstance:
    """Load an instance from a JSON file written by :func:`save_instance`."""
    with open(path, "r", encoding="utf-8") as handle:
        return instance_from_dict(json.load(handle))
