"""LLL-as-a-service: a persistent async solve server on the warm planes.

The ROADMAP's service item, closed: a long-running asyncio HTTP server
(`repro serve`) that accepts solve/verify/plan requests as JSON bodies
and dispatches them onto one persistent
:class:`~repro.runtime.schedulers.ProcessScheduler` + shared-memory
plane, with the process-global :class:`~repro.artifacts.store.STORE` as
the request-level cache.  Two layers of reuse, both riding the PR 8
artifact plane:

* **shape-level** — same-shape requests skip kernel compilation,
  template lowering, coloring and plan construction (the E7 win);
* **content-level** — the ``solutions`` tier memoizes whole solve
  responses by canonical request content, which is sound because the
  fixers are deterministic: an identical instance always produces the
  bit-identical result.  ``REPRO_ARTIFACTS=off`` disables both layers
  (the serving oracle: every request recomputes from scratch).

Layering
--------
:class:`SolveService`
    The transport-free sync engine: builds instances from request
    payloads (``lll.io`` dicts or generator family specs), runs them on
    the persistent scheduler, and shapes deterministic JSON responses.
    All scheduler access is serialized through a single executor
    thread, so back-to-back requests exercise exactly the warm
    :meth:`~repro.runtime.shm.ShmSession.ensure` path.
:class:`SolveServer`
    The asyncio HTTP/1.1 front: admission control (bounded in-flight
    queue, typed 429 rejection), per-request deadlines (typed 504;
    worker hangs are independently bounded by the PR 5 per-chunk
    deadline machinery, so an expired request never poisons the pool),
    and graceful drain on SIGTERM/SIGINT (finish in-flight work, close
    the scheduler — unlinking its shm segment — and flush obs).

Endpoints
---------
``POST /v1/solve``
    ``{"instance": {...}}`` or ``{"family": "cycle", "n": 64, ...}``;
    optional ``deadline_s``, ``include_assignment``,
    ``include_bounds``.  The ``result`` object is deterministic —
    bit-identical to an in-process :func:`repro.core.solve` — while
    timing and cache telemetry ride in separate keys.
``POST /v1/verify``
    ``{"instance"/"family": ..., "assignment": [[name, value], ...]}``.
``POST /v1/plan``
    Instance spec; returns the FixPlan summary and per-class rows.
``POST /v1/cache/clear``
    Drops the artifact store (the HTTP face of ``repro cache clear``;
    the load generator uses it to re-measure cold latency).
``GET /v1/stats``
    Request counters, latency quantiles, artifact-store tiers,
    scheduler description.
``GET /healthz``
    ``{"status": "ok" | "draining"}``.

Every request emits ``serve/*`` obs metrics when a recorder is active
(``repro serve --obs-trace``): a ``request_ms`` streaming quantile
(p50/p95/p99 in ``repro stats``), per-endpoint counters, and
``inflight`` / ``cache_hit_rate`` gauges.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.artifacts.store import STORE
from repro.errors import (
    AdmissionError,
    CriterionViolationError,
    DeadlineExceededError,
    ReproError,
)
from repro.generators.instances import build_family_instance
from repro.lll.instance import LLLInstance
from repro.lll.io import _decode_name, _encode_name, instance_from_dict
from repro.lll.verify import verify_solution
from repro.obs.metrics import QuantileHistogram
from repro.obs.recorder import active as _obs_active
from repro.probability.assignment import PartialAssignment

#: HTTP status by error type; anything else maps to 500.
_ERROR_STATUS = {
    AdmissionError: 429,
    DeadlineExceededError: 504,
    CriterionViolationError: 422,
    ReproError: 400,
}

#: Default per-request deadline (seconds) when the request names none.
DEFAULT_DEADLINE_S = 60.0

#: Default bound on concurrently admitted (queued + running) requests.
DEFAULT_MAX_INFLIGHT = 8


@dataclass
class ServeConfig:
    """Configuration for one :class:`SolveServer`."""

    host: str = "127.0.0.1"
    port: int = 8787
    scheduler: str = "process"
    workers: Optional[int] = None
    ipc: Optional[str] = None
    max_inflight: int = DEFAULT_MAX_INFLIGHT
    deadline_s: float = DEFAULT_DEADLINE_S
    drain_timeout_s: float = 30.0


def instance_from_request(payload: Dict[str, Any]) -> LLLInstance:
    """Build the request's instance: an ``lll.io`` dict or a family spec."""
    if not isinstance(payload, dict):
        raise ReproError("request body must be a JSON object")
    if "instance" in payload:
        spec = payload["instance"]
        if not isinstance(spec, dict):
            raise ReproError("'instance' must be an lll.io instance dict")
        return instance_from_dict(spec)
    family = payload.get("family")
    if family is None:
        raise ReproError(
            "request needs an 'instance' dict or a 'family' spec "
            "(family/n/alphabet/degree/seed)"
        )
    return build_family_instance(
        str(family),
        int(payload.get("n", 16)),
        alphabet=int(payload.get("alphabet", 3)),
        degree=int(payload.get("degree", 4)),
        seed=int(payload.get("seed", 0)),
    )


def _solve_cache_key(payload: Dict[str, Any]) -> str:
    """Canonical content key for the ``solutions`` response tier.

    Exactly the fields that determine the instance — a raw ``lll.io``
    dict is its own content; a family spec is pinned by its full
    parameter set (generators are deterministic given the seed).
    """
    if "instance" in payload:
        spec: Dict[str, Any] = {"instance": payload["instance"]}
    else:
        spec = {
            "family": str(payload.get("family")),
            "n": int(payload.get("n", 16)),
            "alphabet": int(payload.get("alphabet", 3)),
            "degree": int(payload.get("degree", 4)),
            "seed": int(payload.get("seed", 0)),
        }
    return json.dumps(spec, sort_keys=True, separators=(",", ":"))


def _encode_pairs(items) -> List[List[Any]]:
    """Deterministically ordered ``[[encoded_name, value], ...]`` pairs."""
    encoded = [[_encode_name(name), value] for name, value in items]
    encoded.sort(key=lambda pair: json.dumps(pair[0], sort_keys=True))
    return encoded


class SolveService:
    """The transport-free solve engine behind the server.

    One persistent scheduler, one single-thread executor: every request
    runs on the same thread against the same scheduler, which is what
    keeps the shm session, the warm worker pool and the artifact store
    hot across requests (and what makes concurrent HTTP clients safe —
    the scheduler is never entered reentrantly).
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self._scheduler = self._build_scheduler()
        self.executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-solve"
        )
        self._lock = threading.Lock()
        self._latency = QuantileHistogram()
        self._requests: Dict[str, int] = {}
        self._errors = 0
        self._rejections = 0
        self._deadline_exceeded = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._closed = False

    def _build_scheduler(self):
        from repro.runtime.schedulers import make_scheduler

        name = self.config.scheduler
        kwargs: Dict[str, Any] = {}
        if name == "process":
            if self.config.workers:
                kwargs["max_workers"] = self.config.workers
            if self.config.ipc:
                kwargs["ipc"] = self.config.ipc
        return make_scheduler(name, **kwargs)

    def describe(self) -> str:
        return self._scheduler.describe()

    # ------------------------------------------------------------------
    # Request execution (runs on the executor thread)
    # ------------------------------------------------------------------
    def handle(
        self,
        kind: str,
        payload: Dict[str, Any],
        deadline: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Execute one request; returns the JSON-ready response body.

        ``deadline`` is a ``time.monotonic()`` timestamp.  A request
        that spent its whole budget queued behind other work fails
        here, typed, before any scheduler state is touched.
        """
        start = time.perf_counter()
        if deadline is not None and time.monotonic() > deadline:
            self._record("deadline", start)
            raise DeadlineExceededError(
                f"request spent its whole {kind} deadline queued; "
                f"the server is at capacity — retry with backoff"
            )
        try:
            before = STORE.totals()
            if kind == "solve":
                body = self._solve(payload)
            elif kind == "verify":
                body = self._verify(payload)
            elif kind == "plan":
                body = self._plan(payload)
            else:
                raise ReproError(f"unknown request kind {kind!r}")
            after = STORE.totals()
        except BaseException:
            self._record("error", start)
            raise
        hits = after["hits"] - before["hits"]
        misses = after["misses"] - before["misses"]
        total = hits + misses
        body["cache"] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / total) if total else None,
        }
        body["elapsed_ms"] = (time.perf_counter() - start) * 1000.0
        self._record(kind, start, hits=hits, misses=misses)
        return body

    def _solve(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        from repro.core.sequential import solve

        # Request-level memoization on the ``solutions`` tier: the
        # fixers are deterministic, so identical request *content*
        # (exact instance dict, or exact family parameters) always
        # yields the bit-identical response — the differential suite
        # asserts exactly that.  Keyed on content, never on shape:
        # same-shape instances with different distributions share
        # kernels/plans/templates below, but never a solution.  Under
        # ``REPRO_ARTIFACTS=off`` the tier is a no-op and every request
        # recomputes (the serving oracle).
        key = _solve_cache_key(payload)
        full = STORE.get("solutions", key)
        if full is None:
            instance = instance_from_request(payload)
            result = solve(instance, scheduler=self._scheduler)
            verified = verify_solution(instance, result.assignment).ok
            full = {
                "ok": bool(verified),
                "result": {
                    "steps": result.num_steps,
                    "min_slack": result.min_slack,
                    "max_certified_bound": result.max_certified_bound,
                    "verified": bool(verified),
                    "assignment": _encode_pairs(result.assignment.items()),
                    "certified_bounds": _encode_pairs(
                        result.certified_bounds.items()
                    ),
                },
            }
            STORE.put("solutions", key, full)
        body: Dict[str, Any] = {"ok": full["ok"], "result": dict(full["result"])}
        if not payload.get("include_assignment", True):
            body["result"].pop("assignment", None)
        if not payload.get("include_bounds", True):
            body["result"].pop("certified_bounds", None)
        return body

    def _verify(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        instance = instance_from_request(payload)
        pairs = payload.get("assignment")
        if not isinstance(pairs, list):
            raise ReproError(
                "'assignment' must be a [[name, value], ...] list"
            )
        assignment = PartialAssignment(
            {_decode_name(name): value for name, value in pairs}
        )
        report = verify_solution(instance, assignment)
        return {
            "ok": bool(report.ok),
            "result": {
                "complete": bool(report.complete),
                "occurring": [_encode_name(n) for n in report.occurring],
                "unfixed": [_encode_name(n) for n in report.unfixed],
            },
        }

    def _plan(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        from repro.runtime.plan import plan_for_instance

        instance = instance_from_request(payload)
        plan = plan_for_instance(instance)
        return {
            "ok": True,
            "result": {
                "kind": plan.kind,
                "palette": plan.palette,
                "coloring_rounds": plan.coloring_rounds,
                "num_classes": plan.num_classes,
                "num_cells": plan.num_cells,
                "num_ops": plan.num_ops,
                "classes": [
                    {
                        "color": color_class.color,
                        "cells": len(color_class.cells),
                    }
                    for color_class in plan.classes
                ],
            },
        }

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _record(self, kind: str, start: float, hits: int = 0,
                misses: int = 0) -> None:
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        with self._lock:
            self._requests[kind] = self._requests.get(kind, 0) + 1
            if kind == "error":
                self._errors += 1
            elif kind == "deadline":
                self._deadline_exceeded += 1
            else:
                self._latency.observe(elapsed_ms)
                self._cache_hits += hits
                self._cache_misses += misses
        recorder = _obs_active()
        if recorder is not None:
            recorder.count("serve", f"requests_{kind}")
            if kind not in ("error", "deadline"):
                recorder.observe_quantile("serve", "request_ms", elapsed_ms)
                recorder.gauge(
                    "serve", "cache_hit_rate", self.cache_hit_rate() or 0.0
                )
            recorder.maybe_snapshot()

    def note_rejection(self) -> None:
        """Count an admission rejection (called from the async side)."""
        with self._lock:
            self._rejections += 1
        recorder = _obs_active()
        if recorder is not None:
            recorder.count("serve", "rejected_admission")

    def cache_hit_rate(self) -> Optional[float]:
        total = self._cache_hits + self._cache_misses
        return (self._cache_hits / total) if total else None

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            latency = {
                f"p{q:g}_ms": self._latency.quantile(q)
                for q in (50.0, 95.0, 99.0)
            } if self._latency.count else {}
            body = {
                "ok": True,
                "scheduler": self.describe(),
                "requests": dict(self._requests),
                "rejections": self._rejections,
                "deadline_exceeded": self._deadline_exceeded,
                "errors": self._errors,
                "latency": latency,
                "cache": {
                    "hit_rate": self.cache_hit_rate(),
                    "totals": STORE.totals(),
                    "tiers": STORE.stats(),
                },
            }
        return body

    def clear_cache(self) -> Dict[str, Any]:
        STORE.clear()
        with self._lock:
            self._cache_hits = 0
            self._cache_misses = 0
        return {"ok": True, "cleared": True}

    def close(self) -> None:
        """Shut the executor down and release the scheduler's planes.

        Closing the ProcessScheduler unlinks its shm segment and
        reclaims the warm pool, so a drained server leaves no
        ``/dev/shm`` entries behind.
        """
        if self._closed:
            return
        self._closed = True
        self.executor.shutdown(wait=True)
        close = getattr(self._scheduler, "close", None)
        if close is not None:
            close()


class SolveServer:
    """Asyncio HTTP/1.1 front for a :class:`SolveService`."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.service = SolveService(self.config)
        self._server: Optional[asyncio.AbstractServer] = None
        self._inflight = 0
        self._draining = False
        self._drained = asyncio.Event()
        self._connections: set = set()
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting; resolves the actual port (port 0)."""
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def drain(self) -> None:
        """Graceful shutdown: stop admitting, finish in-flight, unlink.

        The SIGTERM path.  New requests are rejected with the typed
        admission error while in-flight ones run to completion (bounded
        by ``drain_timeout_s``); then the scheduler closes — unlinking
        its shared-memory segment — and the obs recorder, if any, gets
        a final snapshot before the caller's ``recording()`` flushes.
        """
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        budget = self.config.drain_timeout_s
        step = 0.05
        while self._inflight > 0 and budget > 0:
            await asyncio.sleep(step)
            budget -= step
        # In-flight work is done; kick idle keep-alive connections so
        # their handler tasks exit instead of waiting on a readline.
        for writer in list(self._connections):
            writer.close()
        await asyncio.get_running_loop().run_in_executor(
            None, self.service.close
        )
        recorder = _obs_active()
        if recorder is not None:
            recorder.snapshot(reason="drain")
        self._drained.set()

    async def run_until_drained(self) -> None:
        """Serve until :meth:`drain` completes (signal-driven)."""
        await self._drained.wait()

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(self.drain())
            )

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                try:
                    method, path, _version = (
                        request_line.decode("latin-1").split()
                    )
                except ValueError:
                    break
                headers: Dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length") or 0)
                body = await reader.readexactly(length) if length else b""
                status, payload = await self._route(method, path, body)
                data = json.dumps(payload).encode("utf-8")
                writer.write(
                    (
                        f"HTTP/1.1 {status} {_reason(status)}\r\n"
                        f"Content-Type: application/json\r\n"
                        f"Content-Length: {len(data)}\r\n"
                        f"Connection: keep-alive\r\n\r\n"
                    ).encode("latin-1") + data
                )
                await writer.drain()
                if headers.get("connection", "").lower() == "close":
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            TimeoutError,
        ):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        if path == "/healthz" and method == "GET":
            return 200, {
                "status": "draining" if self._draining else "ok",
                "inflight": self._inflight,
            }
        if path == "/v1/stats" and method == "GET":
            return 200, self.service.stats()
        if method != "POST":
            return 405, _error_body(ReproError(f"{method} not allowed"))
        if path == "/v1/cache/clear":
            return 200, self.service.clear_cache()
        kind = {
            "/v1/solve": "solve",
            "/v1/verify": "verify",
            "/v1/plan": "plan",
        }.get(path)
        if kind is None:
            return 404, _error_body(ReproError(f"unknown path {path!r}"))
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return 400, _error_body(
                ReproError(f"request body is not valid JSON: {error}")
            )
        try:
            return 200, await self._dispatch(kind, payload)
        except Exception as error:  # typed below; 500 for the rest
            return _status_for(error), _error_body(error)

    async def _dispatch(
        self, kind: str, payload: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Admission control + deadline around one executor-bound job."""
        if self._draining:
            self.service.note_rejection()
            raise AdmissionError(
                "server is draining and no longer accepts work"
            )
        if self._inflight >= self.config.max_inflight:
            self.service.note_rejection()
            raise AdmissionError(
                f"server is at its in-flight limit "
                f"({self.config.max_inflight}); retry with backoff"
            )
        deadline_s = float(payload.get("deadline_s", self.config.deadline_s))
        deadline = time.monotonic() + deadline_s
        loop = asyncio.get_running_loop()
        self._inflight += 1
        recorder = _obs_active()
        if recorder is not None:
            recorder.gauge("serve", "inflight", self._inflight)
        try:
            future = loop.run_in_executor(
                self.service.executor,
                self.service.handle,
                kind,
                payload,
                deadline,
            )
            try:
                return await asyncio.wait_for(future, timeout=deadline_s)
            except asyncio.TimeoutError:
                raise DeadlineExceededError(
                    f"{kind} request exceeded its {deadline_s:g}s deadline"
                ) from None
        finally:
            self._inflight -= 1


def _status_for(error: BaseException) -> int:
    for error_type, status in _ERROR_STATUS.items():
        if isinstance(error, error_type):
            return status
    return 500


def _error_body(error: BaseException) -> Dict[str, Any]:
    return {
        "ok": False,
        "error": {"type": type(error).__name__, "message": str(error)},
    }


def _reason(status: int) -> str:
    return {
        200: "OK",
        400: "Bad Request",
        404: "Not Found",
        405: "Method Not Allowed",
        422: "Unprocessable Entity",
        429: "Too Many Requests",
        500: "Internal Server Error",
        504: "Gateway Timeout",
    }.get(status, "Unknown")


# ----------------------------------------------------------------------
# Client + entry point
# ----------------------------------------------------------------------

class ServeClient:
    """A tiny keep-alive JSON client (tests and the E9 load generator)."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        import http.client

        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        body = json.dumps(payload).encode("utf-8") if payload is not None \
            else None
        headers = {"Content-Type": "application/json"} if body else {}
        self._conn.request(method, path, body=body, headers=headers)
        response = self._conn.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))

    def solve(self, payload: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        return self.request("POST", "/v1/solve", payload)

    def close(self) -> None:
        self._conn.close()


async def run_server(config: ServeConfig, ready=None) -> None:
    """The `repro serve` body: start, announce, drain on SIGTERM."""
    server = SolveServer(config)
    await server.start()
    server.install_signal_handlers()
    print(
        f"repro serve: listening on http://{config.host}:{server.port} "
        f"({server.service.describe()}, max_inflight="
        f"{config.max_inflight}, deadline={config.deadline_s:g}s)",
        flush=True,
    )
    if ready is not None:
        ready(server)
    await server.run_until_drained()
    stats = server.service.stats()
    served = sum(stats["requests"].values())
    print(f"repro serve: drained after {served} requests", flush=True)
