"""Property B: the LLL's original application, derandomized.

Erdős and Lovász introduced the Local Lemma to two-color sparse k-uniform
hypergraphs with no monochromatic edge.  When every node lies in at most
three hyperedges and overlaps are sparse, the instance sits below the
exponential threshold p = 2^-d and the paper's deterministic fixer
produces the coloring directly — no resampling, one pass.

Run:  python examples/property_b_demo.py
"""

from collections import Counter

from repro.applications import (
    is_proper_two_coloring,
    property_b_instance,
    sparse_uniform_hypergraph,
)
from repro.applications.property_b import coloring_from_assignment
from repro.baselines import sequential_moser_tardos
from repro.core import solve
from repro.lll import check_preconditions, verify_solution


def main() -> None:
    num_nodes, edges = sparse_uniform_hypergraph(
        num_edges=25, uniformity=7, shared_per_edge=2, seed=99
    )
    print(f"hypergraph: {num_nodes} nodes, {len(edges)} edges of size 7")

    instance = property_b_instance(num_nodes, edges)
    report = check_preconditions(instance, max_rank=3)
    print(f"  p = 2^-6 = {report.p:.6f}, d = {report.d}, "
          f"2^-d = {report.threshold:.6f} (slack {report.slack:.1f}x)")

    result = solve(instance)
    assert verify_solution(instance, result.assignment).ok
    coloring = coloring_from_assignment(num_nodes, result.assignment)
    print(f"\ndeterministic 2-coloring found: "
          f"{is_proper_two_coloring(edges, coloring)}")
    counts = Counter(coloring.values())
    print(f"color balance: {dict(counts)}")

    # Contrast: the classical randomized route needs resampling.
    mt_instance = property_b_instance(num_nodes, edges)
    mt = sequential_moser_tardos(mt_instance, seed=1)
    print(f"\nMoser-Tardos (randomized) needed {mt.resamplings} resamplings; "
          f"the deterministic fixer needed none.")


if __name__ == "__main__":
    main()
