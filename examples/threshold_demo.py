"""The sharp threshold in action: sinkless orientation vs. its relaxation.

Sinkless orientation on a 3-regular graph sits *exactly at* the paper's
threshold (every node is a sink with probability 2^-3 = 2^-d): the
deterministic fixers must reject it, and the lower bounds of [BFH+16] and
[CKP16] apply.  Relaxing each edge to 3 labels drops the bad-event
probability to 3^-3 < 2^-3 — strictly below the threshold — and the same
graph is suddenly solvable deterministically, in a number of LOCAL rounds
that does not grow with n.

Run:  python examples/threshold_demo.py
"""

from repro.applications import (
    is_sinkless,
    orientation_from_assignment,
    relaxed_sinkless_instance,
    sinkless_orientation_instance,
)
from repro.baselines import distributed_moser_tardos
from repro.core import solve_distributed
from repro.errors import CriterionViolationError
from repro.generators import random_regular_graph


def main() -> None:
    graph = random_regular_graph(num_nodes=24, degree=3, seed=7)

    # --- At the threshold: p = 2^-d exactly -----------------------------
    at_threshold = sinkless_orientation_instance(graph)
    print("sinkless orientation (AT the threshold)")
    print(f"  p = {at_threshold.max_event_probability:.4f}"
          f" = 2^-{at_threshold.max_dependency_degree}")
    try:
        solve_distributed(at_threshold)
    except CriterionViolationError as error:
        print(f"  deterministic fixer: REJECTED ({error})")

    result = distributed_moser_tardos(at_threshold, seed=1)
    orientation = orientation_from_assignment(graph, result.assignment)
    print(f"  randomized Moser-Tardos: solved in {result.rounds} rounds, "
          f"sinkless = {is_sinkless(graph, orientation)}")

    # --- Strictly below: 3 labels per edge ------------------------------
    below = relaxed_sinkless_instance(graph, labels=3)
    print("\nrelaxed sinkless orientation (BELOW the threshold)")
    print(f"  p = {below.max_event_probability:.4f}"
          f" < 2^-{below.max_dependency_degree}"
          f" = {2.0 ** -below.max_dependency_degree:.4f}")
    deterministic = solve_distributed(below)
    print(f"  deterministic algorithm: solved in "
          f"{deterministic.total_rounds} LOCAL rounds "
          f"({deterministic.coloring_rounds} coloring + "
          f"{deterministic.schedule_rounds} schedule)")

    # --- The phase shift, quantified over n -----------------------------
    print("\nround growth as n doubles (deterministic, below threshold):")
    for n in (24, 48, 96, 192):
        instance = relaxed_sinkless_instance(
            random_regular_graph(n, 3, seed=7), labels=3
        )
        rounds = solve_distributed(instance).total_rounds
        print(f"  n = {n:4d}: {rounds} rounds")
    print("(flat up to log* n — the paper's O(d + log* n); compare the "
          "Omega(log n) deterministic lower bound at the threshold)")


if __name__ == "__main__":
    main()
