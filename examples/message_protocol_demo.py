"""Running the fixing phase as actual message passing.

`solve_distributed` schedules the sequential fixer along a 2-hop coloring
and *accounts* LOCAL rounds; `solve_distributed_local` goes all the way
down: every node holds only its own state, exchanges state/commit
messages through the simulator, and fixes its owned variables using the
merged 1-hop view — two real communication rounds per color class.  Both
must (and do) produce valid solutions; this demo runs them side by side
and shows the protocol's message traffic.

Run:  python examples/message_protocol_demo.py
"""

from repro.core import solve_distributed, solve_distributed_local
from repro.generators import all_zero_triple_instance, cyclic_triples
from repro.lll import verify_solution


def main() -> None:
    n = 18
    triples = cyclic_triples(n)
    print(f"workload: {n} events, one 5-valued variable per triple, "
          f"bad = 'all incident variables are 0'")

    scheduled_instance = all_zero_triple_instance(n, triples, 5)
    scheduled = solve_distributed(scheduled_instance)
    print("\nscheduled simulation (round accounting):")
    print(f"  coloring {scheduled.coloring_rounds} + "
          f"schedule {scheduled.schedule_rounds} "
          f"(= palette {scheduled.palette}) "
          f"= {scheduled.total_rounds} rounds")
    print(f"  valid: {verify_solution(scheduled_instance, scheduled.assignment).ok}")

    protocol_instance = all_zero_triple_instance(n, triples, 5)
    protocol = solve_distributed_local(protocol_instance)
    print("\nmessage-level protocol (real state/commit messages):")
    print(f"  coloring {protocol.coloring_rounds} + "
          f"schedule {protocol.schedule_rounds} "
          f"(= 2 x palette {protocol.palette}) "
          f"= {protocol.total_rounds} rounds")
    print(f"  valid: {verify_solution(protocol_instance, protocol.assignment).ok}")
    print(f"  variables fixed through the protocol: "
          f"{len(protocol.fixing.steps)}")
    print(f"  max certified bound from the merged phi ledger: "
          f"{protocol.fixing.max_certified_bound:.6f} (< 1)")

    agreements = sum(
        1
        for variable in protocol_instance.variables
        if scheduled.assignment.get(variable.name)
        == protocol.assignment.get(variable.name)
    )
    print(f"\nassignments agree on {agreements}/{len(protocol_instance.variables)} "
          f"variables (they may legitimately differ — both are valid)")


if __name__ == "__main__":
    main()
