"""The paper's rank-3 application: three sinkless-ish hypergraph orientations.

Given a 3-uniform hypergraph, compute three orientations (each hyperedge
picks a head per orientation) such that every node is a sink in at most
one of the three.  With a node in t hyperedges, the bad event "sink in
two or more orientations" has probability 3*9^-t - 2*27^-t, below the
exponential threshold 2^-d once t >= 2 — the regime of Theorem 1.3.

Run:  python examples/hypergraph_orientation.py
"""

from repro.applications import (
    hypergraph_sinkless_instance,
    orientations_from_assignment,
)
from repro.applications.hypergraph_sinkless import (
    satisfies_requirement,
    sink_counts,
)
from repro.core import solve_distributed
from repro.generators import cyclic_triples
from repro.lll import check_preconditions


def main() -> None:
    num_nodes = 21
    triples = cyclic_triples(num_nodes)
    print(f"hypergraph: {num_nodes} nodes, {len(triples)} rank-3 hyperedges")
    print("  (every node lies in 3 hyperedges)")

    instance = hypergraph_sinkless_instance(num_nodes, triples)
    report = check_preconditions(instance, max_rank=3)
    print(f"  p = {report.p:.6f}, d = {report.d}, "
          f"threshold 2^-d = {report.threshold:.6f} "
          f"(slack {report.slack:.1f}x)")

    result = solve_distributed(instance)
    print(f"\nsolved distributedly in {result.total_rounds} LOCAL rounds "
          f"({result.coloring_rounds} for the 2-hop coloring, "
          f"{result.schedule_rounds} schedule rounds over "
          f"{result.palette} color classes)")

    orientations = orientations_from_assignment(triples, result.assignment)
    counts = sink_counts(num_nodes, triples, orientations)
    print(f"requirement met (every node a non-sink in >= 2 orientations): "
          f"{satisfies_requirement(num_nodes, triples, orientations)}")
    print(f"sink-count histogram: "
          f"{ {k: counts.count(k) for k in sorted(set(counts))} }")

    print("\norientation of the first three hyperedges:")
    for triple in triples[:3]:
        heads = [orientations[i][tuple(sorted(triple))] for i in range(3)]
        print(f"  hyperedge {triple}: heads = {heads}")


if __name__ == "__main__":
    main()
