"""Deterministic SAT solving below the exponential threshold.

A CNF formula in which every variable occurs in at most three clauses is
a rank-3 LLL instance (clauses = bad events, p = 2^-width).  When clauses
are wide relative to the number of shared variables, the instance falls
below p = 2^-d and the paper's fixer *deterministically* constructs a
satisfying assignment — no backtracking, no resampling, one pass over
the variables in any order.

Run:  python examples/sat_demo.py
"""

from repro.applications import (
    assignment_to_values,
    sat_instance,
    sparse_shared_formula,
)
from repro.core import solve
from repro.lll import check_preconditions


def main() -> None:
    formula = sparse_shared_formula(
        num_clauses=30, width=7, shared_per_clause=3, seed=2024
    )
    print(f"formula: {len(formula.clauses)} clauses of width 7, "
          f"{formula.num_variables} variables, "
          f"max occurrence = {formula.max_occurrence()}")

    instance = sat_instance(formula)
    report = check_preconditions(instance, max_rank=3)
    print(f"  p = 2^-7 = {report.p:.6f}, d = {report.d}, "
          f"2^-d = {report.threshold:.6f}")

    result = solve(instance)
    values = assignment_to_values(formula, result.assignment)
    print(f"\nsatisfying assignment found: {formula.is_satisfied(values)}")
    print(f"variables fixed: {result.num_steps} "
          f"(tightest step slack {result.min_slack:.4f})")

    true_count = sum(1 for value in values.values() if value)
    print(f"true variables: {true_count} / {len(values)}")

    print("\nper-clause status (first five):")
    for index, clause in enumerate(formula.clauses[:5]):
        satisfied_literals = sum(
            1 for var, wanted in clause if values[var] == wanted
        )
        print(f"  clause {index}: {satisfied_literals}/{len(clause)} "
              f"literals satisfied")


if __name__ == "__main__":
    main()
