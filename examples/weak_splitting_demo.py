"""Relaxed weak splitting: 16 colors, every constraint sees at least two.

Weak splitting with 2 colors is P-SLOCAL-complete and sits above the
exponential threshold; the paper relaxes it (r <= 3, 16 colors, every
V-node must see >= 2 colors) to land strictly below p = 2^-d, where
Theorem 1.3 derandomizes it.  This demo builds a random bipartite
workload, solves it deterministically, and cross-checks the domain-level
requirement.

Run:  python examples/weak_splitting_demo.py
"""

from collections import Counter

from repro.applications import (
    coloring_from_assignment,
    random_splitting_workload,
    weak_splitting_instance,
)
from repro.applications.weak_splitting import colors_seen, satisfies_requirement
from repro.core import solve
from repro.lll import check_preconditions, verify_solution


def main() -> None:
    bipartite, v_nodes, u_nodes = random_splitting_workload(
        num_v=20, num_u=30, v_degree=3, seed=11
    )
    print(f"bipartite workload: |V| = {len(v_nodes)} constraints, "
          f"|U| = {len(u_nodes)} color-carrying nodes")

    instance = weak_splitting_instance(bipartite, v_nodes, num_colors=16)
    report = check_preconditions(instance, max_rank=3)
    print(f"  p = 16^-2 = {report.p:.6f}, d = {report.d}, "
          f"2^-d = {report.threshold:.6f}")

    result = solve(instance)
    assert verify_solution(instance, result.assignment).ok
    coloring = coloring_from_assignment(u_nodes, result.assignment)
    print(f"\nrequirement met: "
          f"{satisfies_requirement(bipartite, v_nodes, coloring)}")

    seen_distribution = Counter(
        colors_seen(bipartite, v_node, coloring) for v_node in v_nodes
    )
    print(f"colors seen per V-node: {dict(sorted(seen_distribution.items()))}")
    used = Counter(coloring.values())
    print(f"U colors actually used: {len(used)} of 16")

    print("\nfirst five U-node colors:")
    for u_node in u_nodes[:5]:
        print(f"  u{u_node} -> color {coloring[u_node]}")


if __name__ == "__main__":
    main()
