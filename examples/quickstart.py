"""Quickstart: build an LLL instance, solve it deterministically, verify.

The scenario: a 4-regular communication graph where every edge carries a
uniform variable over {0, 1, 2} and the bad event at a node is "all my
incident edge variables are 0".  Each event has probability 3^-4 while
the dependency degree is 4 — strictly below the paper's exponential
threshold 2^-4, so the deterministic fixer of Theorem 1.1 applies.

Run:  python examples/quickstart.py
"""

from repro.core import solve
from repro.generators import all_zero_edge_instance, random_regular_graph
from repro.lll import check_preconditions, verify_solution


def main() -> None:
    # 1. A workload: 30 nodes, 4-regular, alphabet {0, 1, 2} per edge.
    graph = random_regular_graph(num_nodes=30, degree=4, seed=42)
    instance = all_zero_edge_instance(graph, alphabet_size=3)

    # 2. Where does it sit relative to the threshold p = 2^-d?
    report = check_preconditions(instance, max_rank=2)
    print("instance parameters")
    print(f"  events:      {instance.num_events}")
    print(f"  variables:   {instance.num_variables}")
    print(f"  p:           {report.p:.6f}")
    print(f"  d:           {report.d}")
    print(f"  2^-d:        {report.threshold:.6f}")
    print(f"  slack:       {report.slack:.2f}x below the threshold")

    # 3. Fix every variable deterministically (any order works).
    result = solve(instance)

    # 4. Verify independently: no bad event occurs.
    verification = verify_solution(instance, result.assignment)
    print("\nsolution")
    print(f"  all events avoided:   {verification.ok}")
    print(f"  variables fixed:      {result.num_steps}")
    print(f"  tightest step slack:  {result.min_slack:.4f}")
    print(f"  max certified bound:  {result.max_certified_bound:.6f} (< 1)")

    # 5. Peek at a few assigned values.
    sample = list(result.assignment.items())[:5]
    print("\nfirst five assignments")
    for name, value in sample:
        print(f"  {name} = {value}")


if __name__ == "__main__":
    main()
