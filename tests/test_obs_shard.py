"""Worker-side trace shards: buffering, eager files, recovery, merge."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.errors import ObsError
from repro.obs import (
    Recorder,
    ShardRecorder,
    TraceContext,
    check_events,
    collect_shard_fallback,
    read_shard_file,
)


def make_context(tmp_path=None, **overrides):
    fields = {
        "run_id": "run-1",
        "parent_span": "chunk:0:a0",
        "worker_id": "worker:0",
    }
    if tmp_path is not None:
        fields["shard_path"] = str(tmp_path / "shard.jsonl")
    fields.update(overrides)
    return TraceContext(**fields)


# ----------------------------------------------------------------------
# TraceContext
# ----------------------------------------------------------------------
def test_trace_context_round_trips_through_pickle():
    context = make_context(attempt=2, shard_path="/tmp/s.jsonl", profile="sample")
    clone = pickle.loads(pickle.dumps(context))
    assert clone == context
    assert clone.worker_id == "worker:0"
    assert clone.attempt == 2


def test_trace_context_defaults():
    context = make_context()
    assert context.attempt == 0
    assert context.shard_path is None
    assert context.profile is None


# ----------------------------------------------------------------------
# ShardRecorder buffering
# ----------------------------------------------------------------------
def test_shard_recorder_buffers_records_with_local_seq():
    shard = ShardRecorder(make_context())
    shard.event("worker", "worker_start", pid=123)
    shard.event("worker", "decide", step=4, cell="x")
    records = shard.drain()
    assert [r["seq"] for r in records] == [0, 1]
    assert records[0]["event"] == "worker_start"
    assert records[0]["payload"] == {"pid": 123}
    assert records[1]["step"] == 4
    assert all(r["ts_ns"] >= 0 for r in records)


def test_shard_recorder_span_times_and_records():
    shard = ShardRecorder(make_context())
    with shard.span("worker", "decide", cell="c"):
        pass
    (record,) = shard.drain()
    assert record["event"] == "span"
    assert record["payload"]["name"] == "decide"
    assert record["payload"]["cell"] == "c"
    assert record["payload"]["duration_ns"] >= 0


def test_shard_recorder_counters_flush_on_drain():
    shard = ShardRecorder(make_context())
    shard.count("worker", "cells")
    shard.count("worker", "cells")
    shard.count("worker", "ops", delta=5)
    records = shard.drain()
    counters = {
        (r["payload"]["metric_component"], r["payload"]["name"]):
            r["payload"]["value"]
        for r in records
        if r["event"] == "counter"
    }
    assert counters == {("worker", "cells"): 2, ("worker", "ops"): 5}
    # drain() flushed; a second drain adds nothing new.
    assert shard.drain() == records


# ----------------------------------------------------------------------
# Eager shard files
# ----------------------------------------------------------------------
def test_shard_file_receives_every_record_eagerly(tmp_path):
    context = make_context(tmp_path)
    shard = ShardRecorder(context)
    shard.event("worker", "worker_start", pid=1)
    shard.event("worker", "fault_injected", kind="crash")
    # Deliberately NOT drained: simulates a worker that dies mid-chunk.
    recovered = read_shard_file(context.shard_path)
    assert [r["event"] for r in recovered] == [
        "worker_start",
        "fault_injected",
    ]
    assert recovered == shard.records


def test_shard_recorder_survives_unwritable_shard_path(tmp_path):
    context = make_context(shard_path=str(tmp_path / "no" / "dir" / "s.jsonl"))
    shard = ShardRecorder(context)
    shard.event("worker", "worker_start")
    assert len(shard.drain()) == 1


def test_read_shard_file_tolerates_truncated_tail(tmp_path):
    path = tmp_path / "shard.jsonl"
    path.write_text(
        '{"seq": 0, "event": "worker_start", "component": "worker", '
        '"payload": {}}\n{"seq": 1, "event": "span", "compo'
    )
    records = read_shard_file(str(path))
    assert len(records) == 1
    assert records[0]["event"] == "worker_start"


def test_read_shard_file_rejects_mid_file_corruption(tmp_path):
    path = tmp_path / "shard.jsonl"
    path.write_text('not json\n{"seq": 0, "event": "ok", "payload": {}}\n')
    with pytest.raises(ObsError):
        read_shard_file(str(path))


def test_read_shard_file_missing_raises(tmp_path):
    with pytest.raises(ObsError):
        read_shard_file(str(tmp_path / "absent.jsonl"))


def test_collect_shard_fallback_is_best_effort(tmp_path):
    assert collect_shard_fallback(None) == []
    assert collect_shard_fallback(str(tmp_path / "absent.jsonl")) == []
    corrupt = tmp_path / "corrupt.jsonl"
    corrupt.write_text('nope\n{"seq": 0, "payload": {}}\n')
    assert collect_shard_fallback(str(corrupt)) == []
    good = tmp_path / "good.jsonl"
    good.write_text('{"seq": 0, "event": "worker_start", '
                    '"component": "worker", "payload": {}}\n')
    assert len(collect_shard_fallback(str(good))) == 1


# ----------------------------------------------------------------------
# Parent-side merge
# ----------------------------------------------------------------------
def test_emit_shard_record_stamps_provenance_and_parent_seq():
    recorder = Recorder(run_id="merge-test")
    try:
        recorder.event("runtime", "dispatch", span_id="chunk:0:a0")
        shard = ShardRecorder(make_context())
        shard.event("worker", "decide", step=7, cell="c")
        for record in shard.drain():
            recorder.emit_shard_record(
                record,
                worker_id="worker:0",
                parent_span="chunk:0:a0",
                attempt=1,
            )
    finally:
        recorder.close()
    events = recorder.memory.events
    assert check_events(events) == len(events)
    merged = next(e for e in events if e["event"] == "decide")
    assert merged["run_id"] == "merge-test"
    assert merged["worker_id"] == "worker:0"
    assert merged["parent_span"] == "chunk:0:a0"
    assert merged["attempt"] == 1
    assert merged["step"] == 7
    # Parent seq numbering continues past the dispatch event, and the
    # worker-local clock survives in the payload.
    dispatch = next(e for e in events if e["event"] == "dispatch")
    assert merged["seq"] > dispatch["seq"]
    assert "worker_ts_ns" in merged["payload"]
