"""Cross-feature scenario tests: the library's pieces working together.

Each scenario chains several subsystems the way a downstream user would:
serialise → reload → solve → audit; generate → protocol → domain check;
certificate → baseline-bound → measured work; etc.
"""

import json
import statistics

import pytest

from repro.applications import (
    hypergraph_sinkless_instance,
    orientations_from_assignment,
    property_b_instance,
    sparse_uniform_hypergraph,
)
from repro.applications.hypergraph_sinkless import satisfies_requirement
from repro.applications.property_b import coloring_from_assignment
from repro.baselines import (
    distributed_moser_tardos,
    exhaustive_search,
    sequential_moser_tardos,
)
from repro.core import (
    audit_trace,
    solve,
    solve_distributed,
    solve_distributed_local,
    solve_naive,
)
from repro.lll import (
    expected_moser_tardos_resamplings,
    find_asymmetric_certificate,
    instance_from_dict,
    instance_to_dict,
    verify_solution,
)
from repro.generators import (
    all_zero_edge_instance,
    all_zero_triple_instance,
    cycle_graph,
    cyclic_triples,
    parity_edge_instance,
    random_regular_graph,
)


class TestSerialiseSolveAudit:
    def test_round_trip_then_solve_then_audit(self):
        original = all_zero_triple_instance(12, cyclic_triples(12), 5)
        payload = json.loads(json.dumps(instance_to_dict(original)))
        reloaded = instance_from_dict(payload)
        result = solve(reloaded)
        assert verify_solution(reloaded, result.assignment).ok
        # Audit the reloaded run against ANOTHER reload.
        auditor_copy = instance_from_dict(payload)
        assert audit_trace(auditor_copy, result).ok

    def test_serialised_application_still_satisfies_domain(self):
        triples = cyclic_triples(12)
        original = hypergraph_sinkless_instance(12, triples)
        reloaded = instance_from_dict(instance_to_dict(original))
        result = solve(reloaded)
        orientations = orientations_from_assignment(
            triples, result.assignment
        )
        assert satisfies_requirement(12, triples, orientations)


class TestProtocolPipeline:
    def test_generate_protocol_audit(self):
        num_nodes, edges = sparse_uniform_hypergraph(
            num_edges=8, uniformity=6, shared_per_edge=2, seed=11
        )
        instance = property_b_instance(num_nodes, edges)
        result = solve_distributed_local(instance)
        coloring = coloring_from_assignment(num_nodes, result.assignment)
        from repro.applications import is_proper_two_coloring

        assert is_proper_two_coloring(edges, coloring)
        twin = property_b_instance(num_nodes, edges)
        assert audit_trace(twin, result.fixing).ok

    def test_three_solvers_agree_on_feasibility(self):
        instance_factory = lambda: all_zero_triple_instance(
            9, cyclic_triples(9), 5
        )
        scheduled = solve_distributed(instance_factory())
        protocol = solve_distributed_local(instance_factory())
        sequential = solve(instance_factory())
        for result in (scheduled, protocol):
            fresh = instance_factory()
            assert verify_solution(fresh, result.assignment).ok
        fresh = instance_factory()
        assert verify_solution(fresh, sequential.assignment).ok


class TestCertificatesPredictBaselines:
    def test_mt_bound_holds_across_workloads(self):
        for factory in (
            lambda: all_zero_edge_instance(cycle_graph(10), 3),
            lambda: parity_edge_instance(cycle_graph(10), 0.05),
        ):
            instance = factory()
            certificate = find_asymmetric_certificate(instance)
            assert certificate is not None
            bound = expected_moser_tardos_resamplings(instance, certificate)
            observed = statistics.mean(
                sequential_moser_tardos(factory(), seed=seed).resamplings
                for seed in range(8)
            )
            assert observed <= bound + 1.0

    def test_deterministic_matches_oracle_feasibility(self):
        # Tiny instances: oracle says feasible, all solvers deliver.
        instance = all_zero_edge_instance(cycle_graph(5), 3)
        assert exhaustive_search(instance) is not None
        fresh = all_zero_edge_instance(cycle_graph(5), 3)
        result = solve(fresh)
        assert verify_solution(fresh, result.assignment).ok


class TestNaiveAndMainFixersSideBySide:
    def test_both_solve_when_both_criteria_hold(self):
        # Alphabet 28 puts cyclic triples below BOTH criteria.
        main_result = solve(all_zero_triple_instance(9, cyclic_triples(9), 28))
        naive_result = solve_naive(
            all_zero_triple_instance(9, cyclic_triples(9), 28)
        )
        check = all_zero_triple_instance(9, cyclic_triples(9), 28)
        assert verify_solution(check, main_result.assignment).ok
        assert verify_solution(check, naive_result.assignment).ok

    def test_naive_traces_are_not_pstar_auditable_in_general(self):
        # The auditor replays P* bookkeeping; naive rank-<=3 traces use a
        # different (coarser) budget but make compatible choices here.
        instance = all_zero_triple_instance(9, cyclic_triples(9), 28)
        result = solve_naive(instance)
        twin = all_zero_triple_instance(9, cyclic_triples(9), 28)
        report = audit_trace(twin, result)
        # The audit may pass or flag margin differences, but must never
        # crash, and the assignment itself must be valid either way.
        assert verify_solution(twin, result.assignment).ok
        assert isinstance(report.ok, bool)


class TestRandomizedVsDeterministicAtScale:
    def test_consistent_verdicts_on_regular_graphs(self):
        for seed in range(3):
            graph = random_regular_graph(16, 3, seed=seed)
            deterministic = solve(all_zero_edge_instance(graph, 3))
            randomized = distributed_moser_tardos(
                all_zero_edge_instance(graph, 3), seed=seed
            )
            check = all_zero_edge_instance(graph, 3)
            assert verify_solution(check, deterministic.assignment).ok
            assert verify_solution(check, randomized.assignment).ok
