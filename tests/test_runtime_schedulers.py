"""The execution plane's differential guarantee (and plan structure).

Every scheduler backend must be *bit-identical* to ``SerialScheduler``:
same final assignment, same per-step trace, same certified phi ledger.
This is the paper's independence argument made executable — within a
color class, cells touch pairwise-disjoint event sets, so cross-cell
decisions commute and the backend's execution order cannot matter.  The
Hypothesis suites here drive all three backends over seeded rank-2 and
rank-3 instances and compare the results exactly (``==`` on floats, not
approximately).

Also: direct unit tests for the host-round accounting of the derived
colorings (``VIRTUAL_ROUND_FACTOR``), which both plan builders and the
message-level protocol charge for.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.coloring import (
    VIRTUAL_ROUND_FACTOR,
    compute_edge_coloring,
    compute_two_hop_coloring,
)
from repro.core import solve_distributed
from repro.errors import ReproError, SimulationError
from repro.generators import (
    all_zero_edge_instance,
    all_zero_triple_instance,
    cycle_graph,
    cyclic_triples,
    random_regular_graph,
)
from repro.local_model.network import Network
from repro.runtime import (
    BatchScheduler,
    ProcessScheduler,
    SerialScheduler,
    make_scheduler,
    plan_for_instance,
)

SLOW_SETTINGS = settings(
    deadline=None,
    max_examples=12,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# Instance strategies (seeded, deterministic per draw)
# ----------------------------------------------------------------------
def rank2_instances():
    """Seeded rank-2 workloads: cycles and random regular graphs."""
    cycles = st.tuples(
        st.integers(min_value=3, max_value=16),
        st.integers(min_value=3, max_value=5),
    ).map(lambda t: ("cycle", t[0], t[1], 0))
    regulars = st.tuples(
        st.integers(min_value=4, max_value=8).map(lambda k: 2 * k),
        st.integers(min_value=5, max_value=6),
        st.integers(min_value=0, max_value=3),
    ).map(lambda t: ("regular", t[0], t[1], t[2]))
    return st.one_of(cycles, regulars)


def rank3_instances():
    """Seeded rank-3 workloads: cyclic triple chains."""
    return st.tuples(
        st.integers(min_value=5, max_value=18),
        st.integers(min_value=5, max_value=6),
    ).map(lambda t: ("triples", t[0], t[1], 0))


def build_instance(spec):
    family, n, alphabet, seed = spec
    if family == "cycle":
        return all_zero_edge_instance(cycle_graph(n), alphabet)
    if family == "regular":
        return all_zero_edge_instance(
            random_regular_graph(n, 3, seed=seed), alphabet
        )
    return all_zero_triple_instance(n, cyclic_triples(n), alphabet)


def run_with(spec, scheduler):
    """A fresh instance and a fresh fixer for every scheduler run."""
    return solve_distributed(build_instance(spec), scheduler=scheduler)


def assert_identical(reference, candidate):
    """The differential contract: exact equality, not approximation."""
    assert (
        candidate.fixing.assignment.as_dict()
        == reference.fixing.assignment.as_dict()
    )
    assert candidate.fixing.steps == reference.fixing.steps
    assert candidate.fixing.certified_bounds == reference.fixing.certified_bounds
    assert candidate.schedule_rounds == reference.schedule_rounds
    assert candidate.palette == reference.palette


# ----------------------------------------------------------------------
# Differential: all backends vs SerialScheduler
# ----------------------------------------------------------------------
@SLOW_SETTINGS
@given(spec=rank2_instances())
def test_schedulers_identical_rank2(spec):
    reference = run_with(spec, SerialScheduler())
    assert_identical(reference, run_with(spec, BatchScheduler()))
    assert_identical(
        reference, run_with(spec, ProcessScheduler(max_workers=2))
    )


@SLOW_SETTINGS
@given(spec=rank3_instances())
def test_schedulers_identical_rank3(spec):
    reference = run_with(spec, SerialScheduler())
    assert_identical(reference, run_with(spec, BatchScheduler()))
    assert_identical(
        reference, run_with(spec, ProcessScheduler(max_workers=2))
    )


@settings(deadline=None, max_examples=20)
@given(spec=st.one_of(rank2_instances(), rank3_instances()))
def test_plan_covers_every_variable_once(spec):
    instance = build_instance(spec)
    plan = plan_for_instance(instance)
    plan.validate()
    names = list(plan.variables())
    assert sorted(names, key=repr) == sorted(
        (variable.name for variable in instance.variables), key=repr
    )
    assert len(names) == len(set(names))
    assert plan.num_ops == len(instance.variables)
    assert plan.critical_path <= plan.num_ops


# ----------------------------------------------------------------------
# Scheduler plumbing
# ----------------------------------------------------------------------
def test_make_scheduler_factory():
    assert isinstance(make_scheduler("serial"), SerialScheduler)
    assert isinstance(make_scheduler("batch"), BatchScheduler)
    assert isinstance(make_scheduler("process"), ProcessScheduler)
    with pytest.raises(ReproError):
        make_scheduler("quantum")


def test_class_disjointness_is_enforced():
    """A corrupted plan raises instead of silently racing."""
    instance = build_instance(("cycle", 6, 3, 0))
    plan = plan_for_instance(instance)
    # Merge all classes into one: adjacent edges now share events.
    from repro.runtime.plan import ColorClass, FixPlan

    cells = tuple(
        cell for color_class in plan.classes for cell in color_class.cells
    )
    broken = FixPlan(
        kind=plan.kind,
        classes=(ColorClass(color=0, cells=cells),),
        palette=1,
        coloring_rounds=plan.coloring_rounds,
    )
    with pytest.raises(SimulationError):
        SerialScheduler().execute(
            _fixer_for(instance), broken, instance
        )


def _fixer_for(instance):
    from repro.core import Rank2Fixer

    return Rank2Fixer(instance)


# ----------------------------------------------------------------------
# Host-round accounting of the derived colorings
# ----------------------------------------------------------------------
def test_virtual_round_factor_value():
    """One virtual round costs exactly two host rounds (see DESIGN.md)."""
    assert VIRTUAL_ROUND_FACTOR == 2


@pytest.mark.parametrize("n", [4, 9, 16])
def test_edge_coloring_host_round_accounting(n):
    result = compute_edge_coloring(Network(cycle_graph(n)))
    assert result.host_rounds == VIRTUAL_ROUND_FACTOR * result.virtual_rounds
    assert result.virtual_rounds > 0


@pytest.mark.parametrize("n", [9, 16, 25])
def test_two_hop_coloring_host_round_accounting(n):
    result = compute_two_hop_coloring(Network(cycle_graph(n)))
    assert result.host_rounds == VIRTUAL_ROUND_FACTOR * result.virtual_rounds
    assert result.virtual_rounds > 0


def test_two_hop_coloring_trivial_instance_charges_zero():
    """A graph its identifiers already color spends zero rounds — and the
    host-round accounting still holds (0 == 2 * 0)."""
    result = compute_two_hop_coloring(Network(cycle_graph(4)))
    assert result.virtual_rounds == 0
    assert result.host_rounds == 0


def test_plan_charges_coloring_host_rounds():
    """The plan's coloring cost is the coloring's host-round cost."""
    instance = build_instance(("triples", 12, 5, 0))
    plan = plan_for_instance(instance)
    from repro.core.indexing import indexed_dependency_network

    network, _, _ = indexed_dependency_network(instance)
    coloring = compute_two_hop_coloring(network)
    assert plan.coloring_rounds == coloring.host_rounds
    assert coloring.host_rounds % VIRTUAL_ROUND_FACTOR == 0


# ----------------------------------------------------------------------
# Differential under injected faults: recovery must be invisible
# ----------------------------------------------------------------------
@SLOW_SETTINGS
@given(spec=rank2_instances(), seed=st.integers(min_value=0, max_value=7))
def test_process_scheduler_identical_under_faults(spec, seed):
    """Crash/slow injection must not perturb the serial transcript."""
    from repro.faults import FaultPlan

    reference = run_with(spec, SerialScheduler())
    plan = FaultPlan(
        seed=seed,
        explicit_chunks=((0, "crash"),),
        slow_rate=0.3,
        slow_seconds=0.001,
    )
    candidate = run_with(
        spec,
        ProcessScheduler(
            max_workers=2,
            backoff_base=0.0,
            deadline=15.0,
            fault_plan=plan,
        ),
    )
    assert_identical(reference, candidate)
