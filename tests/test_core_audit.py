"""Unit tests for the independent trace auditor."""

import pytest

from repro.core import audit_trace, solve, solve_distributed_local
from repro.core.results import FixingResult, StepRecord
from repro.generators import (
    all_zero_edge_instance,
    all_zero_triple_instance,
    cycle_graph,
    cyclic_triples,
)
from repro.probability import PartialAssignment


def _rank3_pair():
    """A fresh instance plus an identical twin (auditors get their own)."""
    return (
        all_zero_triple_instance(12, cyclic_triples(12), 5),
        all_zero_triple_instance(12, cyclic_triples(12), 5),
    )


class TestValidTraces:
    def test_rank3_trace_passes(self):
        instance, twin = _rank3_pair()
        result = solve(instance)
        report = audit_trace(twin, result)
        assert report.ok
        assert report.steps == 12
        assert report.problems == ()

    def test_rank2_trace_passes(self):
        instance = all_zero_edge_instance(cycle_graph(10), 3)
        twin = all_zero_edge_instance(cycle_graph(10), 3)
        result = solve(instance)
        assert audit_trace(twin, result).ok

    def test_protocol_trace_passes(self):
        instance, twin = _rank3_pair()
        result = solve_distributed_local(instance)
        assert audit_trace(twin, result.fixing).ok

    def test_report_is_truthy(self):
        instance, twin = _rank3_pair()
        result = solve(instance)
        assert bool(audit_trace(twin, result))


class TestForgedTraces:
    def test_detects_flipped_value(self):
        instance, twin = _rank3_pair()
        result = solve(instance)
        # Forge: flip one step's value to a different support element.
        forged_steps = list(result.steps)
        original = forged_steps[0]
        other_value = next(
            v
            for v in instance.variable(original.variable).values
            if v != original.value
        )
        forged_steps[0] = StepRecord(
            variable=original.variable,
            value=other_value,
            events=original.events,
            increases=original.increases,
            slack=original.slack,
            num_good_values=original.num_good_values,
            num_values=original.num_values,
        )
        forged = FixingResult(
            assignment=result.assignment,
            steps=tuple(forged_steps),
            certified_bounds=result.certified_bounds,
        )
        report = audit_trace(twin, forged)
        assert not report.ok

    def test_detects_missing_steps(self):
        instance, twin = _rank3_pair()
        result = solve(instance)
        truncated = FixingResult(
            assignment=result.assignment,
            steps=result.steps[:-2],
            certified_bounds=result.certified_bounds,
        )
        report = audit_trace(twin, truncated)
        assert not report.ok
        assert any("unfixed" in problem for problem in report.problems)

    def test_detects_duplicate_steps(self):
        instance, twin = _rank3_pair()
        result = solve(instance)
        doubled = FixingResult(
            assignment=result.assignment,
            steps=result.steps + result.steps[:1],
            certified_bounds=result.certified_bounds,
        )
        report = audit_trace(twin, doubled)
        assert not report.ok
        assert any("twice" in problem for problem in report.problems)

    def test_detects_fabricated_increases(self):
        instance, twin = _rank3_pair()
        result = solve(instance)
        original = result.steps[0]
        forged_steps = (
            StepRecord(
                variable=original.variable,
                value=original.value,
                events=original.events,
                increases=tuple(0.5 for _ in original.increases),
                slack=original.slack,
                num_good_values=original.num_good_values,
                num_values=original.num_values,
            ),
        ) + result.steps[1:]
        forged = FixingResult(
            assignment=result.assignment,
            steps=forged_steps,
            certified_bounds=result.certified_bounds,
        )
        report = audit_trace(twin, forged)
        assert not report.ok
        assert any("differs" in problem for problem in report.problems)

    def test_detects_mismatched_final_assignment(self):
        instance, twin = _rank3_pair()
        result = solve(instance)
        tampered_assignment = PartialAssignment(result.assignment.as_dict())
        name = instance.variables[0].name
        values = instance.variable(name).values
        current = tampered_assignment.value_of(name)
        tampered = PartialAssignment(
            {
                **result.assignment.as_dict(),
                name: next(v for v in values if v != current),
            }
        )
        forged = FixingResult(
            assignment=tampered,
            steps=result.steps,
            certified_bounds=result.certified_bounds,
        )
        report = audit_trace(twin, forged)
        assert not report.ok
        assert any("mismatch" in problem for problem in report.problems)

    def test_detects_unknown_variable(self):
        instance, twin = _rank3_pair()
        result = solve(instance)
        ghost = StepRecord(
            variable="ghost",
            value=0,
            events=("nope",),
            increases=(1.0,),
            slack=0.0,
            num_good_values=1,
            num_values=1,
        )
        forged = FixingResult(
            assignment=result.assignment,
            steps=result.steps + (ghost,),
            certified_bounds=result.certified_bounds,
        )
        report = audit_trace(twin, forged)
        assert not report.ok
