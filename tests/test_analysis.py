"""Unit tests for the analysis utilities."""

import math

import pytest

from repro.errors import ReproError
from repro.analysis import (
    ExperimentRecord,
    deterministic_lower_bound,
    deterministic_rank2_bound,
    deterministic_rank3_bound,
    format_cell,
    format_table,
    growth_ratios,
    iterated_log,
    log_star,
    moser_tardos_distributed_bound,
    power_tower,
    randomized_lower_bound,
    rank2_schedule_bound,
    rank3_schedule_bound,
    records_to_table,
    universal_lower_bound,
)


class TestLogStar:
    def test_known_values(self):
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4
        assert log_star(2.0**65536 if False else 10**100) == 5

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            log_star(-1)

    def test_monotone(self):
        values = [log_star(n) for n in (1, 10, 10**3, 10**9, 10**30)]
        assert values == sorted(values)

    def test_iterated_log(self):
        assert iterated_log(256, 1) == pytest.approx(8.0)
        assert iterated_log(256, 2) == pytest.approx(3.0)
        assert iterated_log(7, 0) == pytest.approx(7.0)
        with pytest.raises(ReproError):
            iterated_log(1, 2)  # log2(log2(1)) = log2(0)

    def test_power_tower(self):
        assert power_tower(2, 0) == 1.0
        assert power_tower(2, 1) == 2.0
        assert power_tower(2, 3) == 16.0
        with pytest.raises(ReproError):
            power_tower(2, -1)

    def test_tower_inverts_log_star(self):
        for height in range(1, 5):
            tower = power_tower(2, height)
            assert log_star(tower) == height


class TestBounds:
    def test_schedule_bounds(self):
        assert rank2_schedule_bound(4) == 8
        assert rank3_schedule_bound(4) == 17

    def test_combined_bounds(self):
        assert deterministic_rank2_bound(4, 2**16) == 4 + 4
        assert deterministic_rank3_bound(3, 16) == 9 + 3

    def test_baseline_shapes(self):
        assert moser_tardos_distributed_bound(2**10) == pytest.approx(100.0)
        assert randomized_lower_bound(2**16) == pytest.approx(4.0)
        assert deterministic_lower_bound(2**10) == pytest.approx(10.0)
        assert universal_lower_bound(65536) == 4.0

    def test_separation_orders(self):
        # For large n the paper's separation: log* n << log log n << log n.
        n = 10**30
        assert universal_lower_bound(n) < randomized_lower_bound(n)
        assert randomized_lower_bound(n) < deterministic_lower_bound(n)
        assert deterministic_lower_bound(n) < moser_tardos_distributed_bound(n)


class TestRecords:
    def test_record_flattening(self):
        record = ExperimentRecord(
            "T2", parameters={"n": 100}, metrics={"rounds": 7}
        )
        flat = record.as_dict()
        assert flat == {"experiment": "T2", "n": 100, "rounds": 7}

    def test_format_cell(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"
        assert format_cell(0.0) == "0"
        assert format_cell(1234567.0) == "1.235e+06"
        assert format_cell(0.25) == "0.25"
        assert format_cell("text") == "text"

    def test_format_table_alignment(self):
        table = format_table(
            [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}], title="demo"
        )
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="t")

    def test_records_to_table(self):
        records = [
            ExperimentRecord("X", {"n": 1}, {"rounds": 2}),
            ExperimentRecord("X", {"n": 2}, {"rounds": 2}),
        ]
        table = records_to_table(records)
        assert "rounds" in table

    def test_growth_ratios(self):
        assert growth_ratios([1.0, 2.0, 4.0]) == [2.0, 2.0]
        assert growth_ratios([0.0, 5.0]) == [float("inf")]
        assert growth_ratios([0.0, 0.0]) == [1.0]
        assert growth_ratios([3.0]) == []

    def test_write_records_json(self, tmp_path):
        from repro.analysis import write_records_json

        records = [ExperimentRecord("X", {"n": 1}, {"ok": True})]
        path = tmp_path / "records.json"
        write_records_json(records, str(path))
        import json

        data = json.loads(path.read_text())
        assert data == [{"experiment": "X", "n": 1, "ok": True}]
