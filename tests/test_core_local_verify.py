"""Unit tests for the one-round distributed verification protocol."""

import pytest

from repro.errors import SimulationError
from repro.core import solve, solve_distributed_local, verify_distributed
from repro.generators import (
    all_zero_edge_instance,
    all_zero_triple_instance,
    cycle_graph,
    cyclic_triples,
)
from repro.probability import PartialAssignment


class TestVerifyDistributed:
    def test_accepts_valid_solution(self):
        instance = all_zero_triple_instance(12, cyclic_triples(12), 5)
        result = solve(instance)
        ok, rounds, verdicts = verify_distributed(instance, result.assignment)
        assert ok
        assert rounds == 1
        assert len(verdicts) == instance.num_events
        assert all(verdicts.values())

    def test_rejects_bad_assignment_and_localises_blame(self):
        instance = all_zero_edge_instance(cycle_graph(8), 3)
        bad = PartialAssignment()
        for variable in instance.variables:
            bad.fix(variable, 0)  # every event occurs
        ok, rounds, verdicts = verify_distributed(instance, bad)
        assert not ok
        assert rounds == 1
        assert not any(verdicts.values())

    def test_partial_violation_blames_only_violators(self):
        instance = all_zero_edge_instance(cycle_graph(8), 3)
        # Make exactly node 0 bad: its two incident edges are 0, all
        # other edges 1.
        assignment = PartialAssignment()
        for variable in instance.variables:
            _tag, u, v = variable.name
            value = 0 if 0 in (u, v) else 1
            assignment.fix(variable, value)
        ok, _rounds, verdicts = verify_distributed(instance, assignment)
        assert not ok
        assert verdicts[0] is False
        # Nodes not adjacent to 0 are happy.
        assert verdicts[3] is True
        assert verdicts[4] is True

    def test_agrees_with_protocol_solver(self):
        instance = all_zero_triple_instance(9, cyclic_triples(9), 5)
        result = solve_distributed_local(instance)
        ok, _rounds, _verdicts = verify_distributed(
            instance, result.assignment
        )
        assert ok

    def test_incomplete_assignment_raises(self):
        from repro.errors import InvalidAssignmentError

        instance = all_zero_edge_instance(cycle_graph(6), 3)
        with pytest.raises(InvalidAssignmentError):
            verify_distributed(instance, PartialAssignment())
