"""Unit tests for the Property B (hypergraph 2-coloring) application."""

import pytest

from repro.errors import ReproError
from repro.applications import (
    is_proper_two_coloring,
    property_b_instance,
    sparse_uniform_hypergraph,
)
from repro.applications.property_b import (
    coloring_from_assignment,
    monochromatic_edges,
)
from repro.core import solve, solve_distributed
from repro.lll import check_preconditions, verify_solution


class TestInstanceConstruction:
    def test_probability_formula(self):
        num_nodes, edges = sparse_uniform_hypergraph(
            num_edges=8, uniformity=6, shared_per_edge=2, seed=0
        )
        instance = property_b_instance(num_nodes, edges)
        assert instance.max_event_probability == pytest.approx(2.0**-5)

    def test_rank_at_most_three(self):
        num_nodes, edges = sparse_uniform_hypergraph(
            num_edges=10, uniformity=6, shared_per_edge=2, seed=1
        )
        instance = property_b_instance(num_nodes, edges)
        assert instance.rank <= 3

    def test_below_threshold(self):
        num_nodes, edges = sparse_uniform_hypergraph(
            num_edges=10, uniformity=6, shared_per_edge=2, seed=2
        )
        report = check_preconditions(
            property_b_instance(num_nodes, edges), max_rank=3
        )
        assert report.p < report.threshold

    def test_degenerate_edges_rejected(self):
        with pytest.raises(ReproError):
            property_b_instance(3, [(0, 0, 1)])
        with pytest.raises(ReproError):
            property_b_instance(3, [(0,)])
        with pytest.raises(ReproError):
            property_b_instance(2, [(0, 5)])
        with pytest.raises(ReproError):
            property_b_instance(2, [])


class TestGenerator:
    def test_uniformity_validation(self):
        with pytest.raises(ReproError):
            sparse_uniform_hypergraph(
                num_edges=5, uniformity=5, shared_per_edge=2, seed=0
            )

    def test_occurrence_bounded(self):
        num_nodes, edges = sparse_uniform_hypergraph(
            num_edges=12, uniformity=7, shared_per_edge=2, seed=3
        )
        occurrence = {}
        for edge in edges:
            assert len(edge) == 7
            for node in edge:
                occurrence[node] = occurrence.get(node, 0) + 1
        assert max(occurrence.values()) <= 3

    def test_seeded_determinism(self):
        first = sparse_uniform_hypergraph(6, 6, 2, seed=4)
        second = sparse_uniform_hypergraph(6, 6, 2, seed=4)
        assert first == second


class TestSolving:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_deterministic_two_coloring(self, seed):
        num_nodes, edges = sparse_uniform_hypergraph(
            num_edges=10, uniformity=6, shared_per_edge=2, seed=seed
        )
        instance = property_b_instance(num_nodes, edges)
        result = solve(instance)
        assert verify_solution(instance, result.assignment).ok
        coloring = coloring_from_assignment(num_nodes, result.assignment)
        assert is_proper_two_coloring(edges, coloring)

    def test_distributed_two_coloring(self):
        num_nodes, edges = sparse_uniform_hypergraph(
            num_edges=8, uniformity=6, shared_per_edge=2, seed=5
        )
        instance = property_b_instance(num_nodes, edges)
        result = solve_distributed(instance)
        coloring = coloring_from_assignment(num_nodes, result.assignment)
        assert is_proper_two_coloring(edges, coloring)

    def test_wide_edges(self):
        num_nodes, edges = sparse_uniform_hypergraph(
            num_edges=6, uniformity=9, shared_per_edge=3, seed=6
        )
        instance = property_b_instance(num_nodes, edges)
        result = solve(instance)
        coloring = coloring_from_assignment(num_nodes, result.assignment)
        assert is_proper_two_coloring(edges, coloring)


class TestDomainChecks:
    def test_monochromatic_detection(self):
        edges = [(0, 1, 2), (2, 3, 4)]
        coloring = {0: 1, 1: 1, 2: 1, 3: 0, 4: 0}
        bad = monochromatic_edges(edges, coloring)
        assert bad == [(0, 1, 2)]
        assert not is_proper_two_coloring(edges, coloring)

    def test_proper_detection(self):
        edges = [(0, 1, 2)]
        assert is_proper_two_coloring(edges, {0: 0, 1: 1, 2: 0})
